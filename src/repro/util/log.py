"""Minimal logging setup.

Long-running drivers (the campaign, ESMACS sweeps) report progress
through standard :mod:`logging` so downstream users can silence, route
or timestamp it without touching library code.  ``get_logger`` attaches
one stderr handler to the package root exactly once.

Two knobs beyond the basics:

* ``get_logger(name, context={...})`` returns an adapter that stamps
  every record with a rendered ``[k=v ...]`` context block — the
  ``%(context)s`` field in the handler format — so concurrent workers
  (shard ids, worker ranks, compound ids) stay distinguishable in a
  merged stream.
* The ``REPRO_LOG`` environment variable sets the package root level at
  first configuration (``REPRO_LOG=DEBUG`` also surfaces telemetry span
  enter/exit mirroring from tracers built with ``log_spans=True``).
"""

from __future__ import annotations

import logging
import os
import sys

__all__ = ["get_logger"]

_ROOT = "repro"
_configured = False


class _ContextFilter(logging.Filter):
    """Default ``record.context`` to empty so the format never KeyErrors."""

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "context"):
            record.context = ""
        return True


class _ContextAdapter(logging.LoggerAdapter):
    """Inject a pre-rendered context block into every record."""

    def __init__(self, logger: logging.Logger, rendered: str) -> None:
        super().__init__(logger, {})
        self._rendered = rendered

    @property
    def name(self) -> str:
        """The underlying logger's dotted name."""
        return self.logger.name

    def process(self, msg, kwargs):
        extra = dict(kwargs.get("extra") or {})
        extra.setdefault("context", self._rendered)
        kwargs["extra"] = extra
        return msg, kwargs


def _render_context(context: dict) -> str:
    body = " ".join(f"{k}={context[k]}" for k in sorted(context))
    return f" [{body}]" if body else ""


def _configure_root() -> None:
    global _configured
    root = logging.getLogger(_ROOT)
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter(
                "%(asctime)s %(name)s %(levelname)s%(context)s %(message)s"
            )
        )
        handler.addFilter(_ContextFilter())
        root.addHandler(handler)
        level_name = os.environ.get("REPRO_LOG", "").strip().upper()
        level = getattr(logging, level_name, None) if level_name else None
        root.setLevel(level if isinstance(level, int) else logging.WARNING)
    _configured = True


def get_logger(name: str, context: dict | None = None):
    """Logger namespaced under ``repro.``; handler installed on first use.

    With a ``context`` dict, returns a :class:`logging.LoggerAdapter`
    whose records carry a rendered ``[k=v ...]`` block in the
    ``%(context)s`` format field (keys sorted for stable output); without
    one, returns the plain :class:`logging.Logger` as before.
    """
    if not _configured:
        _configure_root()
    qualified = name if name.startswith(_ROOT) else f"{_ROOT}.{name}"
    logger = logging.getLogger(qualified)
    if context is None:
        return logger
    return _ContextAdapter(logger, _render_context(dict(context)))
