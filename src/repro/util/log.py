"""Minimal logging setup.

Long-running drivers (the campaign, ESMACS sweeps) report progress
through standard :mod:`logging` so downstream users can silence, route
or timestamp it without touching library code.  ``get_logger`` attaches
one stderr handler to the package root exactly once.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger"]

_ROOT = "repro"
_configured = False


def get_logger(name: str) -> logging.Logger:
    """Logger namespaced under ``repro.``; handler installed on first use."""
    global _configured
    if not _configured:
        root = logging.getLogger(_ROOT)
        if not root.handlers:
            handler = logging.StreamHandler(sys.stderr)
            handler.setFormatter(
                logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
            )
            root.addHandler(handler)
            root.setLevel(logging.WARNING)
        _configured = True
    if name.startswith(_ROOT):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")
