"""Unit constants and conversions used across the pipeline.

Internal conventions:

* energies are kcal/mol (the unit the paper reports binding affinities in),
* distances are angstroms,
* MD time is picoseconds; protocol durations are quoted in nanoseconds,
* cluster accounting uses node-hours (Table 2's unit).
"""

from __future__ import annotations

__all__ = [
    "KCAL_PER_MOL",
    "NS_PER_PS",
    "PS_PER_FS",
    "BOLTZMANN_KCAL",
    "seconds_to_hours",
    "node_hours",
    "ns_to_steps",
]

#: symbolic tag — energies in this library are already kcal/mol
KCAL_PER_MOL = 1.0

#: nanoseconds per picosecond
NS_PER_PS = 1e-3

#: picoseconds per femtosecond
PS_PER_FS = 1e-3

#: Boltzmann constant in kcal/(mol K)
BOLTZMANN_KCAL = 0.0019872041


def seconds_to_hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return seconds / 3600.0


def node_hours(nodes: float, seconds: float) -> float:
    """Node-hours consumed by ``nodes`` nodes busy for ``seconds`` seconds."""
    if nodes < 0 or seconds < 0:
        raise ValueError("nodes and seconds must be non-negative")
    return nodes * seconds / 3600.0


def ns_to_steps(duration_ns: float, timestep_ps: float) -> int:
    """Number of MD steps covering ``duration_ns`` at ``timestep_ps``.

    Rounds to the nearest whole step; always at least 1 for a positive
    duration so scaled-down protocols never degenerate to zero work.
    """
    if timestep_ps <= 0:
        raise ValueError("timestep must be positive")
    if duration_ns < 0:
        raise ValueError("duration must be non-negative")
    if duration_ns == 0:
        return 0
    return max(1, round(duration_ns / NS_PER_PS / timestep_ps))
