"""Shared utilities: seeded RNG streams, timers, units, config validation.

Every stochastic component in the library draws randomness through
:func:`repro.util.rng.rng_stream` so that whole campaigns are reproducible
from a single integer seed.
"""

from repro.util.config import FrozenConfig, validate_positive, validate_range
from repro.util.log import get_logger
from repro.util.rng import RngFactory, rng_stream
from repro.util.timer import Timer, WallClock
from repro.util.units import (
    KCAL_PER_MOL,
    NS_PER_PS,
    node_hours,
    seconds_to_hours,
)

__all__ = [
    "FrozenConfig",
    "KCAL_PER_MOL",
    "NS_PER_PS",
    "RngFactory",
    "Timer",
    "WallClock",
    "get_logger",
    "node_hours",
    "rng_stream",
    "seconds_to_hours",
    "validate_positive",
    "validate_range",
]
