"""Configuration helpers: validated, immutable config dataclass base.

Protocol configs (ESMACS replica counts, GA population sizes, pilot shapes)
are plain frozen dataclasses.  Subclasses list validation in
``__post_init__`` using the helpers here so misconfiguration fails loudly at
construction time rather than deep inside a run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

__all__ = ["FrozenConfig", "validate_positive", "validate_range"]


def validate_positive(name: str, value: float, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or >= 0 if not strict)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


def validate_range(name: str, value: float, lo: float, hi: float) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")


@dataclass(frozen=True)
class FrozenConfig:
    """Base class for immutable configuration objects.

    Provides ``replace`` (functional update) and ``as_dict`` for logging.
    """

    def replace(self, **changes: Any):
        """Return a copy with ``changes`` applied (validations re-run)."""
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> dict[str, Any]:
        """Flatten to a plain dict (suitable for JSON / logs)."""
        return dataclasses.asdict(self)
