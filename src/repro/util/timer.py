"""Wall-clock and virtual-clock timing primitives.

The same code paths run under two notions of time: real wall time (thread
executor, science benches) and a simulated clock (discrete-event cluster).
:class:`WallClock` is the minimal interface both satisfy; the simulated
clock lives with the event loop in :mod:`repro.rct.cluster`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["WallClock", "Timer"]


class WallClock:
    """Real time source. ``now()`` returns seconds as a float."""

    def now(self) -> float:
        """Current time in seconds."""
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        """Idle forward; virtual clocks advance instead of sleeping."""
        if seconds > 0:
            time.sleep(seconds)


@dataclass
class Timer:
    """Accumulating stopwatch usable as a context manager.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    clock: WallClock = field(default_factory=WallClock)
    elapsed: float = 0.0
    _start: float | None = None

    def start(self) -> None:
        """Begin executing a placed task."""
        if self._start is not None:
            raise RuntimeError("Timer already running")
        self._start = self.clock.now()

    def stop(self) -> float:
        """Stop the stopwatch; returns the last interval."""
        if self._start is None:
            raise RuntimeError("Timer not running")
        delta = self.clock.now() - self._start
        self.elapsed += delta
        self._start = None
        return delta

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._start = None

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently started."""
        return self._start is not None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
