"""Deterministic, hierarchical random-number streams.

A campaign touches randomness in many places (library generation, GA search,
MD thermostats, NN initialization, replica seeds).  To keep experiments
reproducible while still letting components run concurrently, each component
derives an *independent* :class:`numpy.random.Generator` from a root seed and
a string key.  The derivation hashes the key, so adding a new consumer never
perturbs the streams of existing consumers — the property that matters when
extending a pipeline without invalidating previous results.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["rng_stream", "RngFactory"]


def _key_to_ints(key: str) -> list[int]:
    """Hash a string key into a list of 32-bit ints for seed sequences."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]


def rng_stream(seed: int, key: str) -> np.random.Generator:
    """Return an independent generator for ``key`` under a root ``seed``.

    Parameters
    ----------
    seed:
        Root campaign seed.  The same (seed, key) pair always yields a
        generator producing the same sequence.
    key:
        Free-form component name, e.g. ``"docking/lga/ligand-42"``.
    """
    seq = np.random.SeedSequence([seed & 0xFFFFFFFF, *_key_to_ints(key)])
    return np.random.default_rng(seq)


class RngFactory:
    """Factory bound to one root seed, handing out per-component streams.

    Components receive an ``RngFactory`` and call :meth:`stream` (or
    :meth:`child` to scope a subtree) instead of seeding generators
    themselves.  This makes seeding explicit in APIs and greppable in code.
    """

    def __init__(self, seed: int, prefix: str = "") -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self.prefix = prefix

    def stream(self, key: str) -> np.random.Generator:
        """Return the generator for ``key`` (scoped under this prefix)."""
        full = f"{self.prefix}/{key}" if self.prefix else key
        return rng_stream(self.seed, full)

    def child(self, key: str) -> "RngFactory":
        """Return a factory whose streams are scoped under ``key``."""
        full = f"{self.prefix}/{key}" if self.prefix else key
        return RngFactory(self.seed, full)

    def spawn_seed(self, key: str) -> int:
        """Derive a plain integer seed (for APIs that only accept ints)."""
        return int(self.stream(key).integers(0, 2**31 - 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self.seed}, prefix={self.prefix!r})"
