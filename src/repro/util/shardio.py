"""Library shard IO: gzip NDJSON and legacy gzip-pickle formats.

§6.1.1's libraries travel as thousands of gzip-compressed shards.  The
seed reproduction used gzip-pickle payloads (a list of ``(compound_id,
smiles)`` tuples); the streaming pipeline adds gzip NDJSON — one
``{"id": ..., "smiles": ...}`` object per line, the format of the Open
Molecule Data Pipeline's checkpointed connectors — because NDJSON shards
can be written incrementally, inspected with ``zcat``, and truncation is
detectable line-by-line instead of corrupting a whole pickle.

Both formats carry the same records and round-trip losslessly; readers
dispatch on the filename suffix.  All writes are atomic (temp file +
``os.replace``) so a crash mid-write never leaves a truncated shard
under the final name.
"""

from __future__ import annotations

import gzip
import json
import os
import pickle
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "SHARD_FORMATS",
    "SHARD_READ_ERRORS",
    "read_shard",
    "shard_format",
    "shard_path",
    "write_shard",
]

#: supported on-disk shard formats
SHARD_FORMATS = ("ndjson", "pickle")

#: everything :func:`read_shard` raises for a damaged/missing shard:
#: OSError (missing file, bad gzip), EOFError (truncated stream),
#: UnpicklingError (corrupt pickle), ValueError (malformed NDJSON)
SHARD_READ_ERRORS = (OSError, EOFError, pickle.UnpicklingError, ValueError)

_SUFFIX_BY_FORMAT = {"ndjson": ".ndjson.gz", "pickle": ".pkl.gz"}


def shard_format(path: Path | str) -> str:
    """Shard format implied by ``path``'s suffix.

    ``.ndjson.gz`` / ``.jsonl.gz`` → ``"ndjson"``; anything else is the
    legacy pickle payload (the seed format used ``.pkl.gz`` but older
    callers passed arbitrary names).
    """
    name = Path(path).name
    if name.endswith((".ndjson.gz", ".jsonl.gz")):
        return "ndjson"
    return "pickle"


def shard_path(directory: Path | str, name: str, index: int, format: str = "ndjson") -> Path:
    """Canonical path of shard ``index`` of library ``name``."""
    if format not in SHARD_FORMATS:
        raise ValueError(f"format must be one of {SHARD_FORMATS}, got {format!r}")
    return Path(directory) / f"{name}-shard-{index:05d}{_SUFFIX_BY_FORMAT[format]}"


def write_shard(
    path: Path | str,
    records: Iterable[Sequence[str]],
    format: str | None = None,
) -> Path:
    """Write ``(compound_id, smiles)`` records to one shard, atomically.

    ``format`` defaults to whatever ``path``'s suffix implies.  The shard
    is written to a sibling temp file and moved into place with
    ``os.replace``, so readers never observe a half-written shard.
    """
    path = Path(path)
    format = format or shard_format(path)
    if format not in SHARD_FORMATS:
        raise ValueError(f"format must be one of {SHARD_FORMATS}, got {format!r}")
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        if format == "ndjson":
            with gzip.open(tmp, "wt", encoding="utf-8") as fh:
                for cid, smiles in records:
                    fh.write(json.dumps({"id": cid, "smiles": smiles}) + "\n")
        else:
            with gzip.open(tmp, "wb") as fh:
                pickle.dump([(cid, smiles) for cid, smiles in records], fh)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def read_shard(path: Path | str) -> list[tuple[str, str]]:
    """Read one shard (either format) into ``(compound_id, smiles)`` tuples.

    Raises the usual IO/parse errors (``OSError``, ``EOFError``,
    ``pickle.UnpicklingError``, ``ValueError`` for malformed NDJSON) —
    resilience policy belongs to the caller
    (:class:`repro.nn.dataloader.ShardReader` counts-and-skips).
    """
    path = Path(path)
    if shard_format(path) == "ndjson":
        records: list[tuple[str, str]] = []
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                try:
                    records.append((rec["id"], rec["smiles"]))
                except (TypeError, KeyError) as exc:
                    raise ValueError(f"malformed NDJSON record in {path.name}") from exc
        return records
    with gzip.open(path, "rb") as fh:
        return [(cid, smiles) for cid, smiles in pickle.load(fh)]
