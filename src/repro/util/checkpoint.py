"""Resumable shard checkpoints: manifest + exact-precision result artifacts.

The streaming pipeline's restart contract (ROADMAP: "campaign killed
mid-S1 resumes from the last completed shard without rescoring") rests on
two pieces:

:class:`CheckpointManifest`
    An append-only JSONL ledger of completed shards.  Each completed
    shard appends one fsync'd line ``{"shard": ..., **payload}``.  A
    crash mid-append leaves at most one truncated final line, which the
    loader skips — so the manifest always reflects a prefix of fully
    completed work, never a partially completed shard.

:func:`save_artifact` / :func:`load_artifact`
    Per-shard result files (gzip JSONL, atomic write).  Floats are
    serialized with :func:`json.dumps`' ``repr``-based format, which
    round-trips ``float`` exactly — a resumed run reloads *bit-identical*
    scores and poses, so streaming-with-resume output is byte-for-byte
    equal to an uninterrupted run.

The write protocol is artifact first, manifest line second.  A crash
between the two leaves an orphaned artifact and no manifest entry; the
shard is simply recomputed (at-least-once semantics) and the artifact
overwritten — correctness never depends on the gap.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["CheckpointManifest", "load_artifact", "save_artifact", "shard_fingerprint"]


def shard_fingerprint(records: Iterable[Sequence[str]]) -> str:
    """Stable content fingerprint of a shard (order-sensitive).

    ``records`` are ``(compound_id, smiles)`` pairs — both fields are
    hashed, because library compound ids are positional (``OZD0000042``)
    and two different libraries share them.  Stored in the manifest
    payload and re-checked against the *current shard content* on
    resume, so a stale checkpoint directory can never silently graft
    results from a different library or shard cut onto a new run.
    """
    digest = hashlib.sha256()
    for rec in records:
        for fieldv in rec:
            digest.update(fieldv.encode("utf-8"))
            digest.update(b"\x1f")  # field separator
        digest.update(b"\x1e")  # record separator
    return digest.hexdigest()[:16]


class CheckpointManifest:
    """Append-only JSONL record of completed shards.

    ``mark_done`` is durable (flush + fsync) before it returns; ``load``
    tolerates a truncated final line from a crash mid-append.  Shard ids
    are free-form strings — the streaming layers use the shard filename
    for scoring and a positional ``dock-NNNNN`` id for docking shards.
    """

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self._done: dict[str, dict] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue  # truncated tail from a crash mid-append
            if isinstance(rec, dict) and isinstance(rec.get("shard"), str):
                self._done[rec["shard"]] = rec

    def __len__(self) -> int:
        return len(self._done)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._done

    def is_done(self, shard_id: str) -> bool:
        """Was ``shard_id`` fully completed by an earlier run?"""
        return shard_id in self._done

    def payload(self, shard_id: str) -> dict:
        """The payload recorded when ``shard_id`` completed."""
        return dict(self._done[shard_id])

    def completed(self) -> list[str]:
        """Completed shard ids, in completion order."""
        return list(self._done)

    def mark_done(self, shard_id: str, **payload) -> None:
        """Durably record ``shard_id`` as complete (flush + fsync)."""
        rec = {"shard": shard_id, **payload}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "ab+") as raw:
            # a crash mid-append can leave a torn final line with no
            # newline; terminate it so the new record starts on its own
            # line instead of concatenating into the garbage
            raw.seek(0, os.SEEK_END)
            if raw.tell() > 0:
                raw.seek(-1, os.SEEK_END)
                if raw.read(1) != b"\n":
                    raw.write(b"\n")
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._done[shard_id] = rec

    def clear(self) -> None:
        """Forget all completed shards (deletes the manifest file)."""
        self.path.unlink(missing_ok=True)
        self._done.clear()


def save_artifact(path: Path | str, rows: list[dict]) -> Path:
    """Atomically write one shard's result rows as gzip JSONL.

    ``float`` values round-trip exactly through JSON's ``repr``-based
    formatting, so reloaded scores/poses are bit-identical.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with gzip.open(tmp, "wt", encoding="utf-8") as fh:
            for row in rows:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def load_artifact(path: Path | str) -> list[dict]:
    """Read rows written by :func:`save_artifact`."""
    with gzip.open(Path(path), "rt", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]
