"""Lamarckian genetic algorithm for pose search.

The search loop of AutoDock(-GPU): a genetic algorithm over pose genes
(conformer index, translation, orientation) where a fraction of each
generation undergoes local search and — the Lamarckian part — writes the
refined genes back into the population.  AutoDock-GPU parallelizes this
over ligand–receptor poses on a GPU; the NumPy analogue keeps the
population as struct-of-arrays and scores whole generations in one batched
kernel call.  Evaluation counts are surfaced so throughput/FLOP accounting
(Tables 2/3) can charge docking cost honestly.

The stochastic part of the loop is factored into :func:`draw_initial_genes`
and :func:`draw_generation`, and the deterministic genetics arithmetic into
:func:`apply_genetics`.  The fused multi-ligand path
(:mod:`repro.docking.batch`) calls the *same* helpers per ligand stream and
the same packed kernels, which is what makes batched and sequential docking
of one compound bit-identical: equal draws in, equal arithmetic through.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.docking.ligand import LigandBeads, Pose
from repro.docking.local_search import Adadelta, SolisWets
from repro.docking.receptor import Receptor
from repro.docking.scoring import apply_rigid_steps_batch, score_poses_batch
from repro.util.config import FrozenConfig, validate_positive, validate_range

__all__ = [
    "LGAConfig",
    "LamarckianGA",
    "DockingRun",
    "GenerationDraws",
    "draw_initial_genes",
    "draw_generation",
    "apply_genetics",
]


@dataclass(frozen=True)
class LGAConfig(FrozenConfig):
    """GA hyper-parameters (AutoDock-flavoured defaults, scaled down)."""

    population: int = 24
    generations: int = 10
    tournament: int = 3
    crossover_rate: float = 0.8
    mutation_rate: float = 0.3
    mutation_trans: float = 1.2  # angstrom
    mutation_rot: float = 0.4  # radians
    local_search_rate: float = 0.25  # fraction refined per generation
    elitism: int = 1

    def __post_init__(self) -> None:
        validate_positive("population", self.population)
        validate_positive("generations", self.generations)
        validate_range("crossover_rate", self.crossover_rate, 0, 1)
        validate_range("mutation_rate", self.mutation_rate, 0, 1)
        validate_range("local_search_rate", self.local_search_rate, 0, 1)
        if self.elitism >= self.population:
            raise ValueError("elitism must be smaller than population")

    @property
    def n_children(self) -> int:
        """Offspring rows per generation (population minus elites)."""
        return self.population - self.elitism

    @property
    def n_local_search(self) -> int:
        """Poses refined by local search per generation."""
        return max(1, int(round(self.local_search_rate * self.population)))


@dataclass
class DockingRun:
    """Result of one LGA docking run."""

    best_pose: Pose
    best_score: float
    n_evals: int
    history: list[float] = field(default_factory=list)  # best score/generation


def _random_quaternions(rng: np.random.Generator, k: int) -> np.ndarray:
    """Batch of uniform random unit quaternions (Shoemake)."""
    u1, u2, u3 = rng.random((3, k))
    return np.stack(
        [
            np.sqrt(1 - u1) * np.sin(2 * np.pi * u2),
            np.sqrt(1 - u1) * np.cos(2 * np.pi * u2),
            np.sqrt(u1) * np.sin(2 * np.pi * u3),
            np.sqrt(u1) * np.cos(2 * np.pi * u3),
        ],
        axis=1,
    )


def draw_initial_genes(
    rng: np.random.Generator,
    p: int,
    half: float,
    n_conformers: int,
    n_torsions: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
    """Draw the initial population's genes from one ligand's stream.

    Returns ``(conf (p,), trans (p, 3), quat (p, 4), tors (p, T) or
    None)``.  Draw order is part of the determinism contract — the fused
    path replays exactly this sequence per ligand stream.
    """
    conf = rng.integers(n_conformers, size=p)
    trans = rng.uniform(-half * 0.7, half * 0.7, size=(p, 3))
    quat = _random_quaternions(rng, p)
    tors = rng.uniform(-np.pi, np.pi, size=(p, n_torsions)) if n_torsions else None
    return conf, trans, quat, tors


@dataclass
class GenerationDraws:
    """One generation's randomness for one ligand stream.

    Candidate/`chosen` indices are *local* (0 … population−1); the fused
    path offsets them into its stacked population.  Coins are kept raw
    (uniform draws) so thresholding stays in :func:`apply_genetics`.
    """

    cand_a: np.ndarray  # (n_children, tournament) tournament candidates
    cand_b: np.ndarray
    do_cross: np.ndarray  # (n_children,) bool
    mix: np.ndarray  # (n_children, 1) crossover blend
    pick_b_coin: np.ndarray  # (n_children,) conformer-inheritance coin
    mut_t: np.ndarray  # (n_children,) bool, translation mutation
    jolt_t: np.ndarray  # (n_children, 3) translation jolt
    mut_r: np.ndarray  # (n_children,) bool, rotation mutation
    axis: np.ndarray  # (n_children, 3) unit rotation axes
    angle: np.ndarray  # (n_children, 1) rotation angles
    mut_c_coin: np.ndarray  # (n_children,) conformer-mutation coin
    conf_draw: np.ndarray  # (n_children,) replacement conformer indices
    mut_a: np.ndarray | None  # (n_children,) bool, torsion mutation
    jolt_a: np.ndarray | None  # (n_children, T) torsion jolt
    chosen: np.ndarray  # (n_ls,) local-search subset (local indices)


def draw_generation(
    rng: np.random.Generator,
    cfg: LGAConfig,
    n_conformers: int,
    n_torsions: int,
) -> GenerationDraws:
    """Draw one generation's GA randomness from one ligand's stream.

    The sequence (selection candidates, crossover coins, mutation coins
    and jolts, local-search subset) matches the historical inline draw
    order of :meth:`LamarckianGA.dock`; none of these draws depend on
    scores, so the whole generation can be drawn up front.
    """
    p = cfg.population
    n_children = cfg.n_children
    cand_a = rng.integers(p, size=(n_children, cfg.tournament))
    cand_b = rng.integers(p, size=(n_children, cfg.tournament))
    do_cross = rng.random(n_children) < cfg.crossover_rate
    mix = rng.random((n_children, 1))
    pick_b_coin = rng.random(n_children)
    mut_t = rng.random(n_children) < cfg.mutation_rate
    jolt_t = rng.normal(scale=cfg.mutation_trans, size=(n_children, 3))
    mut_r = rng.random(n_children) < cfg.mutation_rate
    axis = rng.normal(size=(n_children, 3))
    axis /= np.linalg.norm(axis, axis=1, keepdims=True) + 1e-12
    angle = rng.normal(scale=cfg.mutation_rot, size=(n_children, 1))
    mut_c_coin = rng.random(n_children)
    conf_draw = rng.integers(n_conformers, size=n_children)
    if n_torsions:
        mut_a = rng.random(n_children) < cfg.mutation_rate
        jolt_a = rng.normal(scale=cfg.mutation_rot, size=(n_children, n_torsions))
    else:
        mut_a = jolt_a = None
    chosen = rng.choice(p, size=cfg.n_local_search, replace=False)
    return GenerationDraws(
        cand_a=cand_a,
        cand_b=cand_b,
        do_cross=do_cross,
        mix=mix,
        pick_b_coin=pick_b_coin,
        mut_t=mut_t,
        jolt_t=jolt_t,
        mut_r=mut_r,
        axis=axis,
        angle=angle,
        mut_c_coin=mut_c_coin,
        conf_draw=conf_draw,
        mut_a=mut_a,
        jolt_a=jolt_a,
        chosen=chosen,
    )


def apply_genetics(
    cfg: LGAConfig,
    scores: np.ndarray,
    conf: np.ndarray,
    trans: np.ndarray,
    quat: np.ndarray,
    tors: np.ndarray | None,
    n_conf_rows: np.ndarray,
    d: GenerationDraws,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
    """Selection + crossover + mutation over population rows, vectorized.

    ``d``'s candidate indices must already address rows of
    ``scores``/``conf``/… (the fused path offsets each ligand's local
    draws into the stacked population; one ligand at a time they are the
    identity).  ``n_conf_rows`` carries each child row's ligand conformer
    count so the conformer-swap mutation gates per row.  Pure arithmetic,
    no RNG — the shared genetics kernel of both docking paths.
    """
    n_rows = len(d.do_cross)
    rows = np.arange(n_rows)

    # tournament selection: keep the best-scoring candidate per row
    parents_a = d.cand_a[rows, np.argmin(scores[d.cand_a], axis=1)]
    parents_b = d.cand_b[rows, np.argmin(scores[d.cand_b], axis=1)]

    mix = d.mix
    new_trans = np.where(
        d.do_cross[:, None],
        mix * trans[parents_a] + (1 - mix) * trans[parents_b],
        trans[parents_a],
    )
    qa = quat[parents_a]
    qb = quat[parents_b]
    sign = np.where((qa * qb).sum(axis=1, keepdims=True) < 0, -1.0, 1.0)
    q_mix = mix * qa + (1 - mix) * sign * qb
    q_mix = q_mix / np.linalg.norm(q_mix, axis=1, keepdims=True)
    new_quat = np.where(d.do_cross[:, None], q_mix, qa)
    pick_b = d.do_cross & (d.pick_b_coin < 0.5)
    new_conf = np.where(pick_b, conf[parents_b], conf[parents_a])
    new_tors = None
    if tors is not None:
        new_tors = np.where(
            d.do_cross[:, None],
            mix * tors[parents_a] + (1 - mix) * tors[parents_b],
            tors[parents_a],
        )

    # mutation: Gaussian translation jolt + random small rotation
    new_trans = new_trans + np.where(d.mut_t[:, None], d.jolt_t, 0.0)
    d_rot = np.where(d.mut_r[:, None], d.axis * d.angle, 0.0)
    new_trans, new_quat = apply_rigid_steps_batch(
        new_trans, new_quat, np.zeros_like(new_trans), d_rot
    )
    mut_c = (d.mut_c_coin < 0.1 * cfg.mutation_rate) & (n_conf_rows > 1)
    new_conf = np.where(mut_c, d.conf_draw, new_conf)
    if tors is not None and d.mut_a is not None:
        new_tors = new_tors + np.where(d.mut_a[:, None], d.jolt_a, 0.0)
    return new_conf, new_trans, new_quat, new_tors


class LamarckianGA:
    """LGA engine bound to a local-search method ("solis-wets"/"adadelta")."""

    def __init__(
        self,
        config: LGAConfig | None = None,
        local_search: str = "adadelta",
    ) -> None:
        self.config = config or LGAConfig()
        if local_search == "adadelta":
            self.local_search = Adadelta()
        elif local_search == "solis-wets":
            self.local_search = SolisWets()
        else:
            raise ValueError(
                f"unknown local search {local_search!r} "
                "(expected 'adadelta' or 'solis-wets')"
            )

    def dock(
        self,
        receptor: Receptor,
        beads: LigandBeads,
        rng: np.random.Generator,
    ) -> DockingRun:
        """Run the LGA; returns best pose, score and evaluation count."""
        cfg = self.config
        p = cfg.population
        half = receptor.box_size / 2.0
        n_tor = beads.n_torsions

        conf, trans, quat, tors = draw_initial_genes(
            rng, p, half, beads.n_conformers, n_tor
        )
        scores = score_poses_batch(receptor, beads, conf, trans, quat, tors)
        n_evals = p
        history: list[float] = [float(scores.min())]
        n_conf_rows = np.full(cfg.n_children, beads.n_conformers)

        for _ in range(cfg.generations):
            d = draw_generation(rng, cfg, beads.n_conformers, n_tor)
            order = np.argsort(scores)
            elite = order[: cfg.elitism]
            new_conf, new_trans, new_quat, new_tors = apply_genetics(
                cfg, scores, conf, trans, quat, tors, n_conf_rows, d
            )

            conf = np.concatenate([conf[elite], new_conf])
            trans = np.concatenate([trans[elite], new_trans])
            quat = np.concatenate([quat[elite], new_quat])
            if n_tor:
                tors = np.concatenate([tors[elite], new_tors])
            scores = score_poses_batch(receptor, beads, conf, trans, quat, tors)
            n_evals += p

            # Lamarckian step: refine a random subset, write back the genes
            chosen = d.chosen
            refined = self.local_search.refine_batch(
                receptor,
                beads,
                conf[chosen],
                trans[chosen],
                quat[chosen],
                rng,
                None if tors is None else tors[chosen],
            )
            n_evals += refined.n_evals
            better = refined.scores < scores[chosen]
            idx = chosen[better]
            trans[idx] = refined.translations[better]
            quat[idx] = refined.quaternions[better]
            if n_tor and refined.torsion_angles is not None:
                tors[idx] = refined.torsion_angles[better]
            scores[idx] = refined.scores[better]
            history.append(float(scores.min()))

        best = int(np.argmin(scores))
        return DockingRun(
            best_pose=Pose(
                int(conf[best]),
                trans[best].copy(),
                quat[best].copy(),
                None if tors is None else tors[best].copy(),
            ),
            best_score=float(scores[best]),
            n_evals=n_evals,
            history=history,
        )
