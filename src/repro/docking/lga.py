"""Lamarckian genetic algorithm for pose search.

The search loop of AutoDock(-GPU): a genetic algorithm over pose genes
(conformer index, translation, orientation) where a fraction of each
generation undergoes local search and — the Lamarckian part — writes the
refined genes back into the population.  AutoDock-GPU parallelizes this
over ligand–receptor poses on a GPU; the NumPy analogue keeps the
population as struct-of-arrays and scores whole generations in one batched
kernel call.  Evaluation counts are surfaced so throughput/FLOP accounting
(Tables 2/3) can charge docking cost honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.docking.ligand import LigandBeads, Pose
from repro.docking.local_search import Adadelta, SolisWets
from repro.docking.receptor import Receptor
from repro.docking.scoring import apply_rigid_steps_batch, score_poses_batch
from repro.util.config import FrozenConfig, validate_positive, validate_range

__all__ = ["LGAConfig", "LamarckianGA", "DockingRun"]


@dataclass(frozen=True)
class LGAConfig(FrozenConfig):
    """GA hyper-parameters (AutoDock-flavoured defaults, scaled down)."""

    population: int = 24
    generations: int = 10
    tournament: int = 3
    crossover_rate: float = 0.8
    mutation_rate: float = 0.3
    mutation_trans: float = 1.2  # angstrom
    mutation_rot: float = 0.4  # radians
    local_search_rate: float = 0.25  # fraction refined per generation
    elitism: int = 1

    def __post_init__(self) -> None:
        validate_positive("population", self.population)
        validate_positive("generations", self.generations)
        validate_range("crossover_rate", self.crossover_rate, 0, 1)
        validate_range("mutation_rate", self.mutation_rate, 0, 1)
        validate_range("local_search_rate", self.local_search_rate, 0, 1)
        if self.elitism >= self.population:
            raise ValueError("elitism must be smaller than population")


@dataclass
class DockingRun:
    """Result of one LGA docking run."""

    best_pose: Pose
    best_score: float
    n_evals: int
    history: list[float] = field(default_factory=list)  # best score/generation


def _random_quaternions(rng: np.random.Generator, k: int) -> np.ndarray:
    """Batch of uniform random unit quaternions (Shoemake)."""
    u1, u2, u3 = rng.random((3, k))
    return np.stack(
        [
            np.sqrt(1 - u1) * np.sin(2 * np.pi * u2),
            np.sqrt(1 - u1) * np.cos(2 * np.pi * u2),
            np.sqrt(u1) * np.sin(2 * np.pi * u3),
            np.sqrt(u1) * np.cos(2 * np.pi * u3),
        ],
        axis=1,
    )


class LamarckianGA:
    """LGA engine bound to a local-search method ("solis-wets"/"adadelta")."""

    def __init__(
        self,
        config: LGAConfig | None = None,
        local_search: str = "adadelta",
    ) -> None:
        self.config = config or LGAConfig()
        if local_search == "adadelta":
            self.local_search = Adadelta()
        elif local_search == "solis-wets":
            self.local_search = SolisWets()
        else:
            raise ValueError(
                f"unknown local search {local_search!r} "
                "(expected 'adadelta' or 'solis-wets')"
            )

    def dock(
        self,
        receptor: Receptor,
        beads: LigandBeads,
        rng: np.random.Generator,
    ) -> DockingRun:
        """Run the LGA; returns best pose, score and evaluation count."""
        cfg = self.config
        p = cfg.population
        half = receptor.box_size / 2.0
        n_tor = beads.n_torsions

        conf = rng.integers(beads.n_conformers, size=p)
        trans = rng.uniform(-half * 0.7, half * 0.7, size=(p, 3))
        quat = _random_quaternions(rng, p)
        tors = (
            rng.uniform(-np.pi, np.pi, size=(p, n_tor)) if n_tor else None
        )
        scores = score_poses_batch(receptor, beads, conf, trans, quat, tors)
        n_evals = p
        history: list[float] = [float(scores.min())]

        for _ in range(cfg.generations):
            order = np.argsort(scores)
            elite = order[: cfg.elitism]
            n_children = p - cfg.elitism

            # tournament selection, vectorized: draw (children, tournament)
            # candidate indices, keep the best-scoring one per row
            cand_a = rng.integers(p, size=(n_children, cfg.tournament))
            parents_a = cand_a[
                np.arange(n_children), np.argmin(scores[cand_a], axis=1)
            ]
            cand_b = rng.integers(p, size=(n_children, cfg.tournament))
            parents_b = cand_b[
                np.arange(n_children), np.argmin(scores[cand_b], axis=1)
            ]

            do_cross = rng.random(n_children) < cfg.crossover_rate
            mix = rng.random((n_children, 1))
            new_trans = np.where(
                do_cross[:, None],
                mix * trans[parents_a] + (1 - mix) * trans[parents_b],
                trans[parents_a],
            )
            qa = quat[parents_a]
            qb = quat[parents_b]
            sign = np.where((qa * qb).sum(axis=1, keepdims=True) < 0, -1.0, 1.0)
            q_mix = mix * qa + (1 - mix) * sign * qb
            q_mix = q_mix / np.linalg.norm(q_mix, axis=1, keepdims=True)
            new_quat = np.where(do_cross[:, None], q_mix, qa)
            pick_b = do_cross & (rng.random(n_children) < 0.5)
            new_conf = np.where(pick_b, conf[parents_b], conf[parents_a])
            if n_tor:
                new_tors = np.where(
                    do_cross[:, None],
                    mix * tors[parents_a] + (1 - mix) * tors[parents_b],
                    tors[parents_a],
                )

            # mutation: Gaussian translation jolt + random small rotation
            mut_t = rng.random(n_children) < cfg.mutation_rate
            new_trans = new_trans + np.where(
                mut_t[:, None], rng.normal(scale=cfg.mutation_trans, size=(n_children, 3)), 0.0
            )
            mut_r = rng.random(n_children) < cfg.mutation_rate
            axis = rng.normal(size=(n_children, 3))
            axis /= np.linalg.norm(axis, axis=1, keepdims=True) + 1e-12
            angle = rng.normal(scale=cfg.mutation_rot, size=(n_children, 1))
            d_rot = np.where(mut_r[:, None], axis * angle, 0.0)
            new_trans, new_quat = apply_rigid_steps_batch(
                new_trans, new_quat, np.zeros_like(new_trans), d_rot
            )
            mut_c = (rng.random(n_children) < 0.1 * cfg.mutation_rate) & (
                beads.n_conformers > 1
            )
            new_conf = np.where(
                mut_c, rng.integers(beads.n_conformers, size=n_children), new_conf
            )
            if n_tor:
                mut_a = rng.random(n_children) < cfg.mutation_rate
                new_tors = new_tors + np.where(
                    mut_a[:, None],
                    rng.normal(scale=cfg.mutation_rot, size=(n_children, n_tor)),
                    0.0,
                )

            conf = np.concatenate([conf[elite], new_conf])
            trans = np.concatenate([trans[elite], new_trans])
            quat = np.concatenate([quat[elite], new_quat])
            if n_tor:
                tors = np.concatenate([tors[elite], new_tors])
            scores = score_poses_batch(receptor, beads, conf, trans, quat, tors)
            n_evals += p

            # Lamarckian step: refine a random subset, write back the genes
            n_ls = max(1, int(round(cfg.local_search_rate * p)))
            chosen = rng.choice(p, size=n_ls, replace=False)
            refined = self.local_search.refine_batch(
                receptor,
                beads,
                conf[chosen],
                trans[chosen],
                quat[chosen],
                rng,
                None if tors is None else tors[chosen],
            )
            n_evals += refined.n_evals
            better = refined.scores < scores[chosen]
            idx = chosen[better]
            trans[idx] = refined.translations[better]
            quat[idx] = refined.quaternions[better]
            if n_tor and refined.torsion_angles is not None:
                tors[idx] = refined.torsion_angles[better]
            scores[idx] = refined.scores[better]
            history.append(float(scores.min()))

        best = int(np.argmin(scores))
        return DockingRun(
            best_pose=Pose(
                int(conf[best]),
                trans[best].copy(),
                quat[best].copy(),
                None if tors is None else tors[best].copy(),
            ),
            best_score=float(scores[best]),
            n_evals=n_evals,
            history=history,
        )
