"""Receptor models: binding pockets as precomputed interaction grids.

AutoDock-style docking scores a ligand pose against *precomputed affinity
grids* of the receptor; searching moves the ligand, never the protein.  We
keep exactly that structure.  A :class:`Receptor` is a cubic box holding
three scalar fields sampled on a regular grid:

* ``phi``      — electrostatic potential (kcal/mol per unit charge),
* ``hydro``    — hydrophobic complementarity field,
* ``steric``   — soft-core repulsion from protein bulk.

Fields are generated from a seeded arrangement of *pocket sites* (charged,
hydrophobic and excluded-volume pseudo-atoms), so each target protein and
each crystal-structure variant (PDB id) yields a distinct, reproducible
binding landscape.  The four SARS-CoV-2 targets the paper screens —
3CLPro, PLPro, ADRP and NSP15 — ship as named presets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import RngFactory

__all__ = ["Receptor", "PocketSite", "make_receptor", "TARGETS"]

#: the four main SARS-CoV-2 targets from §7.1.1, with their paper PDB ids
TARGETS: dict[str, tuple[str, ...]] = {
    "3CLPro": ("6LU7", "6Y2E"),
    "PLPro": ("6W9C", "6WX4"),
    "ADRP": ("6W02",),
    "NSP15": ("6VWW",),
}


@dataclass(frozen=True)
class PocketSite:
    """A pseudo-atom shaping the pocket fields."""

    position: np.ndarray  # (3,) angstrom
    charge: float  # e
    hydrophobicity: float  # [-1, 1]
    radius: float  # angstrom (steric core)


@dataclass
class Receptor:
    """A pocket: grids + metadata.  Built via :func:`make_receptor`."""

    target: str
    pdb_id: str
    box_size: float  # angstrom, cube edge
    spacing: float  # angstrom between grid points
    sites: list[PocketSite]
    phi: np.ndarray = field(repr=False)  # (n, n, n)
    hydro: np.ndarray = field(repr=False)
    steric: np.ndarray = field(repr=False)

    @property
    def n_grid(self) -> int:
        """Grid points per axis."""
        return self.phi.shape[0]

    @property
    def stacked_grids(self) -> np.ndarray:
        """The three fields as one ``(3, n, n, n)`` stack, lazily cached.

        The fused scoring kernel interpolates all three fields with a
        single gather stencil; the stack is invalidated if the field
        arrays are replaced.
        """
        cached = self.__dict__.get("_stacked_grids")
        if (
            cached is None
            or cached[0] is not self.phi
            or cached[1] is not self.hydro
            or cached[2] is not self.steric
        ):
            stack = np.stack([self.phi, self.hydro, self.steric])
            cached = (self.phi, self.hydro, self.steric, stack)
            self.__dict__["_stacked_grids"] = cached
        return cached[3]

    @property
    def origin(self) -> float:
        """Coordinate of grid index 0 along each axis (box centred at 0)."""
        return -self.box_size / 2.0

    def grid_coords(self) -> np.ndarray:
        """1-D axis coordinates shared by all three dimensions."""
        return self.origin + self.spacing * np.arange(self.n_grid)

    def contains(self, coords: np.ndarray, margin: float = 0.0) -> np.ndarray:
        """Boolean mask: which points lie inside the box (minus margin)."""
        half = self.box_size / 2.0 - margin
        return (np.abs(coords) <= half).all(axis=-1)


def _field_from_sites(
    sites: list[PocketSite], axis: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Evaluate the three fields on the grid (vectorized over grid points)."""
    n = len(axis)
    gx, gy, gz = np.meshgrid(axis, axis, axis, indexing="ij")
    grid = np.stack([gx, gy, gz], axis=-1).reshape(-1, 3)  # (n^3, 3)

    phi = np.zeros(len(grid))
    hydro = np.zeros(len(grid))
    steric = np.zeros(len(grid))
    for site in sites:
        d = np.linalg.norm(grid - site.position[None, :], axis=1)
        # soften the core so potentials stay in kcal/mol-scale and the
        # scoring function remains smooth enough for gradient local search
        d = np.maximum(d, 1.5)
        # screened Coulomb (distance-dependent dielectric, AutoDock-style)
        phi += 332.0 * site.charge / (4.0 * d * d)
        # short-range hydrophobic contact well
        hydro += site.hydrophobicity * np.exp(-((d / 2.5) ** 2))
        # soft-core repulsion from the site's excluded volume
        steric += 4.0 * np.exp(-((d / site.radius) ** 2) * 2.0)
    shape = (n, n, n)
    return phi.reshape(shape), hydro.reshape(shape), steric.reshape(shape)


def make_receptor(
    target: str,
    pdb_id: str | None = None,
    seed: int = 2021,
    box_size: float = 16.0,
    spacing: float = 0.8,
    n_sites: int = 24,
) -> Receptor:
    """Build a receptor for a named target (and optional PDB variant).

    The same (target, pdb_id, seed) triple always produces the same pocket.
    Different PDB ids of one target share most sites but jitter positions
    slightly — modelling the crystal-structure ensembles the paper docks
    against (§7.1.2 uses multiple structures per target).
    """
    if target not in TARGETS:
        raise ValueError(f"unknown target {target!r}; known: {sorted(TARGETS)}")
    if pdb_id is None:
        pdb_id = TARGETS[target][0]
    if pdb_id not in TARGETS[target]:
        raise ValueError(f"unknown PDB id {pdb_id!r} for target {target}")
    if box_size <= 0 or spacing <= 0:
        raise ValueError("box_size and spacing must be positive")

    factory = RngFactory(seed, prefix=f"receptor/{target}")
    base_rng = factory.stream("sites")
    half = box_size / 2.0
    sites: list[PocketSite] = []
    for _ in range(n_sites):
        # sites cluster toward the pocket centre: drug pockets are concave
        pos = base_rng.normal(scale=half * 0.45, size=3).clip(-half * 0.9, half * 0.9)
        charge = float(base_rng.normal(scale=0.45))
        hydro = float(base_rng.uniform(-1.0, 1.0))
        radius = float(base_rng.uniform(1.4, 2.4))
        sites.append(PocketSite(pos, charge, hydro, radius))

    # crystal-structure variation: small per-PDB positional jitter
    variant_rng = factory.stream(f"variant/{pdb_id}")
    jitter = variant_rng.normal(scale=0.35, size=(n_sites, 3))
    sites = [
        PocketSite(s.position + jitter[i], s.charge, s.hydrophobicity, s.radius)
        for i, s in enumerate(sites)
    ]

    n = int(np.floor(box_size / spacing)) + 1
    axis = -half + spacing * np.arange(n)
    phi, hydro_f, steric = _field_from_sites(sites, axis)
    return Receptor(
        target=target,
        pdb_id=pdb_id,
        box_size=box_size,
        spacing=spacing,
        sites=sites,
        phi=phi,
        hydro=hydro_f,
        steric=steric,
    )
