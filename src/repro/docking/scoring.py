"""Grid-based scoring function with analytic pose gradients — batch-native.

Scores follow the AutoDock decomposition: per-atom lookups into the
receptor's electrostatic, hydrophobic and steric grids, summed with the
ligand's per-atom parameters.  Trilinear interpolation makes the score a
piecewise-trilinear function of atom positions, so the gradient needed by
the ADADELTA local search comes from the same interpolation stencil — no
finite differencing at search time.

AutoDock-GPU processes "ligand-receptor poses in parallel over multiple
compute units" (§5.1.1); the NumPy analogue is batching, so every kernel
here takes a *batch* of poses ``(k, n_atoms, 3)`` and the single-pose API
is a thin wrapper.  Scores are negative-better (kcal/mol-like).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.docking.ligand import (
    LigandBeads,
    Pose,
    pose_coordinates,
    quaternion_to_matrix,
)
from repro.docking.receptor import Receptor

__all__ = [
    "ScoreBreakdown",
    "score_pose",
    "score_and_gradient",
    "score_poses_batch",
    "score_and_gradient_batch",
    "batch_pose_coordinates",
    "apply_rigid_step",
    "apply_rigid_steps_batch",
    "interpolate",
]

#: penalty per angstrom^2 for atoms escaping the box
_WALL_K = 10.0

#: intra-ligand clash stiffness (kcal/mol/A^2) and contact-distance scale
_INTRA_K = 10.0
_INTRA_SCALE = 0.8


@dataclass(frozen=True)
class ScoreBreakdown:
    """Score decomposition (all kcal/mol; total = sum of parts)."""

    electrostatic: float
    hydrophobic: float
    steric: float
    wall: float

    @property
    def total(self) -> float:
        """Sum of all components."""
        return self.electrostatic + self.hydrophobic + self.steric + self.wall


def interpolate(
    grid: np.ndarray, receptor: Receptor, coords: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Trilinear interpolation of ``grid`` at ``coords`` (…, 3).

    Returns ``(values, gradients)`` with shapes ``coords.shape[:-1]`` and
    ``coords.shape``; gradients are w.r.t. world coordinates (per angstrom).
    """
    n = receptor.n_grid
    rel = (coords - receptor.origin) / receptor.spacing
    i0 = np.clip(np.floor(rel).astype(int), 0, n - 2)
    f = np.clip(rel - i0, 0.0, 1.0)

    ix, iy, iz = i0[..., 0], i0[..., 1], i0[..., 2]
    fx, fy, fz = f[..., 0], f[..., 1], f[..., 2]

    c000 = grid[ix, iy, iz]
    c100 = grid[ix + 1, iy, iz]
    c010 = grid[ix, iy + 1, iz]
    c110 = grid[ix + 1, iy + 1, iz]
    c001 = grid[ix, iy, iz + 1]
    c101 = grid[ix + 1, iy, iz + 1]
    c011 = grid[ix, iy + 1, iz + 1]
    c111 = grid[ix + 1, iy + 1, iz + 1]

    c00 = c000 * (1 - fx) + c100 * fx
    c10 = c010 * (1 - fx) + c110 * fx
    c01 = c001 * (1 - fx) + c101 * fx
    c11 = c011 * (1 - fx) + c111 * fx
    c0 = c00 * (1 - fy) + c10 * fy
    c1 = c01 * (1 - fy) + c11 * fy
    value = c0 * (1 - fz) + c1 * fz

    d_dx = (
        ((c100 - c000) * (1 - fy) + (c110 - c010) * fy) * (1 - fz)
        + ((c101 - c001) * (1 - fy) + (c111 - c011) * fy) * fz
    )
    d_dy = (
        ((c010 - c000) * (1 - fx) + (c110 - c100) * fx) * (1 - fz)
        + ((c011 - c001) * (1 - fx) + (c111 - c101) * fx) * fz
    )
    d_dz = c1 - c0
    grad = np.stack([d_dx, d_dy, d_dz], axis=-1) / receptor.spacing
    return value, grad


# ------------------------------------------------------------------- batch


def batch_quaternion_to_matrix(q: np.ndarray) -> np.ndarray:
    """Rotation matrices for a batch of quaternions (k, 4) → (k, 3, 3)."""
    q = q / np.linalg.norm(q, axis=-1, keepdims=True)
    x, y, z, w = q[..., 0], q[..., 1], q[..., 2], q[..., 3]
    m = np.empty(q.shape[:-1] + (3, 3))
    m[..., 0, 0] = 1 - 2 * (y * y + z * z)
    m[..., 0, 1] = 2 * (x * y - w * z)
    m[..., 0, 2] = 2 * (x * z + w * y)
    m[..., 1, 0] = 2 * (x * y + w * z)
    m[..., 1, 1] = 1 - 2 * (x * x + z * z)
    m[..., 1, 2] = 2 * (y * z - w * x)
    m[..., 2, 0] = 2 * (x * z - w * y)
    m[..., 2, 1] = 2 * (y * z + w * x)
    m[..., 2, 2] = 1 - 2 * (x * x + y * y)
    return m


def batch_pose_coordinates(
    beads: LigandBeads,
    conformer_idx: np.ndarray,
    translations: np.ndarray,
    quaternions: np.ndarray,
    torsion_angles: np.ndarray | None = None,
) -> np.ndarray:
    """World coordinates for a batch of poses → (k, n_atoms, 3).

    ``torsion_angles`` (k, n_torsions) applies the rotatable-bond genes
    in the local frame before the rigid-body transform; ``None`` keeps
    the conformer rigid.
    """
    from repro.docking.ligand import apply_torsions_batch

    conf = beads.conformers[conformer_idx]  # (k, n, 3)
    if torsion_angles is not None and beads.n_torsions:
        conf = apply_torsions_batch(conf, beads.torsions, torsion_angles)
    rot = batch_quaternion_to_matrix(quaternions)  # (k, 3, 3)
    return np.einsum("kni,kji->knj", conf, rot) + translations[:, None, :]


def _batch_atom_energies(
    receptor: Receptor, beads: LigandBeads, coords: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched energies + per-atom gradients.

    Parameters: ``coords`` (k, n, 3).  Returns ``(totals (k,),
    components (k, 4), atom_grad (k, n, 3))`` where components order is
    (electrostatic, hydrophobic, steric, wall).
    """
    phi, dphi = interpolate(receptor.phi, receptor, coords)
    hyd, dhyd = interpolate(receptor.hydro, receptor, coords)
    ste, dste = interpolate(receptor.steric, receptor, coords)

    q = beads.charges[None, :]
    h = beads.hydro[None, :]
    e_elec = (q * phi).sum(axis=1)
    e_hydro = -(h * hyd).sum(axis=1)
    e_steric = ste.sum(axis=1)

    grad = q[..., None] * dphi - h[..., None] * dhyd + dste

    half = receptor.box_size / 2.0
    excess = np.abs(coords) - half
    outside = excess > 0
    e_wall = _WALL_K * np.where(outside, excess**2, 0.0).sum(axis=(1, 2))
    grad = grad + np.where(outside, 2.0 * _WALL_K * excess * np.sign(coords), 0.0)

    # intra-ligand clash penalty: flexible ligands must not fold through
    # themselves (AutoDock's internal-energy term).  Internal forces are
    # equal-and-opposite, so they leave the rigid-body gradients untouched
    # and flow only into the torsion gradient.
    e_intra = np.zeros(len(coords))
    if len(beads.intra_pairs):
        pi = beads.intra_pairs[:, 0]
        pj = beads.intra_pairs[:, 1]
        diff = coords[:, pi] - coords[:, pj]  # (k, m, 3)
        d = np.sqrt((diff * diff).sum(-1))
        sigma = _INTRA_SCALE * 0.5 * (beads.radii[pi] + beads.radii[pj])[None, :]
        overlap = np.maximum(sigma - d, 0.0)
        e_intra = _INTRA_K * (overlap * overlap).sum(axis=1)
        coef = -2.0 * _INTRA_K * overlap / np.maximum(d, 1e-9)  # dE/dd / d
        pair_grad = coef[..., None] * diff
        np.add.at(grad, (slice(None), pi), pair_grad)
        np.add.at(grad, (slice(None), pj), -pair_grad)

    components = np.stack([e_elec, e_hydro, e_steric + e_intra, e_wall], axis=1)
    return components.sum(axis=1), components, grad


def score_poses_batch(
    receptor: Receptor,
    beads: LigandBeads,
    conformer_idx: np.ndarray,
    translations: np.ndarray,
    quaternions: np.ndarray,
    torsion_angles: np.ndarray | None = None,
) -> np.ndarray:
    """Total scores for a batch of poses → (k,)."""
    coords = batch_pose_coordinates(
        beads, conformer_idx, translations, quaternions, torsion_angles
    )
    totals, _, _ = _batch_atom_energies(receptor, beads, coords)
    return totals


def score_and_gradient_batch(
    receptor: Receptor,
    beads: LigandBeads,
    conformer_idx: np.ndarray,
    translations: np.ndarray,
    quaternions: np.ndarray,
    torsion_angles: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batched pose score + gradients over all gene blocks.

    Returns ``(totals (k,), d_translation (k, 3), d_rotation (k, 3),
    d_torsion (k, n_torsions))``.  ``d_rotation`` is the axis-angle
    gradient about the ligand centre, ``dE/dω = Σ_i r_i × (dE/dx_i)``;
    ``d_torsion`` chains atom gradients through each torsion's rotation
    axis, ``dE/dθ_t = Σ_{i∈moving_t} (dE/dx_i) · (â_t × (x_i − x_a))``,
    treating torsions independently (exact for disjoint subtrees, the
    standard torsion-tree approximation otherwise).
    """
    from repro.docking.ligand import apply_torsions_batch

    conf = beads.conformers[conformer_idx]
    has_torsions = torsion_angles is not None and beads.n_torsions > 0
    if has_torsions:
        local = apply_torsions_batch(conf, beads.torsions, torsion_angles)
    else:
        local = conf
    rot = batch_quaternion_to_matrix(quaternions)
    coords = np.einsum("kni,kji->knj", local, rot) + translations[:, None, :]
    totals, _, atom_grad = _batch_atom_energies(receptor, beads, coords)
    d_trans = atom_grad.sum(axis=1)
    rel = coords - translations[:, None, :]
    d_rot = np.cross(rel, atom_grad).sum(axis=1)

    n_tor = beads.n_torsions if has_torsions else 0
    d_tor = np.zeros((len(conf), n_tor))
    if has_torsions:
        # each torsion's moving-atom set is ragged, so the torsion axis
        # (short) stays a Python loop; every line inside is batched over
        # the pose axis (long)
        for t, tor in enumerate(beads.torsions):  # repro: disable=vectorization
            origin_l = local[:, tor.a]  # local frame
            axis_l = local[:, tor.b] - origin_l
            axis_l = axis_l / (np.linalg.norm(axis_l, axis=1, keepdims=True) + 1e-12)
            # world-frame axis and lever arms
            axis_w = np.einsum("ki,kji->kj", axis_l, rot)
            origin_w = np.einsum("ki,kji->kj", origin_l, rot) + translations
            arm = coords[:, tor.moving] - origin_w[:, None, :]
            dxdtheta = np.cross(axis_w[:, None, :], arm)
            d_tor[:, t] = (atom_grad[:, tor.moving] * dxdtheta).sum(axis=(1, 2))
    return totals, d_trans, d_rot, d_tor


# ------------------------------------------------------------- single pose


def score_pose(receptor: Receptor, beads: LigandBeads, pose: Pose) -> ScoreBreakdown:
    """Energy breakdown of one pose (lower total = better)."""
    coords = pose_coordinates(beads, pose)[None]
    _, components, _ = _batch_atom_energies(receptor, beads, coords)
    e = components[0]
    return ScoreBreakdown(float(e[0]), float(e[1]), float(e[2]), float(e[3]))


def score_and_gradient(
    receptor: Receptor, beads: LigandBeads, pose: Pose
) -> tuple[float, np.ndarray, np.ndarray, np.ndarray]:
    """Single-pose wrapper over :func:`score_and_gradient_batch`."""
    totals, d_trans, d_rot, d_tor = score_and_gradient_batch(
        receptor,
        beads,
        np.array([pose.conformer]),
        pose.translation[None],
        pose.quaternion[None],
        None if pose.torsion_angles is None else pose.torsion_angles[None],
    )
    return float(totals[0]), d_trans[0], d_rot[0], d_tor[0]


# -------------------------------------------------------------- pose moves


def _quat_multiply(q1: np.ndarray, q2: np.ndarray) -> np.ndarray:
    """Hamilton product, (x, y, z, w) convention; broadcasts over batches."""
    x1, y1, z1, w1 = q1[..., 0], q1[..., 1], q1[..., 2], q1[..., 3]
    x2, y2, z2, w2 = q2[..., 0], q2[..., 1], q2[..., 2], q2[..., 3]
    return np.stack(
        [
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
        ],
        axis=-1,
    )


def apply_rigid_steps_batch(
    translations: np.ndarray,
    quaternions: np.ndarray,
    d_trans: np.ndarray,
    d_rot: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply per-pose translation + axis-angle rotation increments (batched)."""
    new_t = translations + d_trans
    angle = np.linalg.norm(d_rot, axis=-1, keepdims=True)
    safe = np.maximum(angle, 1e-12)
    axis = d_rot / safe
    half = angle / 2.0
    dq = np.concatenate([axis * np.sin(half), np.cos(half)], axis=-1)
    new_q = _quat_multiply(dq, quaternions)
    new_q = new_q / np.linalg.norm(new_q, axis=-1, keepdims=True)
    # zero-rotation rows keep the original quaternion exactly
    still = (angle < 1e-12)[..., 0]
    new_q[still] = quaternions[still]
    return new_t, new_q


def apply_rigid_step(pose: Pose, d_trans: np.ndarray, d_rot: np.ndarray) -> Pose:
    """Single-pose wrapper over :func:`apply_rigid_steps_batch`."""
    t, q = apply_rigid_steps_batch(
        pose.translation[None], pose.quaternion[None], d_trans[None], d_rot[None]
    )
    return Pose(pose.conformer, t[0], q[0])
