"""Grid-based scoring function with analytic pose gradients — batch-native.

Scores follow the AutoDock decomposition: per-atom lookups into the
receptor's electrostatic, hydrophobic and steric grids, summed with the
ligand's per-atom parameters.  Trilinear interpolation makes the score a
piecewise-trilinear function of atom positions, so the gradient needed by
the ADADELTA local search comes from the same interpolation stencil — no
finite differencing at search time.

AutoDock-GPU processes "ligand-receptor poses in parallel over multiple
compute units" (§5.1.1); the NumPy analogue is batching.  The kernels
here are *packed*: they take a :class:`~repro.docking.ligand.PackedLigands`
shard plus a row→ligand map, so one kernel call can score poses of many
different ligands at once.  The three receptor fields are stacked into a
``(3, n, n, n)`` array and interpolated with a single gather stencil, and
padded atoms (masked out in the pack) contribute exactly zero energy and
zero gradient.

Determinism contract: every reduction (energy sums, rigid-body and
torsion gradients, intra-ligand terms) runs over a per-ligand slice of
the ligand's *intrinsic* width, never the pack's padded width.  NumPy's
pairwise summation then groups terms identically regardless of shard
composition, which makes a ligand's scores and gradients bit-identical
whether it is scored alone (the single-ligand wrappers build a cached
pack-of-one) or fused into a shard.  Scores are negative-better
(kcal/mol-like).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.docking.ligand import (
    INTRA_K,
    INTRA_SCALE,
    LigandBeads,
    PackedLigands,
    PackPlan,
    Pose,
    packed_single,
    pose_coordinates,
)
from repro.docking.receptor import Receptor

__all__ = [
    "ScoreBreakdown",
    "score_pose",
    "score_and_gradient",
    "score_poses_batch",
    "score_and_gradient_batch",
    "batch_pose_coordinates",
    "apply_rigid_step",
    "apply_rigid_steps_batch",
    "interpolate",
    "interpolate_stacked",
    "packed_pose_coordinates",
    "apply_packed_torsions",
    "packed_atom_energies",
    "packed_score_batch",
    "packed_score_and_gradient_batch",
    "kernel_calls",
    "reset_kernel_calls",
]

#: penalty per angstrom^2 for atoms escaping the box
_WALL_K = 10.0

#: intra-ligand clash parameters (defined next to the pack that
#: precomputes the pair contact distances)
_INTRA_K = INTRA_K
_INTRA_SCALE = INTRA_SCALE

#: fused-kernel invocation counter — one packed_atom_energies call is one
#: "kernel launch"; the perf harness uses it to show how batching
#: amortizes launches across the shard
_KERNEL_CALLS = 0


def kernel_calls() -> int:
    """Number of fused scoring-kernel invocations since the last reset."""
    return _KERNEL_CALLS


def reset_kernel_calls() -> None:
    """Reset the kernel invocation counter (perf harness bookkeeping)."""
    global _KERNEL_CALLS
    _KERNEL_CALLS = 0


@dataclass(frozen=True)
class ScoreBreakdown:
    """Score decomposition (all kcal/mol; total = sum of parts)."""

    electrostatic: float
    hydrophobic: float
    steric: float
    wall: float

    @property
    def total(self) -> float:
        """Sum of all components."""
        return self.electrostatic + self.hydrophobic + self.steric + self.wall


def interpolate(
    grid: np.ndarray, receptor: Receptor, coords: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Trilinear interpolation of ``grid`` at ``coords`` (…, 3).

    Returns ``(values, gradients)`` with shapes ``coords.shape[:-1]`` and
    ``coords.shape``; gradients are w.r.t. world coordinates (per angstrom).
    Single-grid convenience wrapper over :func:`interpolate_stacked`.
    """
    value, grad = interpolate_stacked(grid[None], receptor, coords)
    return value[0], grad[0]


def interpolate_stacked(
    grids: np.ndarray,
    receptor: Receptor,
    coords: np.ndarray,
    want_grad: bool = True,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Trilinear interpolation of a ``(g, n, n, n)`` grid stack at once.

    One gather stencil serves all ``g`` fields: the cell indices, the
    fractional offsets and the eight corner gathers are computed a single
    time and broadcast across the leading grid axis.  Returns
    ``(values (g, …), gradients (g, …, 3))``; ``gradients`` is ``None``
    when ``want_grad`` is false (score-only kernel calls skip the
    stencil's gradient arithmetic entirely).
    """
    n = receptor.n_grid
    rel = coords - receptor.origin
    rel /= receptor.spacing
    i0 = np.clip(np.floor(rel).astype(int), 0, n - 2)
    f = rel
    f -= i0
    np.clip(f, 0.0, 1.0, out=f)

    fx, fy, fz = f[..., 0], f[..., 1], f[..., 2]

    # one flat cell index per point; the eight corners are fixed offsets
    # on it, so a single fancy gather pulls every corner of every field
    # out of the contiguous stack at once, then corner views unpack it
    n2 = n * n
    base = (i0[..., 0] * n + i0[..., 1]) * n + i0[..., 2]
    flat = grids.reshape(len(grids), -1)
    offs = np.array([0, n2, n, n2 + n, 1, n2 + 1, n + 1, n2 + n + 1])
    idx = offs[(slice(None),) + (None,) * base.ndim] + base
    corners = flat[:, idx]  # (g, 8, …) — corner planes stay contiguous
    c000, c100, c010, c110 = (
        corners[:, 0], corners[:, 1], corners[:, 2], corners[:, 3]
    )
    c001, c101, c011, c111 = (
        corners[:, 4], corners[:, 5], corners[:, 6], corners[:, 7]
    )

    # the lerp chains below accumulate in place (``a * w; += b * w``),
    # which runs the exact same IEEE add/multiply sequence as the
    # textbook ``a * w + b * w`` expressions while skipping one
    # temporary per line — on fused batches these temporaries are the
    # dominant memory traffic of the whole stencil
    gx, gy, gz = 1 - fx, 1 - fy, 1 - fz
    c00 = c000 * gx
    c00 += c100 * fx
    c10 = c010 * gx
    c10 += c110 * fx
    c01 = c001 * gx
    c01 += c101 * fx
    c11 = c011 * gx
    c11 += c111 * fx
    c0 = c00 * gy
    c0 += c10 * fy
    c1 = c01 * gy
    c1 += c11 * fy
    value = c0 * gz
    value += c1 * fz

    if not want_grad:
        return value, None
    grad = np.empty(value.shape + (3,))
    d_dx = c100 - c000
    d_dx *= gy
    t = c110 - c010
    t *= fy
    d_dx += t
    d_dx *= gz
    u = c101 - c001
    u *= gy
    t = c111 - c011
    t *= fy
    u += t
    u *= fz
    d_dx += u
    grad[..., 0] = d_dx
    d_dy = c010 - c000
    d_dy *= gx
    t = c110 - c100
    t *= fx
    d_dy += t
    d_dy *= gz
    u = c011 - c001
    u *= gx
    t = c111 - c101
    t *= fx
    u += t
    u *= fz
    d_dy += u
    grad[..., 1] = d_dy
    np.subtract(c1, c0, out=grad[..., 2])
    grad /= receptor.spacing
    return value, grad


# ------------------------------------------------------------------- batch


def _norm_last(x: np.ndarray) -> np.ndarray:
    """``np.linalg.norm(x, axis=-1, keepdims=True)`` without the wrapper.

    For real input norm computes ``sqrt(add.reduce(x * x, axis))`` — the
    exact ufunc sequence below — so the result is bit-identical; this
    just skips ``norm``'s Python-level dispatch, which the kernels pay
    tens of thousands of times per docking run.
    """
    return np.sqrt((x * x).sum(axis=-1, keepdims=True))


def batch_quaternion_to_matrix(q: np.ndarray) -> np.ndarray:
    """Rotation matrices for a batch of quaternions (k, 4) → (k, 3, 3)."""
    q = q / _norm_last(q)
    x, y, z, w = q[..., 0], q[..., 1], q[..., 2], q[..., 3]
    m = np.empty(q.shape[:-1] + (3, 3))
    m[..., 0, 0] = 1 - 2 * (y * y + z * z)
    m[..., 0, 1] = 2 * (x * y - w * z)
    m[..., 0, 2] = 2 * (x * z + w * y)
    m[..., 1, 0] = 2 * (x * y + w * z)
    m[..., 1, 1] = 1 - 2 * (x * x + z * z)
    m[..., 1, 2] = 2 * (y * z - w * x)
    m[..., 2, 0] = 2 * (x * z - w * y)
    m[..., 2, 1] = 2 * (y * z + w * x)
    m[..., 2, 2] = 1 - 2 * (x * x + y * y)
    return m


def _cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Cross product over the last axis, broadcasting like ``np.cross``.

    Bit-identical to ``np.cross`` for 3-vectors (the same three
    multiply/subtract expressions) without its Python-level axis
    shuffling, which dominates on the small arrays the kernels pass
    thousands of times per docking run.
    """
    a0, a1, a2 = a[..., 0], a[..., 1], a[..., 2]
    b0, b1, b2 = b[..., 0], b[..., 1], b[..., 2]
    out = np.empty(np.broadcast(a, b).shape)
    out[..., 0] = a1 * b2 - a2 * b1
    out[..., 1] = a2 * b0 - a0 * b2
    out[..., 2] = a0 * b1 - a1 * b0
    return out


def apply_packed_torsions(
    pack: PackedLigands,
    plan: PackPlan,
    coords: np.ndarray,
    angles: np.ndarray,
) -> np.ndarray:
    """Rotate every ligand's moving atoms about its bond axes, fused.

    ``coords`` is (K, A, 3) local conformer coordinates for a batch of
    poses of possibly-different ligands, ``angles`` is (K, T) padded
    torsion genes.  Torsion *slots* apply sequentially in definition
    order (the torsion-tree convention) but each slot rotates all poses
    of all ligands at once; rows whose ligand has no torsion at a slot
    are preserved bit-exactly via the plan's selection mask.
    """
    out = coords.copy()
    rows = plan.row_ids
    # each slot's origin/axis come from coordinates already rotated by
    # earlier slots, so the (short) slot axis is genuinely sequential;
    # every line inside is batched over the (long) pose axis
    for t in plan.tor_slots:
        a = plan.tor_a[t]
        b = plan.tor_b[t]
        sel = plan.tor_sel[t]  # (K, A)
        origin = out[rows, a]  # (K, 3)
        axis = out[rows, b] - origin
        axis = axis / (_norm_last(axis) + 1e-12)
        theta = angles[:, t]
        cos = np.cos(theta)[:, None, None]
        sin = np.sin(theta)[:, None, None]
        v = out - origin[:, None, :]  # (K, A, 3)
        k_vec = axis[:, None, :]  # (K, 1, 3)
        cross = _cross(k_vec, v)
        dot = (k_vec * v).sum(-1, keepdims=True)
        # Rodrigues accumulated in place over v's own buffer — identical
        # op order to ``v*cos + cross*sin + k_vec*dot*(1-cos)``, minus
        # three (K, A, 3) temporaries per slot
        v *= cos
        cross *= sin
        v += cross
        axial = k_vec * dot
        axial *= 1.0 - cos
        v += axial
        v += origin[:, None, :]
        # in-place masked write: selected atoms take the rotated value,
        # everything else keeps its bits (out is this kernel's own copy)
        np.copyto(out, v, where=sel[..., None])
    return out


def packed_pose_coordinates(
    pack: PackedLigands,
    plan: PackPlan,
    conformer_idx: np.ndarray,
    translations: np.ndarray,
    quaternions: np.ndarray,
    torsion_angles: np.ndarray | None = None,
) -> np.ndarray:
    """World coordinates for a fused batch of poses → (K, A, 3).

    ``torsion_angles`` (K, T) applies the rotatable-bond genes in the
    local frame before the rigid-body transform; ``None`` keeps every
    conformer rigid.
    """
    if pack.n_ligands == 1:
        conf = pack.conformers[0, conformer_idx]
    else:
        conf = pack.conformers[plan.lig_idx, conformer_idx]  # (K, A, 3)
    if torsion_angles is not None and pack.max_torsions:
        conf = apply_packed_torsions(pack, plan, conf, torsion_angles)
    rot = batch_quaternion_to_matrix(quaternions)  # (K, 3, 3)
    return np.einsum("kni,kji->knj", conf, rot) + translations[:, None, :]


def packed_atom_energies(
    receptor: Receptor,
    pack: PackedLigands,
    plan: PackPlan,
    coords: np.ndarray,
    want_grad: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Fused energies + per-atom gradients over a multi-ligand pose batch.

    ``coords`` is (K, A, 3) with ligand blocks laid out per ``plan``.
    Returns ``(totals (K,), components (K, 4), atom_grad (K, A, 3) or
    None)`` where components order is (electrostatic, hydrophobic,
    steric+intra, wall).  The whole elementwise phase (gather stencil,
    field products, wall and clash terms) runs on the plan's flat
    real-atom axis — one lane per actual (row, atom) — so padded atoms
    cost zero arithmetic and come back with exactly zero energy and
    zero gradient.  Reductions run per row over each ligand's intrinsic
    width, batched across same-width ligands via the plan's width
    groups (the determinism spine — see the module docstring).
    """
    global _KERNEL_CALLS
    _KERNEL_CALLS += 1
    k_total, a_max = coords.shape[:2]

    flat_view = coords.reshape(-1, 3)
    if plan.atom_flat is None:
        flat_c = flat_view  # no padding: flat layout is the free reshape
    else:
        flat_c = flat_view[plan.atom_flat]
    vals, grads = interpolate_stacked(
        receptor.stacked_grids, receptor, flat_c, want_grad=want_grad
    )
    # channel products, written straight back into the interpolation
    # buffer (its raw values are not needed again); every flat lane is a
    # real atom, so the steric channel needs no mask at all
    prod3 = vals  # (3, N)
    if plan.atom_flat is None:
        pv = vals.reshape(3, k_total, a_max)
        pv[0] *= plan.charges
        pv[1] *= plan.hydro
    else:
        vals[0] *= plan.charges_flat
        vals[1] *= plan.hydro_flat

    half = receptor.box_size / 2.0
    excess = np.abs(flat_c)
    excess -= half
    outside = excess > 0
    not_outside = ~outside
    wall_sq = excess * excess
    np.copyto(wall_sq, 0.0, where=not_outside)

    # intra-ligand clash terms (flexible ligands must not fold through
    # themselves — AutoDock's internal-energy role), elementwise phase:
    # runs on the plan's flat real-pair axis (one entry per actual
    # (row, pair)), so pair padding costs no arithmetic at all
    overlap = diff = d = None
    if plan.pair_fi is not None:
        ci = flat_c[plan.pair_fi]  # (P, 3)
        cj = flat_c[plan.pair_fj]
        diff = ci - cj
        d = np.sqrt((diff * diff).sum(-1))
        overlap = np.maximum(plan.pair_sig_flat - d, 0.0)

    atom_grad = None
    if want_grad:
        # accumulate the field gradients in place in the stencil's own
        # buffer: ``(q·∇phi − h·∇hyd) + ∇ste`` with the identical
        # operation order as the former expression, minus the temporaries
        dphi, dhyd, dste = grads  # (N, 3) each
        if plan.atom_flat is None:
            dphi_v = dphi.reshape(k_total, a_max, 3)
            dphi_v *= plan.charges[..., None]
            dhyd_v = dhyd.reshape(k_total, a_max, 3)
            dhyd_v *= plan.hydro[..., None]
        else:
            dphi *= plan.charges_flat[:, None]
            dhyd *= plan.hydro_flat[:, None]
        np.subtract(dphi, dhyd, out=dphi)
        np.add(dphi, dste, out=dphi)
        grad_flat = dphi
        wall_grad = excess * (2.0 * _WALL_K)
        wall_grad *= np.sign(flat_c)
        np.copyto(wall_grad, 0.0, where=not_outside)
        grad_flat += wall_grad
        # internal clash forces are equal-and-opposite, so the pair
        # scatter leaves rigid-body gradients untouched and flows only
        # into torsions; the flat index visits (row, pair) in the same
        # row-major i-then-j order as a per-ligand scatter, so the
        # accumulation order per atom — and therefore every bit — is
        # unchanged
        if plan.pair_scatter is not None:
            coef = overlap * (-2.0 * _INTRA_K)  # dE/dd / d
            coef /= np.maximum(d, 1e-9)
            pg = diff  # reuse: diff is not needed past this point
            pg *= coef[:, None]
            flat = pg.ravel()
            updates = np.empty(2 * flat.size)
            updates[: flat.size] = flat
            np.negative(flat, out=updates[flat.size :])
            np.add.at(grad_flat.ravel(), plan.pair_scatter, updates)
        if plan.atom_flat is None:
            atom_grad = grad_flat.reshape(k_total, a_max, 3)
        else:
            atom_grad = np.zeros((k_total, a_max, 3))
            atom_grad.reshape(-1, 3)[plan.atom_flat] = grad_flat

    # reductions over intrinsic widths, batched across same-width ligands
    components = np.empty((k_total, 4))
    for n, rows, fidx in plan.atom_groups_flat:
        if isinstance(fidx, slice):
            ch = prod3[:, fidx].reshape(3, -1, n).sum(axis=2)  # (3, rows)
            wall = wall_sq[fidx].reshape(-1, n, 3).sum(axis=(1, 2))
        else:
            ch = prod3[:, fidx].sum(axis=2)
            wall = wall_sq[fidx].sum(axis=(1, 2))
        components[rows, 0] = ch[0]
        components[rows, 1] = -ch[1]
        components[rows, 2] = ch[2]
        components[rows, 3] = _WALL_K * wall
    for m, rows, idx in plan.pair_groups:
        ov = (
            overlap[idx].reshape(-1, m)
            if isinstance(idx, slice)
            else overlap[idx]
        )
        components[rows, 2] += _INTRA_K * (ov * ov).sum(axis=1)
    totals = components.sum(axis=1)
    return totals, components, atom_grad


def packed_score_batch(
    receptor: Receptor,
    pack: PackedLigands,
    plan: PackPlan,
    conformer_idx: np.ndarray,
    translations: np.ndarray,
    quaternions: np.ndarray,
    torsion_angles: np.ndarray | None = None,
) -> np.ndarray:
    """Total scores for a fused multi-ligand pose batch → (K,)."""
    coords = packed_pose_coordinates(
        pack, plan, conformer_idx, translations, quaternions, torsion_angles
    )
    totals, _, _ = packed_atom_energies(
        receptor, pack, plan, coords, want_grad=False
    )
    return totals


def packed_score_and_gradient_batch(
    receptor: Receptor,
    pack: PackedLigands,
    plan: PackPlan,
    conformer_idx: np.ndarray,
    translations: np.ndarray,
    quaternions: np.ndarray,
    torsion_angles: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Fused pose score + gradients over all gene blocks.

    Returns ``(totals (K,), d_translation (K, 3), d_rotation (K, 3),
    d_torsion (K, T))``.  ``d_rotation`` is the axis-angle gradient about
    the ligand centre, ``dE/dω = Σ_i r_i × (dE/dx_i)``; ``d_torsion``
    chains atom gradients through each torsion's rotation axis,
    ``dE/dθ_t = Σ_{i∈moving_t} (dE/dx_i) · (â_t × (x_i − x_a))``,
    treating torsions independently (exact for disjoint subtrees, the
    standard torsion-tree approximation otherwise).  The per-slot
    lever-arm fields are computed fused across all rows; only the final
    sums are width-grouped (masked to the moving set, reduced over each
    ligand's intrinsic atom count).
    """
    has_tor = torsion_angles is not None and pack.max_torsions > 0
    if pack.n_ligands == 1:
        local = pack.conformers[0, conformer_idx]
    else:
        local = pack.conformers[plan.lig_idx, conformer_idx]
    if has_tor:
        local = apply_packed_torsions(pack, plan, local, torsion_angles)
    rot = batch_quaternion_to_matrix(quaternions)
    coords = np.einsum("kni,kji->knj", local, rot) + translations[:, None, :]
    totals, _, atom_grad = packed_atom_energies(
        receptor, pack, plan, coords, want_grad=True
    )
    rel = coords - translations[:, None, :]
    cross_all = _cross(rel, atom_grad)

    k_total = len(coords)
    t_max = pack.max_torsions if has_tor else 0
    d_trans = np.empty((k_total, 3))
    d_rot = np.empty((k_total, 3))
    d_tor = np.zeros((k_total, t_max))
    for n, rows in plan.atom_groups:
        d_trans[rows] = atom_grad[rows, :n].sum(axis=1)
        d_rot[rows] = cross_all[rows, :n].sum(axis=1)
    if t_max:
        # torsion-gradient fields for *all* slots in one stacked pass —
        # unlike applying the rotations, the gradient of each slot
        # depends only on the already-torsioned local frame, so the slot
        # axis stacks on top of the pose axis (S, K, A, 3).  Rows whose
        # ligand lacks a slot are masked to zero, so their reduced
        # entries stay exactly 0.0
        rows_all = plan.row_ids
        slots = plan.tor_slot_arr
        origin_l = local[rows_all, plan.tor_a_s]  # (S, K, 3), local frame
        axis_l = local[rows_all, plan.tor_b_s] - origin_l
        axis_l = axis_l / (_norm_last(axis_l) + 1e-12)
        # world-frame axes and lever arms
        axis_w = np.einsum("ski,kji->skj", axis_l, rot)
        origin_w = np.einsum("ski,kji->skj", origin_l, rot) + translations
        arm = coords - origin_w[:, :, None, :]
        dxdtheta = _cross(axis_w[:, :, None, :], arm)
        # reuse the stencil's own (S, K, A, 3) buffer for the product and
        # mask it in place — two fewer full-size temporaries
        dxdtheta *= atom_grad
        np.copyto(dxdtheta, 0.0, where=plan.tor_notsel_s[..., None])
        prod = dxdtheta
        for n, rows in plan.atom_groups:
            res = prod[:, rows, :n].sum(axis=(2, 3))  # (S, rows)
            if isinstance(rows, slice):
                d_tor[rows][:, slots] = res.T  # writes through the view
            else:
                d_tor[rows[:, None], slots[None, :]] = res.T
    return totals, d_trans, d_rot, d_tor


# ---------------------------------------------------------- single ligand


def _single_call(beads: LigandBeads, k: int) -> tuple[PackedLigands, PackPlan]:
    """Pack-of-one calling convention for the packed kernels."""
    pack = packed_single(beads)
    return pack, pack.plan(k)


def batch_pose_coordinates(
    beads: LigandBeads,
    conformer_idx: np.ndarray,
    translations: np.ndarray,
    quaternions: np.ndarray,
    torsion_angles: np.ndarray | None = None,
) -> np.ndarray:
    """World coordinates for a batch of poses of one ligand → (k, n, 3)."""
    pack, plan = _single_call(beads, len(conformer_idx))
    return packed_pose_coordinates(
        pack, plan, conformer_idx, translations, quaternions, torsion_angles
    )


def _batch_atom_energies(
    receptor: Receptor, beads: LigandBeads, coords: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Single-ligand energies + per-atom gradients (pack-of-one wrapper).

    Parameters: ``coords`` (k, n, 3).  Returns ``(totals (k,),
    components (k, 4), atom_grad (k, n, 3))``.
    """
    pack, plan = _single_call(beads, len(coords))
    return packed_atom_energies(receptor, pack, plan, coords, want_grad=True)


def score_poses_batch(
    receptor: Receptor,
    beads: LigandBeads,
    conformer_idx: np.ndarray,
    translations: np.ndarray,
    quaternions: np.ndarray,
    torsion_angles: np.ndarray | None = None,
) -> np.ndarray:
    """Total scores for a batch of poses of one ligand → (k,)."""
    pack, plan = _single_call(beads, len(conformer_idx))
    return packed_score_batch(
        receptor,
        pack,
        plan,
        conformer_idx,
        translations,
        quaternions,
        torsion_angles,
    )


def score_and_gradient_batch(
    receptor: Receptor,
    beads: LigandBeads,
    conformer_idx: np.ndarray,
    translations: np.ndarray,
    quaternions: np.ndarray,
    torsion_angles: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Single-ligand wrapper over :func:`packed_score_and_gradient_batch`.

    Returns ``(totals (k,), d_translation (k, 3), d_rotation (k, 3),
    d_torsion (k, n_torsions))``.
    """
    pack, plan = _single_call(beads, len(conformer_idx))
    return packed_score_and_gradient_batch(
        receptor,
        pack,
        plan,
        conformer_idx,
        translations,
        quaternions,
        torsion_angles,
    )


def score_pose(receptor: Receptor, beads: LigandBeads, pose: Pose) -> ScoreBreakdown:
    """Energy breakdown of one pose (lower total = better)."""
    coords = pose_coordinates(beads, pose)[None]
    _, components, _ = _batch_atom_energies(receptor, beads, coords)
    e = components[0]
    return ScoreBreakdown(float(e[0]), float(e[1]), float(e[2]), float(e[3]))


def score_and_gradient(
    receptor: Receptor, beads: LigandBeads, pose: Pose
) -> tuple[float, np.ndarray, np.ndarray, np.ndarray]:
    """Single-pose wrapper over :func:`score_and_gradient_batch`."""
    totals, d_trans, d_rot, d_tor = score_and_gradient_batch(
        receptor,
        beads,
        np.array([pose.conformer]),
        pose.translation[None],
        pose.quaternion[None],
        None if pose.torsion_angles is None else pose.torsion_angles[None],
    )
    return float(totals[0]), d_trans[0], d_rot[0], d_tor[0]


# -------------------------------------------------------------- pose moves


def _quat_multiply(q1: np.ndarray, q2: np.ndarray) -> np.ndarray:
    """Hamilton product, (x, y, z, w) convention; broadcasts over batches."""
    x1, y1, z1, w1 = q1[..., 0], q1[..., 1], q1[..., 2], q1[..., 3]
    x2, y2, z2, w2 = q2[..., 0], q2[..., 1], q2[..., 2], q2[..., 3]
    return np.stack(
        [
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
        ],
        axis=-1,
    )


def apply_rigid_steps_batch(
    translations: np.ndarray,
    quaternions: np.ndarray,
    d_trans: np.ndarray,
    d_rot: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply per-pose translation + axis-angle rotation increments (batched)."""
    new_t = translations + d_trans
    angle = _norm_last(d_rot)
    safe = np.maximum(angle, 1e-12)
    axis = d_rot / safe
    half = angle / 2.0
    dq = np.concatenate([axis * np.sin(half), np.cos(half)], axis=-1)
    new_q = _quat_multiply(dq, quaternions)
    new_q = new_q / _norm_last(new_q)
    # zero-rotation rows keep the original quaternion exactly
    still = (angle < 1e-12)[..., 0]
    new_q[still] = quaternions[still]
    return new_t, new_q


def apply_rigid_step(pose: Pose, d_trans: np.ndarray, d_rot: np.ndarray) -> Pose:
    """Single-pose wrapper over :func:`apply_rigid_steps_batch`."""
    t, q = apply_rigid_steps_batch(
        pose.translation[None], pose.quaternion[None], d_trans[None], d_rot[None]
    )
    return Pose(pose.conformer, t[0], q[0])
