"""Local search methods for pose refinement — batched, torsion-aware.

AutoDock-GPU ships two local searches (§5.1.1): the legacy Solis–Wets
stochastic hill-climber and the newer gradient-based ADADELTA method that
"increases significantly the docking quality".  Both are implemented over
the same pose parameterization — translation, orientation **and
rotatable-bond torsions** — so the ablation bench can compare them
like-for-like, and both refine a whole *batch* of poses at once (the
GPU-parallelism analogue), using masked updates where poses diverge in
control flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.docking.ligand import LigandBeads, Pose
from repro.docking.receptor import Receptor
from repro.docking.scoring import (
    apply_rigid_steps_batch,
    score_and_gradient_batch,
    score_poses_batch,
)
from repro.util.config import FrozenConfig, validate_positive

__all__ = [
    "SolisWets",
    "Adadelta",
    "LocalSearchResult",
    "BatchRefinement",
    "SolisWetsConfig",
    "AdadeltaConfig",
    "draw_solis_wets",
]


def draw_solis_wets(
    rng: np.random.Generator, k: int, n_torsions: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """One Solis–Wets iteration's raw Gaussian draws for ``k`` poses.

    Returns unit-scale normals ``(dt (k, 3), dr (k, 3), da (k, T) or
    None)``; the caller applies its per-pose step sizes and biases.
    Factored out so the fused multi-ligand path replays exactly this
    per-iteration draw sequence from each ligand's own stream.
    """
    dt = rng.normal(size=(k, 3))
    dr = rng.normal(size=(k, 3))
    da = rng.normal(size=(k, n_torsions)) if n_torsions else None
    return dt, dr, da


@dataclass(frozen=True)
class LocalSearchResult:
    """Outcome of one single-pose local-search invocation."""

    pose: Pose
    score: float
    n_evals: int  # scoring-function evaluations consumed


@dataclass(frozen=True)
class BatchRefinement:
    """Outcome of refining a batch of poses."""

    translations: np.ndarray  # (k, 3)
    quaternions: np.ndarray  # (k, 4)
    scores: np.ndarray  # (k,)
    n_evals: int  # total pose evaluations across the batch
    torsion_angles: np.ndarray | None = None  # (k, T) when the ligand flexes


def _angles_or_zeros(
    beads: LigandBeads, k: int, torsion_angles: np.ndarray | None
) -> np.ndarray | None:
    if beads.n_torsions == 0:
        return None
    if torsion_angles is None:
        return np.zeros((k, beads.n_torsions))
    return torsion_angles.copy()


class _LocalSearch:
    """Shared single-pose wrapper over the batched implementations."""

    def refine(
        self,
        receptor: Receptor,
        beads: LigandBeads,
        pose: Pose,
        rng: np.random.Generator,
    ) -> LocalSearchResult:
        """Refine a single pose; see :meth:`refine_batch`."""
        out = self.refine_batch(
            receptor,
            beads,
            np.array([pose.conformer]),
            pose.translation[None],
            pose.quaternion[None],
            rng,
            None if pose.torsion_angles is None else pose.torsion_angles[None],
        )
        new_tor = (
            None if out.torsion_angles is None else out.torsion_angles[0]
        )
        return LocalSearchResult(
            pose=Pose(pose.conformer, out.translations[0], out.quaternions[0], new_tor),
            score=float(out.scores[0]),
            n_evals=out.n_evals,
        )

    def refine_batch(self, *args, **kwargs) -> BatchRefinement:  # pragma: no cover
        """Refine a batch of poses; see the class docstring."""
        raise NotImplementedError


@dataclass(frozen=True)
class SolisWetsConfig(FrozenConfig):
    """Solis–Wets hyper-parameters (AutoDock defaults, scaled down)."""

    max_iters: int = 40
    rho_trans: float = 1.0  # initial translation step (angstrom)
    rho_rot: float = 0.25  # initial rotation step (radians)
    rho_torsion: float = 0.35  # initial torsion step (radians)
    success_expand: int = 4  # consecutive successes before expanding
    failure_contract: int = 4  # consecutive failures before contracting
    rho_min: float = 0.01

    def __post_init__(self) -> None:
        validate_positive("max_iters", self.max_iters)
        validate_positive("rho_trans", self.rho_trans)
        validate_positive("rho_rot", self.rho_rot)
        validate_positive("rho_torsion", self.rho_torsion)


class SolisWets(_LocalSearch):
    """Adaptive random-walk local search (Solis & Wets 1981).

    Per pose: sample a Gaussian move (plus bias) over all gene blocks;
    on failure try the mirrored move; adapt step size from runs of
    successes/failures.  All poses in a batch advance in lock-step with
    masked bookkeeping.
    """

    name = "solis-wets"

    def __init__(self, config: SolisWetsConfig | None = None) -> None:
        self.config = config or SolisWetsConfig()

    def refine_batch(
        self,
        receptor: Receptor,
        beads: LigandBeads,
        conformer_idx: np.ndarray,
        translations: np.ndarray,
        quaternions: np.ndarray,
        rng: np.random.Generator,
        torsion_angles: np.ndarray | None = None,
    ) -> BatchRefinement:
        """Refine a batch of poses; see the class docstring."""
        cfg = self.config
        k = len(conformer_idx)
        n_tor = beads.n_torsions
        best_t = translations.copy()
        best_q = quaternions.copy()
        best_a = _angles_or_zeros(beads, k, torsion_angles)
        best_s = score_poses_batch(
            receptor, beads, conformer_idx, best_t, best_q, best_a
        )
        n_evals = k

        rho_t = np.full(k, cfg.rho_trans)
        rho_r = np.full(k, cfg.rho_rot)
        rho_a = np.full(k, cfg.rho_torsion)
        bias_t = np.zeros((k, 3))
        bias_r = np.zeros((k, 3))
        bias_a = np.zeros((k, n_tor))
        succ = np.zeros(k, dtype=int)
        fail = np.zeros(k, dtype=int)

        for _ in range(cfg.max_iters):
            raw_t, raw_r, raw_a = draw_solis_wets(rng, k, n_tor)
            dt = raw_t * rho_t[:, None] + bias_t
            dr = raw_r * rho_r[:, None] + bias_r
            da = raw_a * rho_a[:, None] + bias_a if n_tor else None

            t1, q1 = apply_rigid_steps_batch(best_t, best_q, dt, dr)
            a1 = None if best_a is None else best_a + da
            s1 = score_poses_batch(receptor, beads, conformer_idx, t1, q1, a1)
            t2, q2 = apply_rigid_steps_batch(best_t, best_q, -dt, -dr)
            a2 = None if best_a is None else best_a - da
            s2 = score_poses_batch(receptor, beads, conformer_idx, t2, q2, a2)
            n_evals += 2 * k

            fwd = s1 < best_s
            back = (~fwd) & (s2 < best_s)
            neither = ~(fwd | back)

            best_t[fwd], best_q[fwd], best_s[fwd] = t1[fwd], q1[fwd], s1[fwd]
            best_t[back], best_q[back], best_s[back] = t2[back], q2[back], s2[back]
            if best_a is not None:
                best_a[fwd] = a1[fwd]
                best_a[back] = a2[back]

            bias_t[fwd] = 0.4 * bias_t[fwd] + 0.2 * dt[fwd]
            bias_r[fwd] = 0.4 * bias_r[fwd] + 0.2 * dr[fwd]
            bias_t[back] = bias_t[back] - 0.4 * dt[back]
            bias_r[back] = bias_r[back] - 0.4 * dr[back]
            bias_t[neither] *= 0.5
            bias_r[neither] *= 0.5
            if n_tor:
                bias_a[fwd] = 0.4 * bias_a[fwd] + 0.2 * da[fwd]
                bias_a[back] = bias_a[back] - 0.4 * da[back]
                bias_a[neither] *= 0.5

            improved = fwd | back
            succ = np.where(improved, succ + 1, 0)
            fail = np.where(improved, 0, fail + 1)

            expand = succ >= cfg.success_expand
            contract = fail >= cfg.failure_contract
            scale = np.where(expand, 2.0, np.where(contract, 0.5, 1.0))
            rho_t *= scale
            rho_r *= scale
            rho_a *= scale
            succ[expand] = 0
            fail[contract] = 0

            if (rho_t < cfg.rho_min).all() and (rho_r < cfg.rho_min).all():
                break
        return BatchRefinement(best_t, best_q, best_s, n_evals, best_a)


@dataclass(frozen=True)
class AdadeltaConfig(FrozenConfig):
    """ADADELTA hyper-parameters."""

    max_iters: int = 40
    rho: float = 0.8  # decay of running averages
    eps: float = 1e-2
    clip: float = 0.5  # max step per iteration (angstrom / radians)

    def __post_init__(self) -> None:
        validate_positive("max_iters", self.max_iters)
        validate_positive("eps", self.eps)


class Adadelta(_LocalSearch):
    """Gradient local search with the ADADELTA update rule (Zeiler 2012).

    Uses the analytic pose gradient over translation, orientation and
    torsions; each iteration is one fused score+gradient evaluation per
    pose.
    """

    name = "adadelta"

    def __init__(self, config: AdadeltaConfig | None = None) -> None:
        self.config = config or AdadeltaConfig()

    def refine_batch(
        self,
        receptor: Receptor,
        beads: LigandBeads,
        conformer_idx: np.ndarray,
        translations: np.ndarray,
        quaternions: np.ndarray,
        rng: np.random.Generator,  # unused; interface parity with SolisWets
        torsion_angles: np.ndarray | None = None,
    ) -> BatchRefinement:
        """Refine a batch of poses; see the class docstring."""
        cfg = self.config
        k = len(conformer_idx)
        n_tor = beads.n_torsions
        cur_t, cur_q = translations.copy(), quaternions.copy()
        cur_a = _angles_or_zeros(beads, k, torsion_angles)
        scores, g_t, g_r, g_a = score_and_gradient_batch(
            receptor, beads, conformer_idx, cur_t, cur_q, cur_a
        )
        n_evals = k
        best_t, best_q, best_s = cur_t.copy(), cur_q.copy(), scores.copy()
        best_a = None if cur_a is None else cur_a.copy()

        dim = 6 + n_tor
        eg2 = np.zeros((k, dim))
        ex2 = np.zeros((k, dim))
        for _ in range(cfg.max_iters):
            g = np.concatenate(
                [g_t, g_r] + ([g_a] if n_tor else []), axis=1
            )
            eg2 = cfg.rho * eg2 + (1 - cfg.rho) * g * g
            step = -np.sqrt(ex2 + cfg.eps) / np.sqrt(eg2 + cfg.eps) * g
            step = np.clip(step, -cfg.clip, cfg.clip)
            ex2 = cfg.rho * ex2 + (1 - cfg.rho) * step * step
            cur_t, cur_q = apply_rigid_steps_batch(
                cur_t, cur_q, step[:, :3], step[:, 3:6]
            )
            if n_tor:
                cur_a = cur_a + step[:, 6:]
            scores, g_t, g_r, g_a = score_and_gradient_batch(
                receptor, beads, conformer_idx, cur_t, cur_q, cur_a
            )
            n_evals += k
            better = scores < best_s
            best_t[better], best_q[better] = cur_t[better], cur_q[better]
            best_s[better] = scores[better]
            if best_a is not None:
                best_a[better] = cur_a[better]
        return BatchRefinement(best_t, best_q, best_s, n_evals, best_a)