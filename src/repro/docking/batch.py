"""Fused multi-ligand docking: one LGA over a whole library shard.

AutoDock-GPU gets its throughput by evaluating many ligand–receptor poses
"in parallel over multiple compute units" (§5.1.1); the sequential path
here batches only within one ligand (``population`` poses per kernel
call), so a library screen pays full NumPy dispatch overhead per ligand
per generation.  :func:`dock_shard` removes that overhead: it packs a
shard of prepared ligands into padded struct-of-arrays
(:func:`~repro.docking.ligand.pack_ligands`) and runs the *entire* LGA —
initialization, generation scoring, selection/crossover/mutation, and
both local searches — over ``(n_ligands × population)`` poses per kernel
call.

Determinism contract (the correctness spine): every ligand's randomness
comes from its own generator, fed through the exact helper functions the
sequential path uses (:func:`~repro.docking.lga.draw_initial_genes`,
:func:`~repro.docking.lga.draw_generation`,
:func:`~repro.docking.local_search.draw_solis_wets`), and all arithmetic
runs through the same packed kernels with per-ligand reductions over
intrinsic widths.  Batched and sequential docking of the same compound
therefore produce bit-identical poses, scores, histories and ``n_evals``
— equal draws in, equal arithmetic through.  Only per-stream draw loops
and per-ligand result assembly remain Python loops; everything on the
pose axis is vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.docking.lga import (
    DockingRun,
    GenerationDraws,
    LGAConfig,
    apply_genetics,
    draw_generation,
    draw_initial_genes,
)
from repro.docking.ligand import (
    LigandBeads,
    PackedLigands,
    PackPlan,
    Pose,
    pack_ligands,
)
from repro.docking.local_search import (
    AdadeltaConfig,
    SolisWetsConfig,
    draw_solis_wets,
)
from repro.docking.receptor import Receptor
from repro.docking.scoring import (
    apply_rigid_steps_batch,
    packed_score_and_gradient_batch,
    packed_score_batch,
)
from repro.telemetry import NULL_TRACER, Tracer
from repro.util.checkpoint import (
    CheckpointManifest,
    load_artifact,
    save_artifact,
    shard_fingerprint,
)

__all__ = ["dock_shard", "dock_stream"]

#: smallest worthwhile fused bucket — below this, torsion-slot padding
#: is cheaper than a separate LGA's kernel dispatch (measured)
_MIN_BUCKET = 6


def _stack_draws(
    draws: list[GenerationDraws], cfg: LGAConfig, t_max: int
) -> GenerationDraws:
    """Stack per-ligand generation draws into shard-global arrays.

    Candidate and ``chosen`` indices are offset into the stacked
    population (ligand ``li`` owns rows ``[li*p, (li+1)*p)``); ragged
    torsion draws land in zero-padded ``(rows, t_max)`` arrays so padded
    slots mutate by exactly zero.
    """
    p = cfg.population
    nc = cfg.n_children
    n_lig = len(draws)
    pop_off = np.repeat(np.arange(n_lig) * p, nc)[:, None]
    if t_max:
        mut_a = np.zeros(n_lig * nc, dtype=bool)
        jolt_a = np.zeros((n_lig * nc, t_max))
        # ragged per-ligand torsion draws into padded slots
        for li, d in enumerate(draws):
            if d.jolt_a is not None:
                rows = slice(li * nc, (li + 1) * nc)
                mut_a[rows] = d.mut_a
                jolt_a[rows, : d.jolt_a.shape[1]] = d.jolt_a
    else:
        mut_a = jolt_a = None
    return GenerationDraws(
        cand_a=np.concatenate([d.cand_a for d in draws]) + pop_off,
        cand_b=np.concatenate([d.cand_b for d in draws]) + pop_off,
        do_cross=np.concatenate([d.do_cross for d in draws]),
        mix=np.concatenate([d.mix for d in draws]),
        pick_b_coin=np.concatenate([d.pick_b_coin for d in draws]),
        mut_t=np.concatenate([d.mut_t for d in draws]),
        jolt_t=np.concatenate([d.jolt_t for d in draws]),
        mut_r=np.concatenate([d.mut_r for d in draws]),
        axis=np.concatenate([d.axis for d in draws]),
        angle=np.concatenate([d.angle for d in draws]),
        mut_c_coin=np.concatenate([d.mut_c_coin for d in draws]),
        conf_draw=np.concatenate([d.conf_draw for d in draws]),
        mut_a=mut_a,
        jolt_a=jolt_a,
        chosen=np.concatenate(
            [d.chosen + li * p for li, d in enumerate(draws)]
        ),
    )


def _fused_adadelta(
    receptor: Receptor,
    pack: PackedLigands,
    plan: PackPlan,
    cfg: AdadeltaConfig,
    conformer_idx: np.ndarray,
    translations: np.ndarray,
    quaternions: np.ndarray,
    torsion_angles: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None, np.ndarray]:
    """ADADELTA refinement fused across the shard (gradient descent
    consumes no RNG, so rows advance in lock-step; padded torsion columns
    see zero gradient and stay exactly zero).

    Returns ``(best_t, best_q, best_s, best_a, per_ligand_evals)``.
    """
    t_max = pack.max_torsions
    n_ls = len(conformer_idx) // pack.n_ligands
    cur_t, cur_q = translations.copy(), quaternions.copy()
    cur_a = torsion_angles.copy() if t_max else None
    scores, g_t, g_r, g_a = packed_score_and_gradient_batch(
        receptor, pack, plan, conformer_idx, cur_t, cur_q, cur_a
    )
    best_t, best_q, best_s = cur_t.copy(), cur_q.copy(), scores.copy()
    best_a = None if cur_a is None else cur_a.copy()

    k = len(conformer_idx)
    dim = 6 + t_max
    eg2 = np.zeros((k, dim))
    ex2 = np.zeros((k, dim))
    for _ in range(cfg.max_iters):
        g = np.concatenate([g_t, g_r] + ([g_a] if t_max else []), axis=1)
        eg2 = cfg.rho * eg2 + (1 - cfg.rho) * g * g
        step = -np.sqrt(ex2 + cfg.eps) / np.sqrt(eg2 + cfg.eps) * g
        step = np.clip(step, -cfg.clip, cfg.clip)
        ex2 = cfg.rho * ex2 + (1 - cfg.rho) * step * step
        cur_t, cur_q = apply_rigid_steps_batch(
            cur_t, cur_q, step[:, :3], step[:, 3:6]
        )
        if t_max:
            cur_a = cur_a + step[:, 6:]
        scores, g_t, g_r, g_a = packed_score_and_gradient_batch(
            receptor, pack, plan, conformer_idx, cur_t, cur_q, cur_a
        )
        better = scores < best_s
        best_t[better], best_q[better] = cur_t[better], cur_q[better]
        best_s[better] = scores[better]
        if best_a is not None:
            best_a[better] = cur_a[better]
    evals = np.full(pack.n_ligands, n_ls * (1 + cfg.max_iters), dtype=np.int64)
    return best_t, best_q, best_s, best_a, evals


def _fused_solis_wets(
    receptor: Receptor,
    pack: PackedLigands,
    plan: PackPlan,
    cfg: SolisWetsConfig,
    conformer_idx: np.ndarray,
    translations: np.ndarray,
    quaternions: np.ndarray,
    torsion_angles: np.ndarray | None,
    rngs: list[np.random.Generator],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None, np.ndarray]:
    """Solis–Wets refinement fused across the shard.

    The hill-climber's iteration count is score-dependent (each ligand
    stops once all its step sizes shrink below ``rho_min``), so ligands
    carry an ``active`` flag: a retired ligand draws no further
    randomness, accrues no evaluations and keeps its state frozen via
    row masks, exactly matching where its sequential run broke out.

    Returns ``(best_t, best_q, best_s, best_a, per_ligand_evals)``.
    """
    n_lig = pack.n_ligands
    t_max = pack.max_torsions
    k = len(conformer_idx)
    n_ls = k // n_lig
    n_tor = pack.n_torsions

    best_t = translations.copy()
    best_q = quaternions.copy()
    best_a = torsion_angles.copy() if t_max else None
    best_s = packed_score_batch(
        receptor, pack, plan, conformer_idx, best_t, best_q, best_a
    )
    evals = np.full(n_lig, n_ls, dtype=np.int64)

    rho_t = np.full(k, cfg.rho_trans)
    rho_r = np.full(k, cfg.rho_rot)
    rho_a = np.full(k, cfg.rho_torsion)
    bias_t = np.zeros((k, 3))
    bias_r = np.zeros((k, 3))
    bias_a = np.zeros((k, t_max))
    succ = np.zeros(k, dtype=int)
    fail = np.zeros(k, dtype=int)
    active = np.ones(n_lig, dtype=bool)

    for _ in range(cfg.max_iters):
        if not active.any():
            break
        raw_t = np.zeros((k, 3))
        raw_r = np.zeros((k, 3))
        raw_a = np.zeros((k, t_max)) if t_max else None
        # per-stream draws: each active ligand consumes its own generator
        # in the sequential per-iteration order
        for li in np.flatnonzero(active):
            rt, rr, ra = draw_solis_wets(rngs[li], n_ls, int(n_tor[li]))
            rows = slice(li * n_ls, (li + 1) * n_ls)
            raw_t[rows] = rt
            raw_r[rows] = rr
            if ra is not None:
                raw_a[rows, : ra.shape[1]] = ra
        act_rows = np.repeat(active, n_ls)

        dt = raw_t * rho_t[:, None] + bias_t
        dr = raw_r * rho_r[:, None] + bias_r
        da = raw_a * rho_a[:, None] + bias_a if t_max else None

        t1, q1 = apply_rigid_steps_batch(best_t, best_q, dt, dr)
        a1 = None if best_a is None else best_a + da
        s1 = packed_score_batch(
            receptor, pack, plan, conformer_idx, t1, q1, a1
        )
        t2, q2 = apply_rigid_steps_batch(best_t, best_q, -dt, -dr)
        a2 = None if best_a is None else best_a - da
        s2 = packed_score_batch(
            receptor, pack, plan, conformer_idx, t2, q2, a2
        )
        evals[active] += 2 * n_ls

        fwd = (s1 < best_s) & act_rows
        back = (~fwd) & (s2 < best_s) & act_rows
        neither = act_rows & ~(fwd | back)

        best_t[fwd], best_q[fwd], best_s[fwd] = t1[fwd], q1[fwd], s1[fwd]
        best_t[back], best_q[back], best_s[back] = t2[back], q2[back], s2[back]
        if best_a is not None:
            best_a[fwd] = a1[fwd]
            best_a[back] = a2[back]

        bias_t[fwd] = 0.4 * bias_t[fwd] + 0.2 * dt[fwd]
        bias_r[fwd] = 0.4 * bias_r[fwd] + 0.2 * dr[fwd]
        bias_t[back] = bias_t[back] - 0.4 * dt[back]
        bias_r[back] = bias_r[back] - 0.4 * dr[back]
        bias_t[neither] *= 0.5
        bias_r[neither] *= 0.5
        if t_max:
            bias_a[fwd] = 0.4 * bias_a[fwd] + 0.2 * da[fwd]
            bias_a[back] = bias_a[back] - 0.4 * da[back]
            bias_a[neither] *= 0.5

        improved = fwd | back
        succ = np.where(act_rows, np.where(improved, succ + 1, 0), succ)
        fail = np.where(act_rows, np.where(improved, 0, fail + 1), fail)

        expand = (succ >= cfg.success_expand) & act_rows
        contract = (fail >= cfg.failure_contract) & act_rows
        scale = np.where(expand, 2.0, np.where(contract, 0.5, 1.0))
        rho_t *= scale
        rho_r *= scale
        rho_a *= scale
        succ[expand] = 0
        fail[contract] = 0

        # a ligand retires when all its rows' steps have converged —
        # the point its sequential run would break
        done = (
            (rho_t < cfg.rho_min).reshape(n_lig, n_ls).all(axis=1)
            & (rho_r < cfg.rho_min).reshape(n_lig, n_ls).all(axis=1)
        )
        active &= ~done
    return best_t, best_q, best_s, best_a, evals


def _partition_by_size(beads_list: list[LigandBeads]) -> list[list[int]]:
    """Bucket ligand indices so padded widths hug the intrinsic sizes.

    The packed kernels pay for every row at the pack's *padded* widths;
    fusing a 6-atom rigid fragment with a 31-atom, 6-torsion ligand makes
    the small one ~5× more expensive than docking it alone.  Buckets
    group by torsion count: torsion slots are the costliest padding (each
    slot is a full Rodrigues rotation plus a gradient pass over every
    pose), while atom/pair padding only widens element-wise ops that are
    dispatch-dominated at shard sizes — measured end-to-end, splitting
    further on atom count loses more to extra kernel dispatch than it
    saves in padding.  Conversely a bucket below ``_MIN_BUCKET`` ligands
    amortizes too little dispatch to justify its own LGA, so small
    torsion groups merge with their neighbour and pay the extra (masked)
    slots instead.  Per-ligand determinism makes the partition invisible
    in the results — it only moves throughput.
    """
    order = sorted(
        range(len(beads_list)),
        key=lambda i: (
            beads_list[i].n_torsions,
            beads_list[i].n_atoms,
            len(beads_list[i].intra_pairs),
        ),
    )
    buckets: list[list[int]] = [[order[0]]]
    for i in order[1:]:
        same_t = (
            beads_list[i].n_torsions
            == beads_list[buckets[-1][-1]].n_torsions
        )
        if same_t or len(buckets[-1]) < _MIN_BUCKET:
            buckets[-1].append(i)
        else:
            buckets.append([i])
    if len(buckets) > 1 and len(buckets[-1]) < _MIN_BUCKET:
        tail = buckets.pop()
        buckets[-1].extend(tail)
    return buckets


def dock_shard(
    receptor: Receptor,
    beads_list: list[LigandBeads],
    rngs: list[np.random.Generator],
    config: LGAConfig | None = None,
    local_search: str = "adadelta",
    tracer: Tracer | None = None,
) -> list[DockingRun]:
    """Dock a shard of prepared ligands with one fused LGA.

    ``rngs[i]`` must be ligand ``i``'s own stream (the one the sequential
    path would use), which is what keeps results independent of shard
    composition and ordering.  Returns one :class:`DockingRun` per
    ligand, bit-identical to ``LamarckianGA.dock`` run per ligand.

    Internally the shard is partitioned into size buckets
    (:func:`_partition_by_size`) and each bucket runs its own fused LGA;
    because every ligand's randomness and reductions are its own, the
    partition cannot change any result bit.
    """
    if len(beads_list) != len(rngs):
        raise ValueError("need exactly one RNG stream per ligand")
    if not beads_list:
        return []
    if tracer is None:
        tracer = NULL_TRACER
    cfg = config or LGAConfig()
    if local_search == "adadelta":
        refine_cfg: AdadeltaConfig | SolisWetsConfig = AdadeltaConfig()
    elif local_search == "solis-wets":
        refine_cfg = SolisWetsConfig()
    else:
        raise ValueError(
            f"unknown local search {local_search!r} "
            "(expected 'adadelta' or 'solis-wets')"
        )
    buckets = _partition_by_size(beads_list)
    if len(buckets) == 1:
        return _dock_packed(
            receptor, beads_list, rngs, cfg, refine_cfg, local_search, tracer
        )
    runs: list[DockingRun | None] = [None] * len(beads_list)
    for bucket in buckets:
        sub = _dock_packed(
            receptor,
            [beads_list[i] for i in bucket],
            [rngs[i] for i in bucket],
            cfg,
            refine_cfg,
            local_search,
            tracer,
        )
        for i, run in zip(bucket, sub):
            runs[i] = run
    return runs  # type: ignore[return-value]


def _dock_packed(
    receptor: Receptor,
    beads_list: list[LigandBeads],
    rngs: list[np.random.Generator],
    cfg: LGAConfig,
    refine_cfg: AdadeltaConfig | SolisWetsConfig,
    local_search: str,
    tracer: Tracer = NULL_TRACER,
) -> list[DockingRun]:
    """One fused LGA over an (ideally size-homogeneous) ligand bucket."""
    n_lig = len(beads_list)
    p = cfg.population
    n_ls = cfg.n_local_search
    half = receptor.box_size / 2.0
    with tracer.span("pack", category="docking.kernel", n_ligands=n_lig):
        pack = pack_ligands(beads_list)
        t_max = pack.max_torsions
        plan_pop = pack.plan(p)
        plan_ls = pack.plan(n_ls)

    # initial population: per-stream draws, stacked into ligand blocks
    with tracer.span("init-score", category="docking.kernel", n_ligands=n_lig):
        conf = np.empty(n_lig * p, dtype=np.int64)
        trans = np.empty((n_lig * p, 3))
        quat = np.empty((n_lig * p, 4))
        tors = np.zeros((n_lig * p, t_max)) if t_max else None
        for li, (beads, rng) in enumerate(zip(beads_list, rngs)):
            c, t, q, a = draw_initial_genes(
                rng, p, half, beads.n_conformers, beads.n_torsions
            )
            rows = slice(li * p, (li + 1) * p)
            conf[rows] = c
            trans[rows] = t
            quat[rows] = q
            if a is not None:
                tors[rows, : beads.n_torsions] = a

        scores = packed_score_batch(
            receptor, pack, plan_pop, conf, trans, quat, tors
        )
    n_evals = np.full(n_lig, p, dtype=np.int64)
    histories: list[list[float]] = [
        [float(s)] for s in scores.reshape(n_lig, p).min(axis=1)
    ]
    n_conf_rows = np.repeat(pack.n_conformers, cfg.n_children)
    lig_off = np.arange(n_lig) * p

    for gen in range(cfg.generations):
        # one generation of randomness per ligand stream, then stacked
        with tracer.span("genetics", category="docking.kernel", gen=gen):
            per_lig = [
                draw_generation(rng, cfg, beads.n_conformers, beads.n_torsions)
                for beads, rng in zip(beads_list, rngs)
            ]
            d = _stack_draws(per_lig, cfg, t_max)

            order = np.argsort(scores.reshape(n_lig, p), axis=1)
            elite_rows = (order[:, : cfg.elitism] + lig_off[:, None]).ravel()
            new_conf, new_trans, new_quat, new_tors = apply_genetics(
                cfg, scores, conf, trans, quat, tors, n_conf_rows, d
            )

            e = cfg.elitism
            nc = cfg.n_children
            conf = np.concatenate(
                [conf[elite_rows].reshape(n_lig, e), new_conf.reshape(n_lig, nc)],
                axis=1,
            ).reshape(n_lig * p)
            trans = np.concatenate(
                [trans[elite_rows].reshape(n_lig, e, 3), new_trans.reshape(n_lig, nc, 3)],
                axis=1,
            ).reshape(n_lig * p, 3)
            quat = np.concatenate(
                [quat[elite_rows].reshape(n_lig, e, 4), new_quat.reshape(n_lig, nc, 4)],
                axis=1,
            ).reshape(n_lig * p, 4)
            if t_max:
                tors = np.concatenate(
                    [
                        tors[elite_rows].reshape(n_lig, e, t_max),
                        new_tors.reshape(n_lig, nc, t_max),
                    ],
                    axis=1,
                ).reshape(n_lig * p, t_max)
        with tracer.span("score", category="docking.kernel", gen=gen):
            scores = packed_score_batch(
                receptor, pack, plan_pop, conf, trans, quat, tors
            )
        n_evals += p

        # Lamarckian step: refine each ligand's chosen subset, write back
        with tracer.span("local-search", category="docking.kernel", gen=gen):
            chosen = d.chosen
            chosen_a = None if tors is None else tors[chosen]
            if local_search == "adadelta":
                ref_t, ref_q, ref_s, ref_a, ref_evals = _fused_adadelta(
                    receptor, pack, plan_ls, refine_cfg,
                    conf[chosen], trans[chosen], quat[chosen], chosen_a,
                )
            else:
                ref_t, ref_q, ref_s, ref_a, ref_evals = _fused_solis_wets(
                    receptor, pack, plan_ls, refine_cfg,
                    conf[chosen], trans[chosen], quat[chosen], chosen_a, rngs,
                )
            n_evals += ref_evals
            better = ref_s < scores[chosen]
            idx = chosen[better]
            trans[idx] = ref_t[better]
            quat[idx] = ref_q[better]
            if t_max and ref_a is not None:
                tors[idx] = ref_a[better]
            scores[idx] = ref_s[better]
        gen_best = scores.reshape(n_lig, p).min(axis=1)
        for li, s in enumerate(gen_best):  # repro: disable=vectorization — list-of-lists append
            histories[li].append(float(s))

    # per-ligand result assembly (ragged torsion slices)
    best_local = np.argmin(scores.reshape(n_lig, p), axis=1)
    runs: list[DockingRun] = []
    for li, beads in enumerate(beads_list):  # repro: disable=vectorization — ragged
        row = li * p + int(best_local[li])
        n_tor = beads.n_torsions
        pose = Pose(
            int(conf[row]),
            trans[row].copy(),
            quat[row].copy(),
            None if n_tor == 0 else tors[row, :n_tor].copy(),
        )
        runs.append(
            DockingRun(
                best_pose=pose,
                best_score=float(scores[row]),
                n_evals=int(n_evals[li]),
                history=histories[li],
            )
        )
    return runs


# ------------------------------------------------------------- streaming


def _result_to_row(result) -> dict:
    """DockingResult → JSON row (exact float round-trip via ``repr``)."""
    return {
        "id": result.compound_id,
        "smiles": result.smiles,
        "score": float(result.score),
        "n_evals": int(result.n_evals),
        "translation": [float(v) for v in result.pose_translation],
        "quaternion": [float(v) for v in result.pose_quaternion],
        "conformer": int(result.conformer),
        "torsions": [float(v) for v in result.torsion_angles],
    }


def _row_to_result(row: dict):
    from repro.docking.engine import DockingResult

    return DockingResult(
        compound_id=row["id"],
        smiles=row["smiles"],
        score=row["score"],
        n_evals=row["n_evals"],
        pose_translation=tuple(row["translation"]),
        pose_quaternion=tuple(row["quaternion"]),
        conformer=row["conformer"],
        torsion_angles=tuple(row["torsions"]),
    )


def dock_stream(
    engine,
    shards,
    checkpoint: CheckpointManifest | None = None,
    artifact_dir=None,
    tracer: Tracer | None = None,
):
    """Dock a stream of entry shards through the fused LGA, checkpointed.

    ``shards`` yields lists of ``(smiles, compound_id)`` pairs; each
    shard runs as one :func:`dock_shard` call via
    ``engine.dock_entries(shard, batched=True)`` (the LigandPack path),
    and the generator yields ``(shard_id, [DockingResult, ...])`` as
    shards complete — so only one shard of ligands is ever packed in
    memory.  Shard ids are positional (``dock-00000``, ``dock-00001``,
    …).

    With ``checkpoint``/``artifact_dir``, each completed shard's poses
    are persisted (exact-float JSONL) and durably recorded before the
    next shard starts; a resumed run reloads completed shards instead of
    redocking — the mid-S1 kill/resume contract.  The manifest stores a
    content fingerprint per shard and resume verifies it against the
    incoming shard, so a changed shard cut or library fails loudly.
    Per-compound RNG streams make the shard cut invisible in the
    results: poses are bit-identical to any other cut, including the
    materialized ``engine.dock_entries`` over all compounds at once.
    """
    if checkpoint is not None and artifact_dir is None:
        raise ValueError("checkpointed docking needs an artifact_dir")
    if tracer is None:
        tracer = getattr(engine, "tracer", None) or NULL_TRACER
    from pathlib import Path

    for k, shard in enumerate(shards):
        shard_id = f"dock-{k:05d}"
        fingerprint = shard_fingerprint((cid, smiles) for smiles, cid in shard)
        if checkpoint is not None and checkpoint.is_done(shard_id):
            recorded = checkpoint.payload(shard_id).get("fingerprint")
            if recorded != fingerprint:
                raise RuntimeError(
                    f"checkpoint fingerprint mismatch for shard {shard_id}: "
                    "the shard cut or selection changed since the checkpoint"
                )
            rows = load_artifact(Path(artifact_dir) / f"{shard_id}.poses.jsonl.gz")
            results = [_row_to_result(r) for r in rows]
            tracer.metrics.counter("stream.dock_shards_resumed").inc()
            with tracer.span(
                f"shard:{shard_id}", category="stream.shard",
                shard=shard_id, n_ligands=len(results), resumed=True,
            ):
                pass
            yield shard_id, results
            continue
        with tracer.span(
            f"shard:{shard_id}", category="stream.shard",
            shard=shard_id, n_ligands=len(shard), resumed=False,
        ):
            results = engine.dock_entries(list(shard), batched=True)
        engine.total_evals += sum(r.n_evals for r in results)
        engine.total_ligands += len(results)
        tracer.metrics.counter("stream.dock_shards_scored").inc()
        if checkpoint is not None:
            save_artifact(
                Path(artifact_dir) / f"{shard_id}.poses.jsonl.gz",
                [_result_to_row(r) for r in results],
            )
            with tracer.span(
                f"checkpoint:{shard_id}", category="stream.checkpoint",
                shard=shard_id,
            ):
                checkpoint.mark_done(
                    shard_id, n_ligands=len(results), fingerprint=fingerprint
                )
        yield shard_id, results
