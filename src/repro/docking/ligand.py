"""Ligand preparation: molecule → docking beads and pose parameters.

A docking *bead set* carries per-heavy-atom coordinates, partial charges,
hydrophobicities and radii derived from the molecular graph, plus the
molecule's **rotatable-bond torsions** — the internal degrees of freedom
AutoDock's genome optimizes alongside position and orientation.  A *pose*
is (conformer index, torsion angles, rigid-body placement); conformer
enumeration supplies ring-pucker-style variation the torsions cannot
reach.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.descriptors import partial_charges
from repro.chem.embed3d import embed_conformer
from repro.chem.mol import Molecule

__all__ = [
    "LigandBeads",
    "PackPlan",
    "PackedLigands",
    "Pose",
    "Torsion",
    "find_torsions",
    "pack_ligands",
    "packed_single",
    "prepare_ligand",
    "quaternion_to_matrix",
    "random_quaternion",
]

#: intra-ligand clash stiffness (kcal/mol/A^2) and contact-distance scale.
#: These live here (not in scoring) because the pair contact distances are
#: ligand-intrinsic and precomputed at pack time.
INTRA_K = 10.0
INTRA_SCALE = 0.8


@dataclass(frozen=True)
class Torsion:
    """One rotatable bond: rotate ``moving`` atoms about axis a→b."""

    a: int
    b: int
    moving: np.ndarray  # atom indices on the b-side of the bond


def find_torsions(mol: Molecule) -> list[Torsion]:
    """Rotatable-bond torsions of a molecule.

    A bond is rotatable when it is a single, non-ring, non-terminal bond
    (the same definition the rotatable-bond descriptor uses).  The moving
    set is the connected component containing ``b`` once the bond is cut;
    the smaller side is chosen so rotations perturb as little as possible.
    """
    import networkx as nx

    g = mol.to_networkx()
    ring_bonds = set()
    for ring in mol.rings():
        for a, b in zip(ring, [*ring[1:], ring[0]]):
            ring_bonds.add(frozenset((a, b)))
    torsions = []
    for bond in mol.bonds:
        if bond.order != 1 or bond.aromatic:
            continue
        if frozenset((bond.a, bond.b)) in ring_bonds:
            continue
        if mol.degree(bond.a) < 2 or mol.degree(bond.b) < 2:
            continue
        h = g.copy()
        h.remove_edge(bond.a, bond.b)
        side_b = nx.node_connected_component(h, bond.b)
        side_a = nx.node_connected_component(h, bond.a)
        if len(side_b) <= len(side_a):
            a, b, moving = bond.a, bond.b, side_b - {bond.b}
        else:
            a, b, moving = bond.b, bond.a, side_a - {bond.a}
        if moving:
            torsions.append(
                Torsion(a=a, b=b, moving=np.array(sorted(moving), dtype=int))
            )
    return torsions


@dataclass
class LigandBeads:
    """Per-atom docking parameters, conformer bank and torsion tree."""

    charges: np.ndarray  # (n,)
    hydro: np.ndarray  # (n,)
    radii: np.ndarray  # (n,)
    conformers: np.ndarray  # (k, n, 3), centred
    torsions: list[Torsion] = field(default_factory=list)
    #: atom pairs ≥ 3 bonds apart: the intra-ligand clash term's domain
    #: (flexible ligands must not fold through themselves — AutoDock's
    #: "internal energy" role)
    intra_pairs: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 2), dtype=int)
    )

    @property
    def n_atoms(self) -> int:
        """Number of atoms (beads)."""
        return self.conformers.shape[1]

    @property
    def n_conformers(self) -> int:
        """Number of conformers in the bank."""
        return self.conformers.shape[0]

    @property
    def n_torsions(self) -> int:
        """Number of rotatable-bond degrees of freedom."""
        return len(self.torsions)


@dataclass
class Pose:
    """Pose genes: conformer, torsion angles, translation, orientation."""

    conformer: int
    translation: np.ndarray  # (3,)
    quaternion: np.ndarray  # (4,), unit norm
    torsion_angles: np.ndarray | None = None  # (n_torsions,) radians

    def copy(self) -> "Pose":
        """Deep copy of this pose."""
        return Pose(
            self.conformer,
            self.translation.copy(),
            self.quaternion.copy(),
            None if self.torsion_angles is None else self.torsion_angles.copy(),
        )


def prepare_ligand(
    mol: Molecule, rng: np.random.Generator, n_conformers: int = 4
) -> LigandBeads:
    """Derive docking beads, conformers and torsions from a molecule."""
    if n_conformers < 1:
        raise ValueError("need at least one conformer")
    charges = partial_charges(mol)
    hydro = np.array([a.element.hydrophobicity for a in mol.atoms])
    # add lipophilicity for implicit Hs on carbon (CH3 more greasy than bare C)
    for a in mol.atoms:
        if a.symbol == "C":
            hydro[a.index] += 0.05 * mol.implicit_hydrogens(a.index)
    radii = np.array([a.element.radius for a in mol.atoms])
    confs = np.stack([embed_conformer(mol, rng) for _ in range(n_conformers)])
    # intra-ligand pairs: topological distance >= 3 (1-2 and 1-3 excluded,
    # the standard nonbonded exclusion)
    import networkx as nx

    g = mol.to_networkx()
    sp = dict(nx.all_pairs_shortest_path_length(g, cutoff=2))
    pairs = [
        (i, j)
        for i in range(mol.n_atoms)
        for j in range(i + 1, mol.n_atoms)
        if j not in sp.get(i, {})
    ]
    intra = (
        np.array(pairs, dtype=int) if pairs else np.zeros((0, 2), dtype=int)
    )
    return LigandBeads(
        charges=charges,
        hydro=hydro,
        radii=radii,
        conformers=confs,
        torsions=find_torsions(mol),
        intra_pairs=intra,
    )


@dataclass
class PackedLigands:
    """A shard of ligands packed into padded struct-of-arrays.

    This is the memory layout of the fused multi-ligand docking kernels:
    every per-atom array is padded to the widest ligand in the shard
    (``max_atoms``), torsion trees to the deepest (``max_torsions``) and
    intra-ligand pair lists to the longest (``max_pairs``), with boolean
    masks marking the real entries.  Padded atoms carry zero charge and
    hydrophobicity and are masked out of steric/wall terms, so they
    contribute exactly zero energy and zero gradient.

    The determinism contract: a ligand's kernel outputs depend only on
    its *own* rows and its *own* intrinsic sizes (``n_atoms[l]``,
    ``n_torsions[l]``, ``n_pairs[l]``), never on the pack's padded
    widths — reductions are taken over per-ligand slices of intrinsic
    length, which makes results bit-identical whether the ligand is
    docked alone, in a shard, or in a reordered shard.
    """

    beads: list  # list[LigandBeads], the unpacked originals
    n_atoms: np.ndarray  # (L,) int
    n_torsions: np.ndarray  # (L,) int
    n_conformers: np.ndarray  # (L,) int
    n_pairs: np.ndarray  # (L,) int
    atom_mask: np.ndarray  # (L, A) bool
    charges: np.ndarray  # (L, A), zero-padded
    hydro: np.ndarray  # (L, A), zero-padded
    conformers: np.ndarray  # (L, C, A, 3), zero-padded
    tor_a: np.ndarray  # (T, L) int, axis atom a per torsion slot
    tor_b: np.ndarray  # (T, L) int, axis atom b per torsion slot
    tor_valid: np.ndarray  # (T, L) bool, slot < n_torsions[l]
    tor_moving: np.ndarray  # (T, L, A) bool, moving-atom masks
    pair_idx: np.ndarray  # (L, M, 2) int, intra pairs, (0, 0)-padded
    pair_sigma: np.ndarray  # (L, M), contact distances, zero-padded

    @property
    def n_ligands(self) -> int:
        """Number of ligands in the shard."""
        return len(self.beads)

    @property
    def max_atoms(self) -> int:
        """Padded atom count (widest ligand)."""
        return self.conformers.shape[2]

    @property
    def max_torsions(self) -> int:
        """Padded torsion count (deepest torsion tree)."""
        return self.tor_a.shape[0]

    @property
    def max_pairs(self) -> int:
        """Padded intra-pair count (longest pair list)."""
        return self.pair_idx.shape[1]

    def plan(self, rows_per_ligand: int) -> "PackPlan":
        """Cached :class:`PackPlan` for ``rows_per_ligand`` rows per ligand.

        The scoring kernels are called thousands of times per docking run
        with the same pack and the same batch geometry; building the
        row-level index arithmetic once per ``(pack, rows_per_ligand)``
        keeps it off the kernel hot path.
        """
        plans = self.__dict__.setdefault("_plans", {})
        plan = plans.get(rows_per_ligand)
        if plan is None:
            plan = plans[rows_per_ligand] = PackPlan(self, rows_per_ligand)
        return plan


def pack_ligands(beads_list: list[LigandBeads]) -> PackedLigands:
    """Pack a shard of prepared ligands for the fused docking kernels."""
    if not beads_list:
        raise ValueError("cannot pack an empty shard")
    lcount = len(beads_list)
    n_atoms = np.array([b.n_atoms for b in beads_list], dtype=int)
    n_tors = np.array([b.n_torsions for b in beads_list], dtype=int)
    n_confs = np.array([b.n_conformers for b in beads_list], dtype=int)
    n_pairs = np.array([len(b.intra_pairs) for b in beads_list], dtype=int)
    a_max = int(n_atoms.max())
    t_max = int(n_tors.max())
    c_max = int(n_confs.max())
    m_max = int(n_pairs.max())

    atom_mask = np.zeros((lcount, a_max), dtype=bool)
    charges = np.zeros((lcount, a_max))
    hydro = np.zeros((lcount, a_max))
    conformers = np.zeros((lcount, c_max, a_max, 3))
    tor_a = np.zeros((t_max, lcount), dtype=int)
    tor_b = np.zeros((t_max, lcount), dtype=int)
    tor_valid = np.zeros((t_max, lcount), dtype=bool)
    tor_moving = np.zeros((t_max, lcount, a_max), dtype=bool)
    pair_idx = np.zeros((lcount, m_max, 2), dtype=int)
    pair_sigma = np.zeros((lcount, m_max))

    # per-ligand shapes make the pack loop genuinely sequential
    for li, b in enumerate(beads_list):  # repro: disable=vectorization -- ragged shapes
        n = b.n_atoms
        atom_mask[li, :n] = True
        charges[li, :n] = b.charges
        hydro[li, :n] = b.hydro
        conformers[li, : b.n_conformers, :n] = b.conformers
        for t, tor in enumerate(b.torsions):  # repro: disable=vectorization -- ragged moving sets
            # each torsion slot scatters its own mask
            tor_a[t, li] = tor.a
            tor_b[t, li] = tor.b
            tor_valid[t, li] = True
            tor_moving[t, li, tor.moving] = True
        if len(b.intra_pairs):
            m = len(b.intra_pairs)
            pair_idx[li, :m] = b.intra_pairs
            pi, pj = b.intra_pairs[:, 0], b.intra_pairs[:, 1]
            # exactly the scoring-kernel expression, so packed sigmas are
            # bit-identical to the per-call single-ligand computation
            pair_sigma[li, :m] = INTRA_SCALE * 0.5 * (b.radii[pi] + b.radii[pj])
    return PackedLigands(
        beads=list(beads_list),
        n_atoms=n_atoms,
        n_torsions=n_tors,
        n_conformers=n_confs,
        n_pairs=n_pairs,
        atom_mask=atom_mask,
        charges=charges,
        hydro=hydro,
        conformers=conformers,
        tor_a=tor_a,
        tor_b=tor_b,
        tor_valid=tor_valid,
        tor_moving=tor_moving,
        pair_idx=pair_idx,
        pair_sigma=pair_sigma,
    )


def packed_single(beads: LigandBeads) -> PackedLigands:
    """Pack-of-one view of ``beads``, cached on the instance.

    The single-ligand scoring API routes through the same packed kernels
    as the fused shard path; caching the trivial pack keeps the wrapper
    overhead off the sequential hot path.
    """
    pack = beads.__dict__.get("_packed1")
    if pack is None:
        pack = pack_ligands([beads])
        beads.__dict__["_packed1"] = pack
    return pack


class PackPlan:
    """Precomputed row↔ligand indexing for the packed scoring kernels.

    A plan fixes the batch geometry — ``rows_per_ligand`` poses per
    ligand, ligand blocks contiguous — and precomputes everything the
    kernels would otherwise rebuild per call: per-row parameter gathers
    (charges, hydrophobicities, masks, intra-pair tables), per-torsion-
    slot row gathers, reduction row sets grouped by intrinsic width, and
    the flat intra-pair scatter index.

    Width grouping is the fused path's answer to the per-ligand
    reduction loop without giving up bit-identity: reductions are still
    taken per row over each ligand's *intrinsic* width (never the padded
    width), but all ligands sharing a width reduce in one call.  Row
    lanes reduce independently, so gathering same-width rows together
    cannot change any lane's summation grouping.
    """

    def __init__(self, pack: PackedLigands, rows_per_ligand: int) -> None:
        lcount = pack.n_ligands
        r = int(rows_per_ligand)
        k = lcount * r
        self.rows_per_ligand = r
        self.n_rows = k
        self.lig_idx = np.repeat(np.arange(lcount), r)
        self.row_ids = np.arange(k)
        self.row_col = self.row_ids[:, None]
        # per-row parameter gathers; a pack-of-one keeps the (1, A)
        # broadcast row so the sequential path pays no gather at all
        sel = slice(0, 1) if lcount == 1 else self.lig_idx
        self.charges = pack.charges[sel]
        self.hydro = pack.hydro[sel]
        self.atom_mask = pack.atom_mask[sel]
        # inverted mask, precomputed so the kernels' masked in-place
        # writes (np.copyto ... where=) pay no per-call negation
        self.atom_notmask = ~self.atom_mask
        # per-slot torsion gathers: axis atoms and the combined
        # valid-and-moving selection mask per row
        self.tor_a = pack.tor_a[:, self.lig_idx]
        self.tor_b = pack.tor_b[:, self.lig_idx]
        self.tor_sel = (
            pack.tor_valid[:, self.lig_idx, None]
            & pack.tor_moving[:, self.lig_idx]
        )
        self.tor_slots = [
            t for t in range(pack.max_torsions) if bool(pack.tor_valid[t].any())
        ]
        # slot-stacked views of the same gathers, for kernels that process
        # every torsion slot in one fused pass (the torsion-gradient field
        # has no slot-order dependency, unlike applying the rotations)
        self.tor_slot_arr = np.array(self.tor_slots, dtype=int)
        if len(self.tor_slots) == pack.max_torsions:
            self.tor_a_s = self.tor_a
            self.tor_b_s = self.tor_b
            self.tor_sel_s = self.tor_sel
        else:
            self.tor_a_s = self.tor_a[self.tor_slot_arr]
            self.tor_b_s = self.tor_b[self.tor_slot_arr]
            self.tor_sel_s = self.tor_sel[self.tor_slot_arr]
        self.tor_notsel_s = ~self.tor_sel_s
        self.atom_groups = self._width_groups(pack.n_atoms, lcount, r, k)
        # flat real-atom layout: one entry per *real* (row, atom), laid
        # out per row with atoms ascending.  The kernels' elementwise
        # phase (gather stencil, channel products, wall, intra pairs)
        # runs entirely on this axis, so atom padding costs zero
        # arithmetic — a 6-atom fragment bucketed next to a 31-atom
        # ligand pays only its own six lanes.  Every lane is elementwise
        # and each reduction lane keeps its intrinsic width, so the
        # layout cannot change any bit of any ligand's result
        n_atoms_row = pack.n_atoms[self.lig_idx]  # (K,)
        self.row_flat_start = np.zeros(k + 1, dtype=int)
        np.cumsum(n_atoms_row, out=self.row_flat_start[1:])
        n_flat = int(self.row_flat_start[-1])
        if n_flat == k * pack.max_atoms:
            # no padding anywhere (e.g. a pack-of-one): the flat layout
            # is exactly the row-major reshape, so the kernels use free
            # views instead of gather/scatter round-trips
            self.atom_flat: np.ndarray | None = None
        else:
            within = np.arange(n_flat) - np.repeat(
                self.row_flat_start[:-1], n_atoms_row
            )
            self.atom_flat = (
                np.repeat(self.row_ids * pack.max_atoms, n_atoms_row) + within
            )
            self.charges_flat = self.charges.ravel()[self.atom_flat]
            self.hydro_flat = self.hydro.ravel()[self.atom_flat]
        # reduction gathers on the flat axis, aligned with atom_groups:
        # adjacent same-width rows give a contiguous flat slice
        self.atom_groups_flat: list[
            tuple[int, slice | np.ndarray, slice | np.ndarray]
        ] = []
        for n, rows in self.atom_groups:
            if isinstance(rows, slice):
                fidx: slice | np.ndarray = slice(
                    int(self.row_flat_start[rows.start]),
                    int(self.row_flat_start[rows.stop]),
                )
            else:
                fidx = self.row_flat_start[rows][:, None] + np.arange(n)
            self.atom_groups_flat.append((n, rows, fidx))
        # flat intra-pair layout: one entry per *real* (row, pair), laid
        # out per ligand block, per row, pairs ascending — the same
        # accumulation order as a per-ligand scatter.  The whole intra
        # elementwise phase runs on this flat axis, so padded pair slots
        # cost nothing (a torsion-homogeneous bucket can mix a 2-pair
        # fragment with a 382-pair ligand without the small one paying
        # the wide one's pair width)
        rs, ais, ajs, sigs = [], [], [], []
        flat_off = np.zeros(lcount + 1, dtype=int)
        for li in range(lcount):  # repro: disable=vectorization -- ragged pair lists
            # runs once per plan, not per call
            m = int(pack.n_pairs[li])
            flat_off[li + 1] = flat_off[li] + m * r
            if m == 0:
                continue
            pairs = pack.beads[li].intra_pairs
            rows = np.arange(li * r, (li + 1) * r)
            rs.append(np.repeat(rows, m))
            ais.append(np.tile(pairs[:, 0], r))
            ajs.append(np.tile(pairs[:, 1], r))
            sigs.append(np.tile(pack.pair_sigma[li, :m], r))
        # per-width flat reduction gathers: each same-width ligand group
        # reduces its (rows, m) overlap block in one call; adjacent
        # ligands give a contiguous flat slice (zero-copy reshape),
        # scattered ones a fancy gather
        self.pair_groups: list[
            tuple[int, slice | np.ndarray, slice | np.ndarray]
        ] = []
        for m, rows in self._width_groups(pack.n_pairs, lcount, r, k):
            if m == 0:
                continue
            slots = np.flatnonzero(pack.n_pairs == m)
            if len(slots) == slots[-1] - slots[0] + 1:
                idx: slice | np.ndarray = slice(
                    int(flat_off[slots[0]]), int(flat_off[slots[-1] + 1])
                )
            else:
                idx = (
                    flat_off[slots][:, None] + np.arange(r * m)
                ).reshape(len(slots) * r, m)
            self.pair_groups.append((m, rows, idx))
        if rs:
            row_sc = np.concatenate(rs)
            ai = np.concatenate(ais)
            aj = np.concatenate(ajs)
            # pair endpoints as indices into the flat real-atom axis
            # (row_flat_start[row] + atom); with no padding this equals
            # row * max_atoms + atom, so both kernel layouts share them
            self.pair_fi: np.ndarray | None = self.row_flat_start[row_sc] + ai
            self.pair_fj: np.ndarray | None = self.row_flat_start[row_sc] + aj
            self.pair_sig_flat: np.ndarray | None = np.concatenate(sigs)
            # element-level indices into the flat gradient's ravel(): the
            # i-scatter block then the j-scatter block, preserving the
            # accumulation order of two separate scatters (1-D ufunc.at
            # is ~10× the speed of the multi-axis form, identical bits)
            comp = np.arange(3)
            flat_i = ((self.pair_fi[:, None] * 3 + comp)).ravel()
            flat_j = ((self.pair_fj[:, None] * 3 + comp)).ravel()
            self.pair_scatter: np.ndarray | None = np.concatenate(
                [flat_i, flat_j]
            )
        else:
            self.pair_fi = self.pair_fj = None
            self.pair_sig_flat = self.pair_scatter = None

    @staticmethod
    def _width_groups(
        widths: np.ndarray, lcount: int, r: int, k: int
    ) -> list[tuple[int, slice | np.ndarray]]:
        """Reduction row sets per distinct intrinsic width.

        When a width's ligands sit adjacent in the pack (always true for
        the size-sorted shard buckets), the rows form a contiguous range
        and a ``slice`` keeps the reduction input a zero-copy view —
        reductions over strided views and gathered copies group lanes
        identically, so the bits don't change, only the gather traffic.
        Non-adjacent ligands fall back to a fancy index.
        """
        groups: list[tuple[int, slice | np.ndarray]] = []
        for w in sorted({int(x) for x in widths}):
            slots = np.flatnonzero(widths == w)
            if len(slots) == slots[-1] - slots[0] + 1:
                rows: slice | np.ndarray = slice(
                    int(slots[0]) * r, (int(slots[-1]) + 1) * r
                )
            else:
                rows = (slots[:, None] * r + np.arange(r)).ravel()
            groups.append((w, rows))
        return groups


def random_quaternion(rng: np.random.Generator) -> np.ndarray:
    """Uniform random unit quaternion (Shoemake's method)."""
    u1, u2, u3 = rng.random(3)
    q = np.array(
        [
            np.sqrt(1 - u1) * np.sin(2 * np.pi * u2),
            np.sqrt(1 - u1) * np.cos(2 * np.pi * u2),
            np.sqrt(u1) * np.sin(2 * np.pi * u3),
            np.sqrt(u1) * np.cos(2 * np.pi * u3),
        ]
    )
    return q


def quaternion_to_matrix(q: np.ndarray) -> np.ndarray:
    """Rotation matrix of a unit quaternion (x, y, z, w convention)."""
    q = q / np.linalg.norm(q)
    x, y, z, w = q
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
            [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
            [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
        ]
    )


def apply_torsions_batch(
    coords: np.ndarray, torsions: list[Torsion], angles: np.ndarray
) -> np.ndarray:
    """Rotate each torsion's moving atoms about its bond axis (batched).

    ``coords`` is (k, n, 3) local conformer coordinates, ``angles`` is
    (k, n_torsions) radians.  Torsions apply sequentially in definition
    order (the torsion-tree convention); Rodrigues rotation per pose.
    """
    if not torsions or angles is None or angles.shape[-1] == 0:
        return coords
    if angles.shape != (len(coords), len(torsions)):
        raise ValueError(
            f"angles shape {angles.shape} != ({len(coords)}, {len(torsions)})"
        )
    out = coords.copy()
    # torsions form a tree: rotation t moves the atoms downstream of
    # bond t, so applications are order-dependent — sequential over the
    # (short) torsion axis, batched over the (long) pose axis
    for t, tor in enumerate(torsions):  # repro: disable=vectorization -- order-dependent tree
        origin = out[:, tor.a]  # (k, 3)
        axis = out[:, tor.b] - origin
        axis = axis / (np.linalg.norm(axis, axis=1, keepdims=True) + 1e-12)
        theta = angles[:, t]
        cos = np.cos(theta)[:, None, None]
        sin = np.sin(theta)[:, None, None]
        v = out[:, tor.moving] - origin[:, None, :]  # (k, m, 3)
        k_vec = axis[:, None, :]  # (k, 1, 3)
        cross = np.cross(k_vec, v)
        dot = (k_vec * v).sum(-1, keepdims=True)
        rotated = v * cos + cross * sin + k_vec * dot * (1.0 - cos)
        out[:, tor.moving] = rotated + origin[:, None, :]
    return out


def pose_coordinates(beads: LigandBeads, pose: Pose) -> np.ndarray:
    """World coordinates of the ligand atoms under ``pose``."""
    conf = beads.conformers[pose.conformer][None]
    if pose.torsion_angles is not None and beads.n_torsions:
        conf = apply_torsions_batch(
            conf, beads.torsions, pose.torsion_angles[None]
        )
    rot = quaternion_to_matrix(pose.quaternion)
    return conf[0] @ rot.T + pose.translation[None, :]
