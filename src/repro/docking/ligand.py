"""Ligand preparation: molecule → docking beads and pose parameters.

A docking *bead set* carries per-heavy-atom coordinates, partial charges,
hydrophobicities and radii derived from the molecular graph, plus the
molecule's **rotatable-bond torsions** — the internal degrees of freedom
AutoDock's genome optimizes alongside position and orientation.  A *pose*
is (conformer index, torsion angles, rigid-body placement); conformer
enumeration supplies ring-pucker-style variation the torsions cannot
reach.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.descriptors import partial_charges
from repro.chem.embed3d import embed_conformer
from repro.chem.mol import Molecule

__all__ = [
    "LigandBeads",
    "Pose",
    "Torsion",
    "find_torsions",
    "prepare_ligand",
    "quaternion_to_matrix",
    "random_quaternion",
]


@dataclass(frozen=True)
class Torsion:
    """One rotatable bond: rotate ``moving`` atoms about axis a→b."""

    a: int
    b: int
    moving: np.ndarray  # atom indices on the b-side of the bond


def find_torsions(mol: Molecule) -> list[Torsion]:
    """Rotatable-bond torsions of a molecule.

    A bond is rotatable when it is a single, non-ring, non-terminal bond
    (the same definition the rotatable-bond descriptor uses).  The moving
    set is the connected component containing ``b`` once the bond is cut;
    the smaller side is chosen so rotations perturb as little as possible.
    """
    import networkx as nx

    g = mol.to_networkx()
    ring_bonds = set()
    for ring in mol.rings():
        for a, b in zip(ring, [*ring[1:], ring[0]]):
            ring_bonds.add(frozenset((a, b)))
    torsions = []
    for bond in mol.bonds:
        if bond.order != 1 or bond.aromatic:
            continue
        if frozenset((bond.a, bond.b)) in ring_bonds:
            continue
        if mol.degree(bond.a) < 2 or mol.degree(bond.b) < 2:
            continue
        h = g.copy()
        h.remove_edge(bond.a, bond.b)
        side_b = nx.node_connected_component(h, bond.b)
        side_a = nx.node_connected_component(h, bond.a)
        if len(side_b) <= len(side_a):
            a, b, moving = bond.a, bond.b, side_b - {bond.b}
        else:
            a, b, moving = bond.b, bond.a, side_a - {bond.a}
        if moving:
            torsions.append(
                Torsion(a=a, b=b, moving=np.array(sorted(moving), dtype=int))
            )
    return torsions


@dataclass
class LigandBeads:
    """Per-atom docking parameters, conformer bank and torsion tree."""

    charges: np.ndarray  # (n,)
    hydro: np.ndarray  # (n,)
    radii: np.ndarray  # (n,)
    conformers: np.ndarray  # (k, n, 3), centred
    torsions: list[Torsion] = field(default_factory=list)
    #: atom pairs ≥ 3 bonds apart: the intra-ligand clash term's domain
    #: (flexible ligands must not fold through themselves — AutoDock's
    #: "internal energy" role)
    intra_pairs: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 2), dtype=int)
    )

    @property
    def n_atoms(self) -> int:
        """Number of atoms (beads)."""
        return self.conformers.shape[1]

    @property
    def n_conformers(self) -> int:
        """Number of conformers in the bank."""
        return self.conformers.shape[0]

    @property
    def n_torsions(self) -> int:
        """Number of rotatable-bond degrees of freedom."""
        return len(self.torsions)


@dataclass
class Pose:
    """Pose genes: conformer, torsion angles, translation, orientation."""

    conformer: int
    translation: np.ndarray  # (3,)
    quaternion: np.ndarray  # (4,), unit norm
    torsion_angles: np.ndarray | None = None  # (n_torsions,) radians

    def copy(self) -> "Pose":
        """Deep copy of this pose."""
        return Pose(
            self.conformer,
            self.translation.copy(),
            self.quaternion.copy(),
            None if self.torsion_angles is None else self.torsion_angles.copy(),
        )


def prepare_ligand(
    mol: Molecule, rng: np.random.Generator, n_conformers: int = 4
) -> LigandBeads:
    """Derive docking beads, conformers and torsions from a molecule."""
    if n_conformers < 1:
        raise ValueError("need at least one conformer")
    charges = partial_charges(mol)
    hydro = np.array([a.element.hydrophobicity for a in mol.atoms])
    # add lipophilicity for implicit Hs on carbon (CH3 more greasy than bare C)
    for a in mol.atoms:
        if a.symbol == "C":
            hydro[a.index] += 0.05 * mol.implicit_hydrogens(a.index)
    radii = np.array([a.element.radius for a in mol.atoms])
    confs = np.stack([embed_conformer(mol, rng) for _ in range(n_conformers)])
    # intra-ligand pairs: topological distance >= 3 (1-2 and 1-3 excluded,
    # the standard nonbonded exclusion)
    import networkx as nx

    g = mol.to_networkx()
    sp = dict(nx.all_pairs_shortest_path_length(g, cutoff=2))
    pairs = [
        (i, j)
        for i in range(mol.n_atoms)
        for j in range(i + 1, mol.n_atoms)
        if j not in sp.get(i, {})
    ]
    intra = (
        np.array(pairs, dtype=int) if pairs else np.zeros((0, 2), dtype=int)
    )
    return LigandBeads(
        charges=charges,
        hydro=hydro,
        radii=radii,
        conformers=confs,
        torsions=find_torsions(mol),
        intra_pairs=intra,
    )


def random_quaternion(rng: np.random.Generator) -> np.ndarray:
    """Uniform random unit quaternion (Shoemake's method)."""
    u1, u2, u3 = rng.random(3)
    q = np.array(
        [
            np.sqrt(1 - u1) * np.sin(2 * np.pi * u2),
            np.sqrt(1 - u1) * np.cos(2 * np.pi * u2),
            np.sqrt(u1) * np.sin(2 * np.pi * u3),
            np.sqrt(u1) * np.cos(2 * np.pi * u3),
        ]
    )
    return q


def quaternion_to_matrix(q: np.ndarray) -> np.ndarray:
    """Rotation matrix of a unit quaternion (x, y, z, w convention)."""
    q = q / np.linalg.norm(q)
    x, y, z, w = q
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
            [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
            [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
        ]
    )


def apply_torsions_batch(
    coords: np.ndarray, torsions: list[Torsion], angles: np.ndarray
) -> np.ndarray:
    """Rotate each torsion's moving atoms about its bond axis (batched).

    ``coords`` is (k, n, 3) local conformer coordinates, ``angles`` is
    (k, n_torsions) radians.  Torsions apply sequentially in definition
    order (the torsion-tree convention); Rodrigues rotation per pose.
    """
    if not torsions or angles is None or angles.shape[-1] == 0:
        return coords
    if angles.shape != (len(coords), len(torsions)):
        raise ValueError(
            f"angles shape {angles.shape} != ({len(coords)}, {len(torsions)})"
        )
    out = coords.copy()
    # torsions form a tree: rotation t moves the atoms downstream of
    # bond t, so applications are order-dependent — sequential over the
    # (short) torsion axis, batched over the (long) pose axis
    for t, tor in enumerate(torsions):  # repro: disable=vectorization
        origin = out[:, tor.a]  # (k, 3)
        axis = out[:, tor.b] - origin
        axis = axis / (np.linalg.norm(axis, axis=1, keepdims=True) + 1e-12)
        theta = angles[:, t]
        cos = np.cos(theta)[:, None, None]
        sin = np.sin(theta)[:, None, None]
        v = out[:, tor.moving] - origin[:, None, :]  # (k, m, 3)
        k_vec = axis[:, None, :]  # (k, 1, 3)
        cross = np.cross(k_vec, v)
        dot = (k_vec * v).sum(-1, keepdims=True)
        rotated = v * cos + cross * sin + k_vec * dot * (1.0 - cos)
        out[:, tor.moving] = rotated + origin[:, None, :]
    return out


def pose_coordinates(beads: LigandBeads, pose: Pose) -> np.ndarray:
    """World coordinates of the ligand atoms under ``pose``."""
    conf = beads.conformers[pose.conformer][None]
    if pose.torsion_angles is not None and beads.n_torsions:
        conf = apply_torsions_batch(
            conf, beads.torsions, pose.torsion_angles[None]
        )
    rot = quaternion_to_matrix(pose.quaternion)
    return conf[0] @ rot.T + pose.translation[None, :]
