"""Ensemble docking across crystal-structure variants.

§7.1.2: "For each target … multiple crystal structures were used to
perform docking and a separate list of top 10,000 compounds … was
generated" per structure.  This module docks a library against every
PDB variant of a target, keeps the per-structure ranked lists, and
reduces to a per-compound consensus (best score over structures — the
standard ensemble-docking reduction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.library import CompoundLibrary
from repro.docking.engine import DockingEngine, DockingResult
from repro.docking.lga import LGAConfig
from repro.docking.receptor import TARGETS, make_receptor

__all__ = ["EnsembleDockingResult", "dock_against_ensemble"]


@dataclass
class EnsembleDockingResult:
    """Docking outcomes across a receptor ensemble."""

    target: str
    pdb_ids: list[str]
    per_structure: dict[str, list[DockingResult]]  # pdb id → results
    consensus: dict[str, float] = field(default_factory=dict)  # compound → best

    def best_structure_for(self, compound_id: str) -> str:
        """Which crystal structure gave the compound its best score."""
        best_pdb, best = None, np.inf
        for pdb, results in self.per_structure.items():
            for r in results:
                if r.compound_id == compound_id and r.score < best:
                    best, best_pdb = r.score, pdb
        if best_pdb is None:
            raise KeyError(f"compound {compound_id} not docked")
        return best_pdb

    def top_compounds(self, k: int) -> list[str]:
        """The ``k`` best compounds by consensus score."""
        ranked = sorted(self.consensus, key=self.consensus.get)
        return ranked[:k]


def dock_against_ensemble(
    target: str,
    library: CompoundLibrary,
    pdb_ids: list[str] | None = None,
    seed: int = 0,
    receptor_seed: int = 2021,
    config: LGAConfig | None = None,
) -> EnsembleDockingResult:
    """Dock every library member against every structure of ``target``.

    Per-compound determinism is preserved per structure (each engine
    keys its RNG streams by receptor identity and compound id).
    """
    pdb_ids = list(pdb_ids) if pdb_ids is not None else list(TARGETS[target])
    if not pdb_ids:
        raise ValueError("need at least one PDB id")
    per_structure: dict[str, list[DockingResult]] = {}
    for pdb in pdb_ids:
        receptor = make_receptor(target, pdb, seed=receptor_seed)
        engine = DockingEngine(receptor, seed=seed, config=config)
        per_structure[pdb] = engine.dock_library(library)
    consensus: dict[str, float] = {}
    for results in per_structure.values():
        for r in results:
            prev = consensus.get(r.compound_id, np.inf)
            consensus[r.compound_id] = min(prev, r.score)
    return EnsembleDockingResult(
        target=target,
        pdb_ids=pdb_ids,
        per_structure=per_structure,
        consensus=consensus,
    )
