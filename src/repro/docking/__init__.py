"""S1 — high-throughput docking substrate (the AutoDock-GPU role).

Grid-based receptor scoring + Lamarckian genetic algorithm with both
Solis–Wets and gradient-based ADADELTA local search (§5.1.1).
"""

from repro.docking.engine import DockingEngine, DockingResult
from repro.docking.ensemble import EnsembleDockingResult, dock_against_ensemble
from repro.docking.lga import DockingRun, LamarckianGA, LGAConfig
from repro.docking.ligand import (
    LigandBeads,
    Pose,
    Torsion,
    find_torsions,
    prepare_ligand,
)
from repro.docking.local_search import Adadelta, LocalSearchResult, SolisWets
from repro.docking.receptor import TARGETS, PocketSite, Receptor, make_receptor
from repro.docking.scoring import ScoreBreakdown, score_and_gradient, score_pose

__all__ = [
    "Adadelta",
    "DockingEngine",
    "DockingResult",
    "DockingRun",
    "EnsembleDockingResult",
    "dock_against_ensemble",
    "LGAConfig",
    "LamarckianGA",
    "LigandBeads",
    "LocalSearchResult",
    "PocketSite",
    "Pose",
    "Receptor",
    "ScoreBreakdown",
    "SolisWets",
    "TARGETS",
    "Torsion",
    "find_torsions",
    "make_receptor",
    "prepare_ligand",
    "score_and_gradient",
    "score_pose",
]
