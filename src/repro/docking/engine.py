"""Batch docking engine — the S1 stage public API.

Wraps ligand preparation + LGA search behind the interface the campaign
uses: dock one SMILES, or a whole library against one receptor with
receptor reuse (§5.1.1's "receptor-reuse functionality for docking many
ligands to a single receptor").  Evaluation counts are surfaced so the
cost model can convert work into simulated node-hours.

Library docking defaults to the fused multi-ligand path
(:mod:`repro.docking.batch`): the shard's ligands are packed into padded
struct-of-arrays and the whole LGA runs over ``n_ligands × population``
poses per kernel call.  Because every ligand's randomness still comes
from its own per-compound stream, ``batched=True`` and ``batched=False``
produce bit-identical results — the flag only changes throughput.
Ligand preparation is cached per compound (prep is deterministic given
the compound's stream), shared by docking and :meth:`pose_coordinates`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.library import CompoundLibrary
from repro.chem.smiles import parse_smiles
from repro.docking.lga import DockingRun, LamarckianGA, LGAConfig
from repro.docking.ligand import LigandBeads, prepare_ligand
from repro.docking.receptor import Receptor
from repro.telemetry import NULL_TRACER, Tracer
from repro.util.rng import RngFactory

__all__ = ["DockingEngine", "DockingResult"]


@dataclass(frozen=True)
class DockingResult:
    """Docking outcome for one compound."""

    compound_id: str
    smiles: str
    score: float  # kcal/mol-like, lower is better
    n_evals: int
    pose_translation: tuple[float, float, float]
    pose_quaternion: tuple[float, float, float, float]
    conformer: int
    torsion_angles: tuple = ()  # rotatable-bond genes (radians)


class DockingEngine:
    """Dock compounds against one receptor.

    Parameters
    ----------
    receptor:
        Target pocket (grids are computed once and reused per ligand).
    seed:
        Root seed; per-ligand streams derive from compound ids, so docking
        the same compound twice gives identical results regardless of batch
        composition or ordering.
    local_search:
        ``"adadelta"`` (default, better quality) or ``"solis-wets"``.
    """

    def __init__(
        self,
        receptor: Receptor,
        seed: int = 0,
        config: LGAConfig | None = None,
        local_search: str = "adadelta",
        n_conformers: int = 3,
        tracer: Tracer | None = None,
    ) -> None:
        self.receptor = receptor
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.rng_factory = RngFactory(
            seed, prefix=f"docking/{receptor.target}/{receptor.pdb_id}"
        )
        self.ga = LamarckianGA(config=config, local_search=local_search)
        self._local_search = local_search
        self.n_conformers = n_conformers
        self.total_evals = 0
        self.total_ligands = 0
        #: per-compound prepared beads, keyed by compound id (or SMILES);
        #: prep is deterministic given the compound's stream, so caching
        #: is transparent — it only removes repeated SMILES parsing and
        #: conformer generation
        self._prep_cache: dict[str, LigandBeads] = {}

    # ------------------------------------------------------------------ prep

    def _prepared(self, smiles: str, compound_id: str = "") -> LigandBeads:
        """Prepared beads for a compound, via the per-compound cache."""
        key = compound_id or smiles
        beads = self._prep_cache.get(key)
        if beads is None:
            mol = parse_smiles(smiles)
            prep_rng = self.rng_factory.stream(f"prep/{key}")
            beads = prepare_ligand(mol, prep_rng, n_conformers=self.n_conformers)
            self._prep_cache[key] = beads
        return beads

    def _to_result(
        self, smiles: str, compound_id: str, run: DockingRun
    ) -> DockingResult:
        """Shared DockingRun → DockingResult conversion."""
        return DockingResult(
            compound_id=compound_id,
            smiles=smiles,
            score=run.best_score,
            n_evals=run.n_evals,
            pose_translation=tuple(run.best_pose.translation),
            pose_quaternion=tuple(run.best_pose.quaternion),
            conformer=run.best_pose.conformer,
            torsion_angles=(
                ()
                if run.best_pose.torsion_angles is None
                else tuple(run.best_pose.torsion_angles)
            ),
        )

    # --------------------------------------------------------------- docking

    def dock_smiles(self, smiles: str, compound_id: str = "") -> DockingResult:
        """Dock a single compound given as SMILES."""
        key = compound_id or smiles
        beads = self._prepared(smiles, compound_id)
        with self.tracer.span(f"dock:{key}", category="docking", compound=key):
            run: DockingRun = self.ga.dock(
                self.receptor, beads, self.rng_factory.stream(f"lga/{key}")
            )
        self.total_evals += run.n_evals
        self.total_ligands += 1
        self.tracer.metrics.counter("docking.evals").inc(run.n_evals)
        self.tracer.metrics.counter("docking.ligands").inc()
        return self._to_result(smiles, compound_id, run)

    def dock_entries(
        self, entries: list[tuple[str, str]], batched: bool = True
    ) -> list[DockingResult]:
        """Dock ``(smiles, compound_id)`` pairs; pure, counters untouched.

        This is the worker-safe core shared by :meth:`dock_library` and
        the RAPTOR shard path (:func:`repro.rct.raptor.dock_library_raptor`):
        it never mutates engine counters, so shards may run concurrently
        and be merged by the caller.  With ``batched=True`` the whole
        shard runs through one fused LGA
        (:func:`repro.docking.batch.dock_shard`); results are
        bit-identical either way.
        """
        if not entries:
            return []
        if not batched:
            results = []
            for smiles, compound_id in entries:
                key = compound_id or smiles
                beads = self._prepared(smiles, compound_id)
                run = self.ga.dock(
                    self.receptor, beads, self.rng_factory.stream(f"lga/{key}")
                )
                results.append(self._to_result(smiles, compound_id, run))
            return results
        from repro.docking.batch import dock_shard

        beads_list = [self._prepared(s, cid) for s, cid in entries]
        rngs = [
            self.rng_factory.stream(f"lga/{cid or s}") for s, cid in entries
        ]
        runs = dock_shard(
            self.receptor,
            beads_list,
            rngs,
            config=self.ga.config,
            local_search=self._local_search,
            tracer=self.tracer,
        )
        return [
            self._to_result(smiles, compound_id, run)
            for (smiles, compound_id), run in zip(entries, runs)
        ]

    def dock_library(
        self,
        library: CompoundLibrary,
        limit: int | None = None,
        batched: bool = True,
    ) -> list[DockingResult]:
        """Dock every library member (or the first ``limit``).

        ``batched=True`` (default) fuses the shard through one
        multi-ligand LGA; ``batched=False`` keeps the sequential
        per-ligand loop.  Results and ``n_evals`` are bit-identical
        across both.  The RAPTOR overlay (``repro.rct.raptor``)
        parallelizes this same call by sharding the library across
        workers.
        """
        n = len(library) if limit is None else min(limit, len(library))
        entries = [
            (library[i].smiles, library[i].compound_id) for i in range(n)
        ]
        results = self.dock_entries(entries, batched=batched)
        for r in results:
            self.total_evals += r.n_evals
            self.total_ligands += 1
        if results:
            self.tracer.metrics.counter("docking.evals").inc(
                sum(r.n_evals for r in results)
            )
            self.tracer.metrics.counter("docking.ligands").inc(len(results))
        return results

    def pose_coordinates(self, result: DockingResult) -> np.ndarray:
        """World coordinates of a result's best pose.

        Uses the per-compound prep cache (same beads the score was
        computed on; rebuilt from the compound's own stream on a cache
        miss), so repeated calls no longer re-parse the SMILES and re-run
        conformer generation — this is what the S3 stages take as their
        starting structure.
        """
        from repro.docking.scoring import batch_pose_coordinates

        beads = self._prepared(result.smiles, result.compound_id)
        torsions = (
            np.array(result.torsion_angles)[None]
            if result.torsion_angles
            else None
        )
        return batch_pose_coordinates(
            beads,
            np.array([result.conformer]),
            np.array(result.pose_translation)[None],
            np.array(result.pose_quaternion)[None],
            torsions,
        )[0]

    @staticmethod
    def rank(results: list[DockingResult]) -> list[DockingResult]:
        """Results sorted best (lowest score) first."""
        return sorted(results, key=lambda r: r.score)

    @staticmethod
    def top_fraction(
        results: list[DockingResult], fraction: float
    ) -> list[DockingResult]:
        """Best ``fraction`` of results — the S1→S3 filtering step."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        ranked = DockingEngine.rank(results)
        k = max(1, int(round(fraction * len(ranked))))
        return ranked[:k]
