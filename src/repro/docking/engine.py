"""Batch docking engine — the S1 stage public API.

Wraps ligand preparation + LGA search behind the interface the campaign
uses: dock one SMILES, or a whole library against one receptor with
receptor reuse (§5.1.1's "receptor-reuse functionality for docking many
ligands to a single receptor").  Evaluation counts are surfaced so the
cost model can convert work into simulated node-hours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.library import CompoundLibrary
from repro.chem.smiles import parse_smiles
from repro.docking.lga import DockingRun, LamarckianGA, LGAConfig
from repro.docking.ligand import prepare_ligand
from repro.docking.receptor import Receptor
from repro.util.rng import RngFactory

__all__ = ["DockingEngine", "DockingResult"]


@dataclass(frozen=True)
class DockingResult:
    """Docking outcome for one compound."""

    compound_id: str
    smiles: str
    score: float  # kcal/mol-like, lower is better
    n_evals: int
    pose_translation: tuple[float, float, float]
    pose_quaternion: tuple[float, float, float, float]
    conformer: int
    torsion_angles: tuple = ()  # rotatable-bond genes (radians)


class DockingEngine:
    """Dock compounds against one receptor.

    Parameters
    ----------
    receptor:
        Target pocket (grids are computed once and reused per ligand).
    seed:
        Root seed; per-ligand streams derive from compound ids, so docking
        the same compound twice gives identical results regardless of batch
        composition or ordering.
    local_search:
        ``"adadelta"`` (default, better quality) or ``"solis-wets"``.
    """

    def __init__(
        self,
        receptor: Receptor,
        seed: int = 0,
        config: LGAConfig | None = None,
        local_search: str = "adadelta",
        n_conformers: int = 3,
    ) -> None:
        self.receptor = receptor
        self.rng_factory = RngFactory(
            seed, prefix=f"docking/{receptor.target}/{receptor.pdb_id}"
        )
        self.ga = LamarckianGA(config=config, local_search=local_search)
        self.n_conformers = n_conformers
        self.total_evals = 0
        self.total_ligands = 0

    def dock_smiles(self, smiles: str, compound_id: str = "") -> DockingResult:
        """Dock a single compound given as SMILES."""
        mol = parse_smiles(smiles)
        key = compound_id or smiles
        prep_rng = self.rng_factory.stream(f"prep/{key}")
        beads = prepare_ligand(mol, prep_rng, n_conformers=self.n_conformers)
        run: DockingRun = self.ga.dock(
            self.receptor, beads, self.rng_factory.stream(f"lga/{key}")
        )
        self.total_evals += run.n_evals
        self.total_ligands += 1
        return DockingResult(
            compound_id=compound_id,
            smiles=smiles,
            score=run.best_score,
            n_evals=run.n_evals,
            pose_translation=tuple(run.best_pose.translation),
            pose_quaternion=tuple(run.best_pose.quaternion),
            conformer=run.best_pose.conformer,
            torsion_angles=(
                ()
                if run.best_pose.torsion_angles is None
                else tuple(run.best_pose.torsion_angles)
            ),
        )

    def dock_library(
        self, library: CompoundLibrary, limit: int | None = None
    ) -> list[DockingResult]:
        """Dock every library member (or the first ``limit``) sequentially.

        The RAPTOR overlay (``repro.rct.raptor``) parallelizes this same
        call by sharding the library across workers.
        """
        n = len(library) if limit is None else min(limit, len(library))
        return [
            self.dock_smiles(library[i].smiles, library[i].compound_id)
            for i in range(n)
        ]

    def pose_coordinates(self, result: DockingResult) -> np.ndarray:
        """World coordinates of a result's best pose.

        Rebuilds the ligand beads from the same per-compound RNG stream
        used at docking time, so the returned coordinates are exactly
        the pose the reported score was computed on — this is what the
        S3 stages take as their starting structure.
        """
        from repro.docking.scoring import batch_pose_coordinates

        mol = parse_smiles(result.smiles)
        key = result.compound_id or result.smiles
        beads = prepare_ligand(
            mol, self.rng_factory.stream(f"prep/{key}"), n_conformers=self.n_conformers
        )
        torsions = (
            np.array(result.torsion_angles)[None]
            if result.torsion_angles
            else None
        )
        return batch_pose_coordinates(
            beads,
            np.array([result.conformer]),
            np.array(result.pose_translation)[None],
            np.array(result.pose_quaternion)[None],
            torsions,
        )[0]

    @staticmethod
    def rank(results: list[DockingResult]) -> list[DockingResult]:
        """Results sorted best (lowest score) first."""
        return sorted(results, key=lambda r: r.score)

    @staticmethod
    def top_fraction(
        results: list[DockingResult], fraction: float
    ) -> list[DockingResult]:
        """Best ``fraction`` of results — the S1→S3 filtering step."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        ranked = DockingEngine.rank(results)
        k = max(1, int(round(fraction * len(ranked))))
        return ranked[:k]
