"""Ensemble statistics and ranking-reliability analysis.

The paper's core methodological claim for ESMACS (§5.1.3) is that
ensemble averaging turns the irreproducible single-trajectory MMPBSA into
a reliable *ranking* tool.  The functions here quantify that: bootstrap
errors on ensemble means, and the rank-correlation between independent
repeats of the protocol as a function of ensemble size — the ablation
bench's measurement.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = [
    "bootstrap_sem",
    "confidence_interval",
    "ranking_correlation",
    "repeat_reliability",
]


def bootstrap_sem(
    values: np.ndarray, rng: np.random.Generator, n_boot: int = 500
) -> float:
    """Bootstrap standard error of the mean of ``values``."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) < 2:
        raise ValueError("need at least 2 values to bootstrap")
    idx = rng.integers(len(values), size=(n_boot, len(values)))
    means = values[idx].mean(axis=1)
    return float(means.std(ddof=1))


def confidence_interval(
    values: np.ndarray,
    rng: np.random.Generator,
    level: float = 0.95,
    n_boot: int = 500,
) -> tuple[float, float]:
    """Bootstrap percentile CI for the mean of ``values``."""
    if not 0 < level < 1:
        raise ValueError("level must be in (0, 1)")
    values = np.asarray(values, dtype=np.float64)
    if len(values) < 2:
        raise ValueError("need at least 2 values")
    idx = rng.integers(len(values), size=(n_boot, len(values)))
    means = values[idx].mean(axis=1)
    alpha = (1 - level) / 2
    return (
        float(np.percentile(means, 100 * alpha)),
        float(np.percentile(means, 100 * (1 - alpha))),
    )


def ranking_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation between two score vectors."""
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("inputs must be 1-D and equally sized")
    if len(a) < 3:
        raise ValueError("need at least 3 compounds to rank")
    rho, _ = stats.spearmanr(a, b)
    return float(rho)


def repeat_reliability(
    replica_dgs_per_compound: list[np.ndarray],
    ensemble_size: int,
    rng: np.random.Generator,
    n_repeats: int = 20,
) -> float:
    """Expected rank-correlation between two independent ESMACS repeats.

    Given each compound's pool of replica ΔG values, draw two disjoint
    ensembles of ``ensemble_size`` replicas per compound, average each,
    and rank-correlate the two resulting compound rankings; repeat and
    average.  Larger ensembles → higher correlation is the §5.1.3 claim.
    """
    if ensemble_size < 1:
        raise ValueError("ensemble_size must be >= 1")
    for pool in replica_dgs_per_compound:
        if len(pool) < 2 * ensemble_size:
            raise ValueError(
                "each compound needs >= 2*ensemble_size replicas "
                f"(got {len(pool)}, need {2 * ensemble_size})"
            )
    correlations = []
    for _ in range(n_repeats):
        first, second = [], []
        for pool in replica_dgs_per_compound:
            perm = rng.permutation(len(pool))
            first.append(pool[perm[:ensemble_size]].mean())
            second.append(pool[perm[ensemble_size : 2 * ensemble_size]].mean())
        correlations.append(ranking_correlation(np.array(first), np.array(second)))
    return float(np.mean(correlations))
