"""MMPBSA-style binding free-energy estimator.

The paper's ESMACS uses MMPBSA: the molecular-mechanics protein–ligand
interaction energy plus an implicit-solvent correction.  Our bead-model
analogue keeps that structure:

``ΔG(frame) = α·E_inter(frame) + Σ_i buried_i · (c_pol·|q_i| − c_hyd·h_i)``

where ``buried_i`` is each ligand bead's degree of burial (from protein
neighbour counts), so burying polar beads costs and burying greasy beads
pays — the physics the PB/SA surface term encodes.  Like its namesake,
single-frame estimates are noisy and absolute values are large compared
to the differences that matter, which is exactly why ESMACS averages over
replica ensembles (§5.1.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.forcefield import ForceField
from repro.md.system import Topology
from repro.util.config import FrozenConfig, validate_positive

__all__ = ["BindingEstimator"]


@dataclass(frozen=True)
class BindingEstimator(FrozenConfig):
    """Per-frame binding free-energy estimator (kcal/mol)."""

    interaction_scale: float = 5.0  # α — calibrated so CG ΔG spans the
    # paper's Fig 5A range (≈ −60 … +20 kcal/mol) at typical LPC sizes
    polar_burial_cost: float = 8.0  # c_pol, per unit |charge|
    hydrophobic_burial_gain: float = 4.0  # c_hyd, per unit hydrophobicity
    burial_cutoff: float = 6.0  # angstrom neighbour shell
    burial_saturation: int = 8  # neighbours for full burial

    def __post_init__(self) -> None:
        validate_positive("interaction_scale", self.interaction_scale)
        validate_positive("burial_cutoff", self.burial_cutoff)
        validate_positive("burial_saturation", self.burial_saturation)

    def burial(self, topology: Topology, positions: np.ndarray) -> np.ndarray:
        """Degree of burial per ligand bead, in [0, 1]."""
        p = positions[topology.protein_atoms]
        l = positions[topology.ligand_atoms]
        d2 = ((l[:, None, :] - p[None, :, :]) ** 2).sum(-1)
        neighbours = (d2 < self.burial_cutoff**2).sum(axis=1)
        return np.minimum(neighbours / self.burial_saturation, 1.0)

    def estimate_frame(
        self, forcefield: ForceField, topology: Topology, positions: np.ndarray
    ) -> float:
        """ΔG estimate for one frame (kcal/mol, lower = tighter binding)."""
        e_inter = forcefield.interaction_energy(topology, positions)
        buried = self.burial(topology, positions)
        q = np.abs(topology.charges[topology.ligand_atoms])
        h = topology.hydro[topology.ligand_atoms]
        solv = float(
            (
                buried
                * (self.polar_burial_cost * q - self.hydrophobic_burial_gain * h)
            ).sum()
        )
        return self.interaction_scale * e_inter + solv

    def estimate_trajectory(
        self,
        forcefield: ForceField,
        topology: Topology,
        frames: np.ndarray,
    ) -> np.ndarray:
        """Per-frame ΔG estimates for a (T, n, 3) frame stack."""
        return np.array(
            [self.estimate_frame(forcefield, topology, f) for f in frames]
        )
