"""ESMACS protocol: ensemble MD binding-affinity estimation (S3).

ESMACS runs an *ensemble* of independent replica simulations per
protein–ligand complex and averages the MMPBSA estimates — the paper's
answer to the irreproducibility of single-trajectory MMPBSA (§5.1.3).
Two presets mirror the paper exactly:

* **CG** (coarse-grained): 6 replicas, 1 ns equilibration, 4 ns production
* **FG** (fine-grained): 24 replicas, 2 ns equilibration, 10 ns production

The computational cost ratio (~10×) matches Table 2's 0.5 vs 5
node-hours per ligand.  Nanoseconds are mapped to integration steps
through ``steps_per_ns``, the scaled-down knob that makes a laptop
reproduction feasible; all *relative* durations are faithful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.mol import Molecule
from repro.docking.receptor import Receptor
from repro.esmacs.mmpbsa import BindingEstimator
from repro.md.builder import build_lpc
from repro.md.forcefield import ForceField
from repro.md.integrator import Langevin
from repro.md.minimize import minimize
from repro.md.system import MDSystem
from repro.md.trajectory import Trajectory, simulate
from repro.util.config import FrozenConfig, validate_positive
from repro.util.rng import RngFactory

__all__ = ["EsmacsConfig", "EsmacsResult", "EsmacsRunner", "CG", "FG"]


@dataclass(frozen=True)
class EsmacsConfig(FrozenConfig):
    """Protocol parameters (paper values for replicas and durations)."""

    replicas: int
    equilibration_ns: float
    production_ns: float
    steps_per_ns: int = 30  # scaled-down ns → step mapping
    timestep_ps: float = 0.01
    temperature: float = 300.0
    record_every: int = 4
    minimize_iterations: int = 40
    n_residues: int = 150

    def __post_init__(self) -> None:
        validate_positive("replicas", self.replicas)
        validate_positive("equilibration_ns", self.equilibration_ns)
        validate_positive("production_ns", self.production_ns)
        validate_positive("steps_per_ns", self.steps_per_ns)
        validate_positive("n_residues", self.n_residues)

    @property
    def equilibration_steps(self) -> int:
        """Equilibration duration in integration steps."""
        return max(1, round(self.equilibration_ns * self.steps_per_ns))

    @property
    def production_steps(self) -> int:
        """Production duration in integration steps."""
        return max(1, round(self.production_ns * self.steps_per_ns))


#: paper presets (§3.2: "6 vs. 24 replicas, 1 vs 2 ns equilibration,
#: 4 vs 10 ns simulation")
CG = EsmacsConfig(replicas=6, equilibration_ns=1.0, production_ns=4.0)
FG = EsmacsConfig(replicas=24, equilibration_ns=2.0, production_ns=10.0)


@dataclass
class EsmacsResult:
    """Ensemble binding-affinity result for one compound."""

    compound_id: str
    replica_dgs: np.ndarray  # (replicas,) per-replica ΔG means
    binding_free_energy: float  # ensemble mean (kcal/mol)
    sem: float  # standard error over replicas
    trajectories: list[Trajectory] = field(repr=False, default_factory=list)
    protein_atoms: np.ndarray | None = field(repr=False, default=None)
    md_steps: int = 0  # total integration steps (cost accounting)

    @property
    def n_replicas(self) -> int:
        """Ensemble size of this result."""
        return len(self.replica_dgs)


class EsmacsRunner:
    """Run the ESMACS protocol for compounds against one receptor."""

    def __init__(
        self,
        receptor: Receptor,
        config: EsmacsConfig = CG,
        forcefield: ForceField | None = None,
        estimator: BindingEstimator | None = None,
        seed: int = 0,
    ) -> None:
        self.receptor = receptor
        self.config = config
        self.forcefield = forcefield or ForceField()
        self.estimator = estimator or BindingEstimator()
        self.factory = RngFactory(
            seed, prefix=f"esmacs/{receptor.target}/{receptor.pdb_id}"
        )

    # ----------------------------------------------------------- replicas
    def _run_replica(
        self,
        molecule: Molecule,
        ligand_coords: np.ndarray,
        compound_id: str,
        replica: int,
        keep_trajectory: bool,
    ) -> tuple[float, Trajectory | None, MDSystem, int]:
        cfg = self.config
        rng = self.factory.stream(f"{compound_id}/replica-{replica}")
        # replica diversity: jitter the starting ligand pose slightly
        jitter = rng.normal(scale=0.15, size=ligand_coords.shape)
        system = build_lpc(
            self.receptor,
            molecule,
            ligand_coords + jitter,
            seed=self.factory.seed,
            n_residues=cfg.n_residues,
        )
        minimize(system, self.forcefield, max_iterations=cfg.minimize_iterations)
        system.initialize_velocities(cfg.temperature, rng)
        integrator = Langevin(
            timestep=cfg.timestep_ps, temperature=cfg.temperature
        )
        # equilibration: advance without recording
        integrator.run(system, self.forcefield, cfg.equilibration_steps, rng)
        traj = simulate(
            system,
            self.forcefield,
            integrator,
            cfg.production_steps,
            rng,
            record_every=cfg.record_every,
        )
        dgs = self.estimator.estimate_trajectory(
            self.forcefield, system.topology, traj.frames
        )
        steps = cfg.equilibration_steps + cfg.production_steps
        return (
            float(dgs.mean()),
            traj if keep_trajectory else None,
            system,
            steps,
        )

    # ---------------------------------------------------------------- runs
    def run(
        self,
        molecule: Molecule,
        ligand_coords: np.ndarray,
        compound_id: str = "",
        keep_trajectories: bool = True,
    ) -> EsmacsResult:
        """ESMACS for one compound starting from ``ligand_coords``."""
        replica_dgs = []
        trajectories: list[Trajectory] = []
        protein_atoms = None
        total_steps = 0
        for r in range(self.config.replicas):
            dg, traj, system, steps = self._run_replica(
                molecule, ligand_coords, compound_id, r, keep_trajectories
            )
            replica_dgs.append(dg)
            total_steps += steps
            if traj is not None:
                trajectories.append(traj)
            protein_atoms = system.topology.protein_atoms
        replica_dgs = np.array(replica_dgs)
        n = len(replica_dgs)
        sem = float(replica_dgs.std(ddof=1) / np.sqrt(n)) if n > 1 else 0.0
        return EsmacsResult(
            compound_id=compound_id,
            replica_dgs=replica_dgs,
            binding_free_energy=float(replica_dgs.mean()),
            sem=sem,
            trajectories=trajectories,
            protein_atoms=protein_atoms,
            md_steps=total_steps,
        )
