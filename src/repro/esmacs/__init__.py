"""S3 — ESMACS ensemble binding free-energy protocol (CG and FG)."""

from repro.esmacs.analysis import (
    bootstrap_sem,
    confidence_interval,
    ranking_correlation,
    repeat_reliability,
)
from repro.esmacs.mmpbsa import BindingEstimator
from repro.esmacs.protocol import CG, FG, EsmacsConfig, EsmacsResult, EsmacsRunner

__all__ = [
    "BindingEstimator",
    "CG",
    "EsmacsConfig",
    "EsmacsResult",
    "EsmacsRunner",
    "FG",
    "bootstrap_sem",
    "confidence_interval",
    "ranking_correlation",
    "repeat_reliability",
]
