"""S2 — DeepDriveMD: AI-driven adaptive sampling over LPC ensembles.

3D adversarial autoencoder (PointNet encoder, Chamfer reconstruction,
WGAN-GP latent prior), LOF outlier selection, t-SNE visualization, and
the adaptive driver that filters S3-CG output into S3-FG input.
"""

from repro.ddmd.aae import AAE, AAEConfig, AAEHistory, train_aae
from repro.ddmd.cmvae import CMVAEConfig, ContactMapVAE, contact_map
from repro.ddmd.adaptive import AdaptiveConfig, S2Result, Selection, run_s2
from repro.ddmd.driver import (
    AdaptiveSampler,
    AdaptiveSamplingConfig,
    AdaptiveSamplingResult,
)
from repro.ddmd.lof import lof_scores, top_outliers
from repro.ddmd.pointcloud import PointCloudDataset, build_dataset, normalize_cloud
from repro.ddmd.sweep import SweepResult, sweep_aae
from repro.ddmd.tsne import tsne

__all__ = [
    "AAE",
    "AAEConfig",
    "AAEHistory",
    "AdaptiveConfig",
    "AdaptiveSampler",
    "AdaptiveSamplingConfig",
    "AdaptiveSamplingResult",
    "CMVAEConfig",
    "ContactMapVAE",
    "PointCloudDataset",
    "contact_map",
    "S2Result",
    "Selection",
    "SweepResult",
    "build_dataset",
    "sweep_aae",
    "lof_scores",
    "normalize_cloud",
    "run_s2",
    "top_outliers",
    "train_aae",
    "tsne",
]
