"""t-SNE — exact implementation for latent-space visualization (Fig 5C).

Van der Maaten & Hinton (2008): Gaussian affinities with per-point
perplexity calibration by binary search, Student-t low-dimensional
kernel, KL-divergence gradient descent with momentum and early
exaggeration.  Exact O(N²) — the latent sets here are thousands of
points, where exact beats tree approximations in NumPy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["tsne"]


def _conditional_probabilities(
    d2: np.ndarray, perplexity: float, tol: float = 1e-4, max_iter: int = 50
) -> np.ndarray:
    """Row-wise Gaussian affinities calibrated to ``perplexity``."""
    n = len(d2)
    p = np.zeros((n, n))
    target_entropy = np.log(perplexity)
    for i in range(n):  # repro: disable=vectorization -- per-row bisection recurrence
        lo, hi = 1e-20, 1e20
        beta = 1.0
        row = d2[i].copy()
        row[i] = np.inf
        for _ in range(max_iter):
            expd = np.exp(-row * beta)
            total = expd.sum()
            if total <= 0:
                beta /= 2
                continue
            prob = expd / total
            # Shannon entropy of the row
            nz = prob > 1e-12
            entropy = -(prob[nz] * np.log(prob[nz])).sum()
            if abs(entropy - target_entropy) < tol:
                break
            if entropy > target_entropy:
                lo = beta
                beta = beta * 2 if hi >= 1e20 else (beta + hi) / 2
            else:
                hi = beta
                beta = beta / 2 if lo <= 1e-20 else (beta + lo) / 2
        p[i] = prob
    return p


def tsne(
    points: np.ndarray,
    n_components: int = 2,
    perplexity: float = 20.0,
    n_iter: int = 300,
    learning_rate: float = 100.0,
    seed: int = 0,
    early_exaggeration: float = 4.0,
) -> np.ndarray:
    """Embed (N, d) points into (N, n_components)."""
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if n < 5:
        raise ValueError("t-SNE needs at least 5 points")
    perplexity = min(perplexity, (n - 1) / 3.0)

    d2 = ((points[:, None, :] - points[None, :, :]) ** 2).sum(-1)
    p_cond = _conditional_probabilities(d2, perplexity)
    p = (p_cond + p_cond.T) / (2.0 * n)
    p = np.maximum(p, 1e-12)

    rng = np.random.default_rng(seed)
    y = rng.normal(scale=1e-4, size=(n, n_components))
    velocity = np.zeros_like(y)
    exaggeration_until = n_iter // 4

    for it in range(n_iter):
        pp = p * early_exaggeration if it < exaggeration_until else p
        diff = y[:, None, :] - y[None, :, :]
        dist2 = (diff**2).sum(-1)
        q_num = 1.0 / (1.0 + dist2)
        np.fill_diagonal(q_num, 0.0)
        q = np.maximum(q_num / q_num.sum(), 1e-12)
        # gradient of KL(P || Q)
        coef = (pp - q) * q_num
        grad = 4.0 * (coef[..., None] * diff).sum(axis=1)
        momentum = 0.5 if it < exaggeration_until else 0.8
        velocity = momentum * velocity - learning_rate * grad
        y = y + velocity
        y = y - y.mean(axis=0)
    return y
