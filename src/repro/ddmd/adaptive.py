"""The S2 stage driver: AI-driven conformational filtering.

Implements the (S3-CG) → S2 → (S3-FG) hand-off of §7.1.3–7.1.4:

1. aggregate S3-CG trajectories into a protein point-cloud dataset,
2. train the 3D-AAE on the aggregate,
3. embed every conformation into the latent manifold,
4. rank compounds by their CG binding free energy, take the best few,
5. within each, pick LOF outlier conformations (weighted toward frames
   with high protein–ligand contact counts — the paper's LPC-stability
   filter),
6. emit restartable (compound, replica, frame) selections for S3-FG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ddmd.aae import AAE, AAEConfig
from repro.ddmd.lof import lof_scores
from repro.ddmd.pointcloud import PointCloudDataset, build_dataset
from repro.esmacs.protocol import EsmacsResult
from repro.util.config import FrozenConfig, validate_positive

__all__ = ["AdaptiveConfig", "Selection", "S2Result", "run_s2"]


@dataclass(frozen=True)
class AdaptiveConfig(FrozenConfig):
    """S2 selection parameters (paper: top 5 compounds × 5 outliers)."""

    top_compounds: int = 5
    outliers_per_compound: int = 5
    lof_neighbors: int = 10
    contact_weight: float = 0.5  # how much LPC stability biases selection
    aae: AAEConfig = AAEConfig()

    def __post_init__(self) -> None:
        validate_positive("top_compounds", self.top_compounds)
        validate_positive("outliers_per_compound", self.outliers_per_compound)
        validate_positive("lof_neighbors", self.lof_neighbors)


@dataclass(frozen=True)
class Selection:
    """One conformation chosen for S3-FG."""

    compound_id: str
    replica: int
    frame: int
    lof_score: float
    contacts: int
    coordinates: np.ndarray = field(repr=False)  # full-system frame


@dataclass
class S2Result:
    """Everything S2 produces."""

    model: AAE
    dataset: PointCloudDataset
    embeddings: np.ndarray  # (N, latent)
    lof: np.ndarray  # (N,)
    selections: list[Selection]
    top_compound_ids: list[str]


def run_s2(
    esmacs_results: list[EsmacsResult],
    reference_protein: np.ndarray,
    ligand_atoms_by_compound: dict[str, np.ndarray],
    config: AdaptiveConfig | None = None,
    seed: int = 0,
) -> S2Result:
    """Run the full S2 stage over a batch of S3-CG results.

    Parameters
    ----------
    esmacs_results:
        CG results *with trajectories retained*.
    reference_protein:
        Native protein coordinates (for RMSD labels).
    ligand_atoms_by_compound:
        Ligand bead indices per compound (ligand sizes differ).
    """
    config = config or AdaptiveConfig()
    with_traj = [r for r in esmacs_results if r.trajectories]
    if not with_traj:
        raise ValueError("S2 needs ESMACS results with trajectories")

    # 1. aggregate — ligand sizes differ per compound, so datasets are
    # built per compound and concatenated on the shared protein clouds
    datasets = []
    for r in with_traj:
        datasets.append(
            build_dataset(
                {r.compound_id: r.trajectories},
                protein_atoms=r.protein_atoms,
                ligand_atoms=ligand_atoms_by_compound[r.compound_id],
                reference=reference_protein,
            )
        )
    dataset = PointCloudDataset(
        clouds=np.concatenate([d.clouds for d in datasets]),
        provenance=[p for d in datasets for p in d.provenance],
        rmsd=np.concatenate([d.rmsd for d in datasets]),
        contacts=np.concatenate([d.contacts for d in datasets]),
        interaction_energies=np.concatenate(
            [d.interaction_energies for d in datasets]
        ),
    )

    # 2. train the 3D-AAE on every conformation
    model = AAE(config.aae, n_points=dataset.clouds.shape[1], seed=seed)
    model.fit(dataset.clouds)

    # 3. latent embeddings + LOF over the whole manifold
    embeddings = model.embed(dataset.clouds)
    lof = lof_scores(embeddings, k=min(config.lof_neighbors, len(embeddings) - 1))

    # 4. best compounds by CG binding free energy
    ranked = sorted(with_traj, key=lambda r: r.binding_free_energy)
    top = ranked[: config.top_compounds]
    top_ids = [r.compound_id for r in top]

    # 5-6. per compound: outlier conformations, stability-weighted
    selections: list[Selection] = []
    compound_rows = {cid: [] for cid in top_ids}
    for i, prov in enumerate(dataset.provenance):
        if prov.compound_id in compound_rows:
            compound_rows[prov.compound_id].append(i)
    results_by_id = {r.compound_id: r for r in with_traj}
    max_contacts = max(1, int(dataset.contacts.max()))
    for cid in top_ids:
        rows = np.array(compound_rows[cid])
        if not len(rows):
            continue
        stability = dataset.contacts[rows] / max_contacts
        score = lof[rows] * (1.0 + config.contact_weight * stability)
        order = rows[np.argsort(-score, kind="stable")]
        for i in order[: config.outliers_per_compound]:
            prov = dataset.provenance[i]
            traj = results_by_id[cid].trajectories[prov.replica]
            selections.append(
                Selection(
                    compound_id=cid,
                    replica=prov.replica,
                    frame=prov.frame,
                    lof_score=float(lof[i]),
                    contacts=int(dataset.contacts[i]),
                    coordinates=traj.frames[prov.frame].copy(),
                )
            )
    return S2Result(
        model=model,
        dataset=dataset,
        embeddings=embeddings,
        lof=lof,
        selections=selections,
        top_compound_ids=top_ids,
    )
