"""Local Outlier Factor (LOF) detection — from scratch.

§5.1.4: "From this latent manifold, we use local outlier factor (LOF)
detection to identify 'interesting' protein-ligand complexes that are
then selected for S3-FG simulations."  Standard Breunig et al. (2000)
definition: reachability distances → local reachability density → LOF as
the ratio of neighbour densities to own density.  Scores ≈ 1 are inliers;
larger values are outliers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lof_scores", "top_outliers"]


def lof_scores(points: np.ndarray, k: int = 10) -> np.ndarray:
    """LOF score per row of ``points`` (N, d).

    ``k`` is the neighbourhood size; it is clamped to N−1 so small
    datasets still work.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be 2-D (N, d)")
    n = len(points)
    if n < 3:
        raise ValueError("LOF needs at least 3 points")
    k = max(1, min(k, n - 1))

    # pairwise distances
    d = np.sqrt(((points[:, None, :] - points[None, :, :]) ** 2).sum(-1))
    np.fill_diagonal(d, np.inf)

    # k nearest neighbours and k-distance of every point
    knn_idx = np.argpartition(d, k - 1, axis=1)[:, :k]
    rows = np.arange(n)[:, None]
    knn_dist = d[rows, knn_idx]
    k_distance = knn_dist.max(axis=1)

    # reachability distance: reach(a←b) = max(k_distance(b), d(a, b))
    reach = np.maximum(k_distance[knn_idx], knn_dist)

    # local reachability density
    lrd = 1.0 / np.maximum(reach.mean(axis=1), 1e-12)

    # LOF: mean neighbour lrd over own lrd
    return lrd[knn_idx].mean(axis=1) / np.maximum(lrd, 1e-12)


def top_outliers(points: np.ndarray, n_outliers: int, k: int = 10) -> np.ndarray:
    """Indices of the ``n_outliers`` most outlying rows (descending LOF)."""
    if n_outliers < 1:
        raise ValueError("n_outliers must be >= 1")
    scores = lof_scores(points, k=k)
    order = np.argsort(-scores, kind="stable")
    return order[: min(n_outliers, len(points))]
