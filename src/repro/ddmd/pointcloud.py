"""Point-cloud dataset construction from MD trajectories.

§7.1.3: "The point cloud data, representing the coordinates of the 309
backbone Cα atoms of the protein, was randomly split into training (80%)
and validation input (20%)".  We aggregate protein-bead frames from many
compounds' ESMACS trajectories into one normalized dataset, keeping the
provenance (compound, replica, frame) of every example so outlier
selection can map back to a restartable conformation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.trajectory import Trajectory

__all__ = ["PointCloudDataset", "build_dataset", "normalize_cloud"]


def normalize_cloud(coords: np.ndarray) -> np.ndarray:
    """Centre a point cloud and scale to unit RMS radius."""
    centred = coords - coords.mean(axis=0, keepdims=True)
    scale = np.sqrt((centred**2).sum(axis=1).mean())
    return centred / max(scale, 1e-9)


@dataclass
class Provenance:
    """Where one example came from."""

    compound_id: str
    replica: int
    frame: int


@dataclass
class PointCloudDataset:
    """Normalized protein point clouds + provenance + auxiliary labels."""

    clouds: np.ndarray  # (N, n_points, 3), normalized
    provenance: list[Provenance]
    rmsd: np.ndarray  # (N,) RMSD of each frame to its reference
    contacts: np.ndarray  # (N,) protein-ligand contact counts
    interaction_energies: np.ndarray  # (N,)

    def __len__(self) -> int:
        return len(self.clouds)

    def split(
        self, validation_fraction: float, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Random train/validation index split (80/20 in the paper)."""
        if not 0 < validation_fraction < 1:
            raise ValueError("validation_fraction must be in (0, 1)")
        perm = rng.permutation(len(self))
        n_val = max(1, int(round(validation_fraction * len(self))))
        return perm[n_val:], perm[:n_val]


def build_dataset(
    trajectories_by_compound: dict[str, list[Trajectory]],
    protein_atoms: np.ndarray,
    ligand_atoms: np.ndarray,
    reference: np.ndarray,
) -> PointCloudDataset:
    """Aggregate ESMACS trajectories into a point-cloud dataset.

    Parameters
    ----------
    trajectories_by_compound:
        Mapping compound id → that compound's replica trajectories.
    protein_atoms / ligand_atoms:
        Bead index groups (shared across compounds — same receptor fold).
    reference:
        Native protein coordinates for RMSD labels.
    """
    from repro.md.observables import contact_count, kabsch_rmsd

    clouds = []
    provenance = []
    rmsds = []
    contacts = []
    inter = []
    for compound_id, trajs in trajectories_by_compound.items():
        for r, traj in enumerate(trajs):
            for f in range(traj.n_frames):  # repro: disable=vectorization -- ragged frames
                frame = traj.frames[f]
                prot = frame[protein_atoms]
                clouds.append(normalize_cloud(prot))
                provenance.append(Provenance(compound_id, r, f))
                rmsds.append(kabsch_rmsd(prot, reference))
                contacts.append(
                    contact_count(frame, protein_atoms, ligand_atoms)
                )
                inter.append(float(traj.interaction_energies[f]))
    if not clouds:
        raise ValueError("no frames found in the supplied trajectories")
    return PointCloudDataset(
        clouds=np.array(clouds),
        provenance=provenance,
        rmsd=np.array(rmsds),
        contacts=np.array(contacts),
        interaction_energies=np.array(inter),
    )
