"""3D adversarial autoencoder (3D-AAE) for MD conformation analysis.

The architecture of §5.1.4/§7.1.3, scaled to laptop width:

* **encoder** — PointNet: shared per-point MLP, symmetric max-pool over
  points, dense head to a latent code constrained by a Gaussian prior
  (the paper uses σ = 0.2);
* **decoder** — dense layers emitting a point cloud, trained with the
  **Chamfer distance** reconstruction loss (scaled by 0.5, the paper's
  hyper-parameter);
* **critic** — Wasserstein discriminator on latent codes with **gradient
  penalty** (scaled by 10, the paper's value), pulling the aggregate
  posterior toward the prior;
* optimized with **RMSprop**, the paper's optimizer.

Training runs on one of two engines: ``engine="graph"`` (default)
compiles the critic step (including double backward through the
gradient penalty) and the autoencoder step each into a replayed
:class:`~repro.nn.graph.train.TrainStep`; ``engine="eager"`` keeps the
interpreter loop as the oracle.  Both produce bitwise-identical weights,
losses and optimizer state at the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn import autograd as ag
from repro.nn.autograd import Tensor, no_grad
from repro.nn.graph.train import TrainStep
from repro.nn.layers import (
    Dense,
    Module,
    PointwiseDense,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.losses import chamfer_distance, gradient_penalty_at
from repro.nn.optim import RMSprop, grad_norm
from repro.telemetry import NULL_TRACER
from repro.util.config import FrozenConfig, validate_positive, validate_range
from repro.util.rng import RngFactory

__all__ = ["AAEConfig", "AAE", "AAEHistory", "train_aae"]


@dataclass(frozen=True)
class AAEConfig(FrozenConfig):
    """3D-AAE hyper-parameters (paper loss scales; widths scaled down)."""

    latent_dim: int = 16  # paper: 64
    hidden: int = 32
    prior_std: float = 0.2  # paper: Gaussian prior σ=0.2
    reconstruction_scale: float = 0.5  # paper: 0.5
    gradient_penalty_scale: float = 10.0  # paper: 10
    adversarial_scale: float = 0.1
    learning_rate: float = 1e-3  # paper uses 1e-5 at full scale
    epochs: int = 15  # paper: 100
    batch_size: int = 32  # paper: 64
    critic_steps: int = 1
    validation_fraction: float = 0.2  # paper: 80/20 split
    engine: str = "graph"

    def __post_init__(self) -> None:
        if self.engine not in ("graph", "eager"):
            raise ValueError(
                f"engine must be 'graph' or 'eager', got {self.engine!r}"
            )
        validate_positive("latent_dim", self.latent_dim)
        validate_positive("hidden", self.hidden)
        validate_positive("prior_std", self.prior_std)
        validate_positive("learning_rate", self.learning_rate)
        validate_positive("epochs", self.epochs)
        validate_positive("batch_size", self.batch_size)
        validate_range("validation_fraction", self.validation_fraction, 0.0, 0.9)


class PointNetEncoder(Module):
    """Shared per-point MLP + max-pool + dense head → latent code."""

    def __init__(self, config: AAEConfig, n_points: int, rng: np.random.Generator):
        super().__init__()
        h = config.hidden
        self.point_mlp = Sequential(
            PointwiseDense(3, h, rng),
            ReLU(),
            PointwiseDense(h, 2 * h, rng),
            ReLU(),
        )
        self.head = Sequential(
            Dense(2 * h, h, rng), Tanh(), Dense(h, config.latent_dim, rng)
        )

    def forward(self, x: Tensor) -> Tensor:
        """Forward pass."""
        feat = self.point_mlp(x)  # (B, n, 2h)
        pooled = ag.tensor_max(feat, axis=1)  # (B, 2h) — permutation invariant
        return self.head(pooled)


class PointCloudDecoder(Module):
    """Latent code → reconstructed point cloud."""

    def __init__(self, config: AAEConfig, n_points: int, rng: np.random.Generator):
        super().__init__()
        h = config.hidden
        self.n_points = n_points
        self.net = Sequential(
            Dense(config.latent_dim, 2 * h, rng),
            ReLU(),
            Dense(2 * h, 4 * h, rng),
            ReLU(),
            Dense(4 * h, n_points * 3, rng),
        )

    def forward(self, z: Tensor) -> Tensor:
        """Forward pass."""
        flat = self.net(z)
        return ag.reshape(flat, (flat.shape[0], self.n_points, 3))


class LatentCritic(Module):
    """Wasserstein critic on latent codes."""

    def __init__(self, config: AAEConfig, rng: np.random.Generator):
        super().__init__()
        h = config.hidden
        self.net = Sequential(
            Dense(config.latent_dim, h, rng), Tanh(), Dense(h, 1, rng)
        )

    def forward(self, z: Tensor) -> Tensor:
        """Forward pass."""
        return self.net(z)


@dataclass
class AAEHistory:
    """Per-epoch loss curves (the paper's 'training and validation loss
    metrics' measure of S2 learning performance)."""

    train_reconstruction: list[float] = field(default_factory=list)
    train_adversarial: list[float] = field(default_factory=list)
    val_reconstruction: list[float] = field(default_factory=list)


class AAE:
    """The assembled 3D-AAE with its training procedure."""

    def __init__(self, config: AAEConfig, n_points: int, seed: int = 0) -> None:
        self.config = config
        self.n_points = n_points
        factory = RngFactory(seed, prefix="ddmd/aae")
        self.encoder = PointNetEncoder(
            config, n_points, np.random.default_rng(factory.spawn_seed("enc"))
        )
        self.decoder = PointCloudDecoder(
            config, n_points, np.random.default_rng(factory.spawn_seed("dec"))
        )
        self.critic = LatentCritic(
            config, np.random.default_rng(factory.spawn_seed("crit"))
        )
        self._rng = factory.stream("train")
        self.history = AAEHistory()

    # ------------------------------------------------------------ embedding
    def embed(self, clouds: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Latent embeddings for (N, n_points, 3) clouds (no grad)."""
        self.encoder.eval()
        out = []
        with no_grad():
            n = len(clouds)
            for start in range(0, n, batch_size):  # repro: disable=vectorization -- chunks
                z = self.encoder(Tensor(clouds[start : start + batch_size]))
                out.append(z.data)
        self.encoder.train()
        return np.concatenate(out) if out else np.zeros((0, self.config.latent_dim))

    def reconstruct(self, clouds: np.ndarray) -> np.ndarray:
        """Round-trip clouds through the autoencoder (no grad)."""
        with no_grad():
            z = self.encoder(Tensor(clouds))
            return self.decoder(z).data

    # ------------------------------------------------------------- training
    def fit(
        self,
        clouds: np.ndarray,
        epochs: int | None = None,
        tracer=None,
    ) -> AAEHistory:
        """Train on (N, n_points, 3) normalized clouds.

        The interpolation coefficients of the gradient penalty are drawn
        *before* the critic loss is evaluated (same rng stream, same draw
        order as the classic formulation), so the eager and compiled
        engines see the identical sequence of minibatches, priors and
        interpolates.
        """
        cfg = self.config
        tracer = tracer if tracer is not None else NULL_TRACER
        if clouds.ndim != 3 or clouds.shape[1] != self.n_points:
            raise ValueError(
                f"expected (N, {self.n_points}, 3) clouds, got {clouds.shape}"
            )
        n = len(clouds)
        if n < 4:
            raise ValueError("need at least 4 training clouds")
        epochs = epochs if epochs is not None else cfg.epochs

        perm = self._rng.permutation(n)
        n_val = max(1, int(round(cfg.validation_fraction * n)))
        val_idx, train_idx = perm[:n_val], perm[n_val:]

        ae_params = self.encoder.parameters() + self.decoder.parameters()
        opt_ae = RMSprop(ae_params, lr=cfg.learning_rate)
        opt_critic = RMSprop(self.critic.parameters(), lr=cfg.learning_rate)

        def critic_fn(z_real: Tensor, z_fake: Tensor, interp: Tensor) -> Tensor:
            d_real = ag.tensor_mean(self.critic(z_real))
            d_fake = ag.tensor_mean(self.critic(z_fake))
            gp = gradient_penalty_at(self.critic, interp)
            return d_fake - d_real + cfg.gradient_penalty_scale * gp

        def ae_fn(x: Tensor) -> tuple[Tensor, Tensor, Tensor]:
            z = self.encoder(x)
            recon = self.decoder(z)
            rec = chamfer_distance(recon, x)
            adv = -ag.tensor_mean(self.critic(z))
            loss = cfg.reconstruction_scale * rec + cfg.adversarial_scale * adv
            return loss, rec, adv

        critic_step = ae_step = None
        if cfg.engine == "graph":
            critic_step = TrainStep(
                critic_fn, opt_critic, input_requires_grad=(False, False, True)
            )
            ae_step = TrainStep(ae_fn, opt_ae)

        for epoch in range(epochs):
            order = self._rng.permutation(train_idx)
            rec_losses, adv_losses = [], []
            with tracer.span("train.epoch", "train", epoch=epoch) as epoch_span:
                starts = range(0, len(order), cfg.batch_size)
                for start in starts:  # repro: disable=vectorization -- sequential SGD steps
                    idx = order[start : start + cfg.batch_size]
                    if len(idx) < 2:
                        continue
                    x_arr = clouds[idx]
                    critic_loss_val = 0.0
                    with tracer.span("train.step", "train"):
                        # --- critic update(s): prior real, encoded fake
                        for _ in range(cfg.critic_steps):
                            with no_grad():
                                z_fake = self.encoder(Tensor(x_arr))
                            z_real_arr = self._rng.normal(
                                scale=cfg.prior_std,
                                size=(len(idx), cfg.latent_dim),
                            )
                            alpha = self._rng.random((len(idx), 1))
                            interp_arr = (
                                alpha * z_real_arr + (1 - alpha) * z_fake.data
                            )
                            if critic_step is not None:
                                critic_loss_val = critic_step(
                                    z_real_arr, z_fake.data, interp_arr
                                )
                            else:
                                critic_loss = critic_fn(
                                    Tensor(z_real_arr),
                                    Tensor(z_fake.data),
                                    Tensor(interp_arr, requires_grad=True),
                                )
                                self.critic.zero_grad()
                                critic_loss.backward()
                                opt_critic.step()
                                critic_loss_val = critic_loss.item()

                        # --- autoencoder update: reconstruct + fool critic
                        if ae_step is not None:
                            loss_val, rec_val, adv_val = ae_step(x_arr)
                        else:
                            loss, rec, adv = ae_fn(Tensor(x_arr))
                            self.encoder.zero_grad()
                            self.decoder.zero_grad()
                            loss.backward()
                            opt_ae.step()
                            loss_val = loss.item()
                            rec_val, adv_val = rec.item(), adv.item()
                    if tracer.enabled:
                        tracer.metrics.counter("train.steps").inc()
                        tracer.metrics.gauge("train.loss").set(loss_val)
                        tracer.metrics.gauge("train.critic_loss").set(critic_loss_val)
                        gnorm = (
                            ae_step.grad_norm()
                            if ae_step is not None
                            else grad_norm(opt_ae.params)
                        )
                        tracer.metrics.gauge("train.grad_norm").set(gnorm)
                    rec_losses.append(rec_val)
                    adv_losses.append(adv_val)

                self.history.train_reconstruction.append(float(np.mean(rec_losses)))
                self.history.train_adversarial.append(float(np.mean(adv_losses)))
                epoch_span.set_attr(
                    "train_reconstruction", self.history.train_reconstruction[-1]
                )

                with no_grad():
                    xv = Tensor(clouds[val_idx])
                    vrec = chamfer_distance(self.decoder(self.encoder(xv)), xv)
                self.history.val_reconstruction.append(vrec.item())
                epoch_span.set_attr("val_reconstruction", self.history.val_reconstruction[-1])
        return self.history


def train_aae(
    clouds: np.ndarray,
    config: AAEConfig | None = None,
    seed: int = 0,
    tracer=None,
) -> AAE:
    """Convenience constructor + fit."""
    config = config or AAEConfig()
    model = AAE(config, n_points=clouds.shape[1], seed=seed)
    model.fit(clouds, tracer=tracer)
    return model
