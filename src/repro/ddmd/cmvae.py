"""Contact-map variational autoencoder — the baseline the 3D-AAE replaced.

§5.1.4: the 3D-AAE is "a significant improvement over approaches such as
variational autoencoders in that it is more robust and generalizable to
protein coordinate datasets than contact maps (or other raw inputs)".
To make that a measurable ablation rather than a citation, this module
implements the earlier-generation approach (Bhowmik et al. 2018, the
paper's ref [14]): binarized Cα contact maps fed to a dense VAE with the
standard BCE + KL objective.

The representation ablation bench then compares embedding robustness
under coordinate noise: contact maps are discontinuous (a cutoff
crossing flips bits), so their embeddings jump where the point-cloud
AAE's move smoothly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import autograd as ag
from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import Dense, Module, ReLU, Sequential, Sigmoid
from repro.nn.losses import bce_loss
from repro.nn.optim import Adam
from repro.util.config import FrozenConfig, validate_positive, validate_range
from repro.util.rng import RngFactory

__all__ = ["contact_map", "ContactMapVAE", "CMVAEConfig"]


def contact_map(coords: np.ndarray, cutoff: float = 8.0) -> np.ndarray:
    """Binarized upper-triangle Cα contact map of an (n, 3) structure.

    Returns a flat vector of length n·(n−1)/2 with 1 where the pair is
    within ``cutoff`` angstrom — the input representation of ref [14].
    """
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise ValueError("coords must be (n, 3)")
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    d = np.linalg.norm(coords[:, None] - coords[None, :], axis=-1)
    i, j = np.triu_indices(len(coords), k=1)
    return (d[i, j] < cutoff).astype(np.float64)


@dataclass(frozen=True)
class CMVAEConfig(FrozenConfig):
    """Contact-map VAE hyper-parameters."""

    latent_dim: int = 16
    hidden: int = 64
    learning_rate: float = 1e-3
    epochs: int = 15
    batch_size: int = 32
    kl_scale: float = 1e-3
    validation_fraction: float = 0.2
    cutoff: float = 8.0

    def __post_init__(self) -> None:
        validate_positive("latent_dim", self.latent_dim)
        validate_positive("hidden", self.hidden)
        validate_positive("epochs", self.epochs)
        validate_positive("batch_size", self.batch_size)
        validate_range("validation_fraction", self.validation_fraction, 0.0, 0.9)


class ContactMapVAE:
    """Dense VAE over flattened contact maps."""

    def __init__(self, config: CMVAEConfig, n_inputs: int, seed: int = 0) -> None:
        self.config = config
        self.n_inputs = n_inputs
        factory = RngFactory(seed, prefix="ddmd/cmvae")
        rng_e = np.random.default_rng(factory.spawn_seed("enc"))
        rng_d = np.random.default_rng(factory.spawn_seed("dec"))
        h, z = config.hidden, config.latent_dim
        self.encoder_trunk = Sequential(Dense(n_inputs, h, rng_e), ReLU())
        self.mu_head = Dense(h, z, rng_e)
        self.logvar_head = Dense(h, z, rng_e)
        self.decoder = Sequential(
            Dense(z, h, rng_d), ReLU(), Dense(h, n_inputs, rng_d), Sigmoid()
        )
        self._rng = factory.stream("train")
        self.train_losses: list[float] = []
        self.val_losses: list[float] = []

    # --------------------------------------------------------------- parts
    def _modules(self) -> list[Module]:
        return [self.encoder_trunk, self.mu_head, self.logvar_head, self.decoder]

    def _parameters(self):
        params = []
        for m in self._modules():
            params.extend(m.parameters())
        return params

    def embed(self, maps: np.ndarray) -> np.ndarray:
        """Posterior means for (N, n_inputs) contact maps."""
        with no_grad():
            hidden = self.encoder_trunk(Tensor(maps))
            return self.mu_head(hidden).data

    def embed_coords(self, coords_batch: np.ndarray) -> np.ndarray:
        """Convenience: (N, n_res, 3) coordinates → latent means."""
        maps = np.stack([contact_map(c, self.config.cutoff) for c in coords_batch])
        return self.embed(maps)

    # ------------------------------------------------------------ training
    def fit(self, maps: np.ndarray) -> list[float]:
        """Train on (N, n_inputs) contact maps; returns epoch losses."""
        cfg = self.config
        if maps.ndim != 2 or maps.shape[1] != self.n_inputs:
            raise ValueError(f"expected (N, {self.n_inputs}) maps, got {maps.shape}")
        if len(maps) < 4:
            raise ValueError("need at least 4 training maps")
        n = len(maps)
        perm = self._rng.permutation(n)
        n_val = max(1, int(round(cfg.validation_fraction * n)))
        val_idx, train_idx = perm[:n_val], perm[n_val:]
        opt = Adam(self._parameters(), lr=cfg.learning_rate)

        for _ in range(cfg.epochs):
            order = self._rng.permutation(train_idx)
            epoch = []
            starts = range(0, len(order), cfg.batch_size)
            for start in starts:  # repro: disable=vectorization -- sequential SGD steps
                idx = order[start : start + cfg.batch_size]
                x = Tensor(maps[idx])
                hidden = self.encoder_trunk(x)
                mu = self.mu_head(hidden)
                logvar = self.logvar_head(hidden)
                noise = Tensor(self._rng.normal(size=mu.shape))
                z = mu + ag.exp(logvar * 0.5) * noise  # reparameterization
                recon = self.decoder(z)
                rec_loss = bce_loss(recon, x)
                kl = -0.5 * ag.tensor_mean(
                    1.0 + logvar - mu * mu - ag.exp(logvar)
                )
                loss = rec_loss + cfg.kl_scale * kl
                for m in self._modules():
                    m.zero_grad()
                loss.backward()
                opt.step()
                epoch.append(loss.item())
            self.train_losses.append(float(np.mean(epoch)))
            with no_grad():
                xv = Tensor(maps[val_idx])
                hv = self.encoder_trunk(xv)
                rv = self.decoder(self.mu_head(hv))
                self.val_losses.append(bce_loss(rv, xv).item())
        return self.train_losses
