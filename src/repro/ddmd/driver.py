"""DeepDriveMD adaptive-sampling driver.

The core DeepDriveMD loop (§6.1.3): "the pipeline starts with MD
simulations that are run concurrently; it completes a single iteration
by passing through deep learning stages for AAE model training and the
outlier detection" — and the next iteration's simulations *restart from
the outliers*, steering sampling toward unexplored conformations.  The
paper credits this loop with accelerating sampling "by at least 2 orders
of magnitude" for folding; the reproducible shape is that adaptive
restarts explore more conformational space than the same simulation
budget spent restarting from the initial structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ddmd.aae import AAE, AAEConfig
from repro.ddmd.lof import lof_scores
from repro.ddmd.pointcloud import normalize_cloud
from repro.md.forcefield import ForceField
from repro.md.integrator import Langevin
from repro.md.observables import kabsch_rmsd
from repro.md.system import MDSystem
from repro.md.trajectory import Trajectory, simulate
from repro.util.config import FrozenConfig, validate_positive
from repro.util.rng import RngFactory

__all__ = ["AdaptiveSamplingConfig", "AdaptiveSamplingResult", "AdaptiveSampler"]


@dataclass(frozen=True)
class AdaptiveSamplingConfig(FrozenConfig):
    """Shape of one adaptive-sampling run."""

    rounds: int = 3
    simulations_per_round: int = 4
    steps_per_simulation: int = 60
    record_every: int = 5
    temperature: float = 300.0
    timestep_ps: float = 0.01
    lof_neighbors: int = 8
    aae: AAEConfig = AAEConfig(epochs=5, latent_dim=8, hidden=16)
    adaptive: bool = True  # False = control: always restart from start

    def __post_init__(self) -> None:
        validate_positive("rounds", self.rounds)
        validate_positive("simulations_per_round", self.simulations_per_round)
        validate_positive("steps_per_simulation", self.steps_per_simulation)


@dataclass
class AdaptiveSamplingResult:
    """Everything the sampler produced."""

    trajectories: list[Trajectory]  # all rounds, in launch order
    model: AAE | None  # final AAE (None when adaptive=False)
    coverage_per_round: list[float]  # mean RMSD from start, per round
    max_rmsd: float  # farthest conformation reached
    frames: np.ndarray = field(repr=False, default=None)  # (N, n_protein, 3)

    @property
    def total_frames(self) -> int:
        return 0 if self.frames is None else len(self.frames)


class AdaptiveSampler:
    """Run the MD → AAE → LOF → restart loop on one system."""

    def __init__(
        self,
        system: MDSystem,
        config: AdaptiveSamplingConfig | None = None,
        forcefield: ForceField | None = None,
        seed: int = 0,
    ) -> None:
        self.template = system
        self.config = config or AdaptiveSamplingConfig()
        self.forcefield = forcefield or ForceField()
        self.factory = RngFactory(seed, prefix="ddmd/adaptive")

    def _run_simulation(
        self, start_positions: np.ndarray, key: str
    ) -> Trajectory:
        cfg = self.config
        rng = self.factory.stream(key)
        system = MDSystem(
            topology=self.template.topology,
            positions=start_positions.copy(),
            reference_positions=self.template.reference_positions.copy(),
        )
        system.initialize_velocities(cfg.temperature, rng)
        integrator = Langevin(timestep=cfg.timestep_ps, temperature=cfg.temperature)
        return simulate(
            system,
            self.forcefield,
            integrator,
            cfg.steps_per_simulation,
            rng,
            record_every=cfg.record_every,
        )

    def run(self) -> AdaptiveSamplingResult:
        """Execute all rounds; returns trajectories + coverage metrics."""
        cfg = self.config
        protein = self.template.topology.protein_atoms
        start = self.template.positions.copy()
        reference = start[protein]

        trajectories: list[Trajectory] = []
        all_frames: list[np.ndarray] = []  # protein-only frames
        full_frames: list[np.ndarray] = []  # full-system frames (restarts)
        coverage: list[float] = []
        model: AAE | None = None
        starting_points: list[np.ndarray] = [start] * cfg.simulations_per_round

        for rnd in range(cfg.rounds):
            round_rmsds = []
            n_sims = cfg.simulations_per_round
            for sim in range(n_sims):  # repro: disable=vectorization -- independent MD runs
                traj = self._run_simulation(
                    starting_points[sim % len(starting_points)],
                    f"round-{rnd}/sim-{sim}",
                )
                trajectories.append(traj)
                for frame in traj.frames:
                    all_frames.append(frame[protein])
                    full_frames.append(frame)
                    round_rmsds.append(kabsch_rmsd(frame[protein], reference))
            coverage.append(float(np.mean(round_rmsds)))

            if not cfg.adaptive or rnd == cfg.rounds - 1:
                # control mode keeps restarting from the initial structure;
                # the final round never needs new restart points
                continue

            # --- the DeepDriveMD steering step: AAE + LOF on everything
            clouds = np.array([normalize_cloud(f) for f in all_frames])
            model = AAE(
                cfg.aae, n_points=clouds.shape[1],
                seed=self.factory.spawn_seed(f"aae/{rnd}"),
            )
            model.fit(clouds)
            embeddings = model.embed(clouds)
            k = min(cfg.lof_neighbors, len(embeddings) - 1)
            scores = lof_scores(embeddings, k=k)
            order = np.argsort(-scores, kind="stable")
            picks = order[: cfg.simulations_per_round]
            starting_points = [full_frames[int(i)].copy() for i in picks]

        protein_frames = np.array(all_frames)
        rmsds = np.array(
            [kabsch_rmsd(f, reference) for f in protein_frames]
        )
        return AdaptiveSamplingResult(
            trajectories=trajectories,
            model=model,
            coverage_per_round=coverage,
            max_rmsd=float(rmsds.max()),
            frames=protein_frames,
        )
