"""AAE hyper-parameter sweeps.

§7.1.3: "We trained the model using several combinations of
hyperparameters, mainly varying learning rate, batch size and latent
dimension."  This utility runs that grid and returns the configuration
with the best validation reconstruction loss — the selection rule the
paper applies before reusing "the hyperparameters learned from 3D-AAE
performed on the full set".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ddmd.aae import AAE, AAEConfig

__all__ = ["SweepResult", "sweep_aae"]


@dataclass
class SweepResult:
    """Outcome of one hyper-parameter grid search."""

    best_config: AAEConfig
    best_val_loss: float
    table: list[tuple[AAEConfig, float]]  # every (config, val loss) tried

    def summary(self) -> str:
        """Human-readable multi-line report."""
        rows = ["AAE hyper-parameter sweep (val reconstruction loss):"]
        for cfg, loss in sorted(self.table, key=lambda t: t[1]):
            marker = " <= best" if cfg == self.best_config else ""
            rows.append(
                f"  lr={cfg.learning_rate:<8g} batch={cfg.batch_size:<3d} "
                f"latent={cfg.latent_dim:<3d} → {loss:.4f}{marker}"
            )
        return "\n".join(rows)


def sweep_aae(
    clouds: np.ndarray,
    learning_rates: Sequence[float] = (1e-3, 3e-4),
    batch_sizes: Sequence[int] = (16, 32),
    latent_dims: Sequence[int] = (8, 16),
    base: AAEConfig | None = None,
    seed: int = 0,
) -> SweepResult:
    """Grid-search the paper's three axes; returns the best config.

    Every candidate trains with the same seed and data, so the sweep is
    deterministic and re-runnable.
    """
    if not (len(learning_rates) and len(batch_sizes) and len(latent_dims)):
        raise ValueError("every sweep axis needs at least one value")
    base = base or AAEConfig()
    table: list[tuple[AAEConfig, float]] = []
    best_cfg = None
    best_loss = np.inf
    for lr in learning_rates:
        for bs in batch_sizes:
            for ld in latent_dims:
                cfg = base.replace(
                    learning_rate=lr, batch_size=bs, latent_dim=ld
                )
                model = AAE(cfg, n_points=clouds.shape[1], seed=seed)
                history = model.fit(clouds)
                loss = history.val_reconstruction[-1]
                table.append((cfg, loss))
                if loss < best_loss:
                    best_loss, best_cfg = loss, cfg
    assert best_cfg is not None
    return SweepResult(best_config=best_cfg, best_val_loss=best_loss, table=table)
