"""Ground-truth reference affinities for measuring enrichment.

Enrichment metrics ("did the pipeline surface the *actually* good
ligands?") need a reference ranking.  The honest reference in a
simulator is the same physics evaluated much harder: a high-effort,
multi-restart docking search whose best score we treat as the compound's
reference affinity.  Results are cached per (receptor, compound).
"""

from __future__ import annotations

import numpy as np

from repro.chem.library import CompoundLibrary
from repro.docking.engine import DockingEngine
from repro.docking.lga import LGAConfig
from repro.docking.receptor import Receptor

__all__ = ["ReferenceOracle"]

#: high-effort search: bigger population, more generations than production
_THOROUGH = LGAConfig(population=32, generations=14, local_search_rate=0.4)


class ReferenceOracle:
    """Reference affinity by exhaustive-effort docking with restarts."""

    def __init__(self, receptor: Receptor, seed: int = 990, restarts: int = 2) -> None:
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        self.receptor = receptor
        self.restarts = restarts
        self._engines = [
            DockingEngine(receptor, seed=seed + r, config=_THOROUGH)
            for r in range(restarts)
        ]
        self._cache: dict[str, float] = {}

    def affinity(self, smiles: str, compound_id: str) -> float:
        """Reference affinity (kcal/mol, lower = better), cached."""
        if compound_id not in self._cache:
            best = min(
                engine.dock_smiles(smiles, compound_id).score
                for engine in self._engines
            )
            self._cache[compound_id] = best
        return self._cache[compound_id]

    def affinities(self, library: CompoundLibrary) -> np.ndarray:
        """Reference affinities for a whole library (cached per entry)."""
        return np.array(
            [self.affinity(e.smiles, e.compound_id) for e in library]
        )

    def true_top_ids(self, library: CompoundLibrary, fraction: float) -> set[str]:
        """Compound ids of the true best ``fraction`` of the library."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        scores = self.affinities(library)
        k = max(1, int(round(fraction * len(library))))
        order = np.argsort(scores, kind="stable")[:k]
        return {library[int(i)].compound_id for i in order}
