"""Campaign performance metrics.

The paper's three measures (§Abstract): (i) throughput — ligands per
unit time; (ii) scientific performance — *effective* ligands sampled per
unit time (ligands that are actually worth sampling, not just sampled);
(iii) peak flop/s (handled by :mod:`repro.rct.flops` + the cost model).
This module implements (i), (ii) and the enrichment bookkeeping both
need.
"""

from __future__ import annotations

from dataclasses import dataclass, field


__all__ = ["throughput", "enrichment_factor", "StageAccounting", "CampaignMetrics"]


def throughput(n_ligands: int, seconds: float) -> float:
    """Ligands per second."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    if n_ligands < 0:
        raise ValueError("n_ligands must be non-negative")
    return n_ligands / seconds


def enrichment_factor(
    selected_ids: set[str], true_top_ids: set[str], universe_size: int
) -> float:
    """How over-represented the true top compounds are in a selection.

    ``EF = (hits/|selected|) / (|true_top|/universe)``; EF = 1 is random,
    higher is better.  An empty selection is an error.
    """
    if not selected_ids:
        raise ValueError("selection is empty")
    if universe_size < len(true_top_ids) or universe_size < 1:
        raise ValueError("universe smaller than the true-top set")
    if not true_top_ids:
        raise ValueError("true-top set is empty")
    hit_rate = len(selected_ids & true_top_ids) / len(selected_ids)
    base_rate = len(true_top_ids) / universe_size
    return hit_rate / base_rate


@dataclass
class StageAccounting:
    """Work and time attributed to one pipeline stage in one iteration."""

    stage: str
    n_ligands: int = 0
    wall_seconds: float = 0.0
    node_hours: float = 0.0

    @property
    def ligands_per_second(self) -> float:
        """Stage throughput (0 when no time elapsed)."""
        return self.n_ligands / self.wall_seconds if self.wall_seconds > 0 else 0.0


@dataclass
class CampaignMetrics:
    """Per-iteration campaign scorecard."""

    iteration: int
    stages: dict[str, StageAccounting] = field(default_factory=dict)
    enrichment_s1: float = 0.0  # EF of the ML1→S1 selection
    enrichment_cg: float = 0.0  # EF of the S1→CG selection
    effective_ligands: int = 0  # true-top ligands that reached S3-CG or deeper
    surrogate_val_loss: float = float("nan")

    def total_node_hours(self) -> float:
        """Node-hours summed over all stages."""
        return sum(s.node_hours for s in self.stages.values())

    def scientific_performance(self) -> float:
        """Effective ligands per node-hour — the paper's measure (ii)."""
        nh = self.total_node_hours()
        return self.effective_ligands / nh if nh > 0 else 0.0

    def publish(self, registry) -> None:
        """Mirror this scorecard into a telemetry metrics registry.

        Per-stage ligand counts and node-hours become counters
        (accumulating across iterations); per-stage node-hours feed a
        shared histogram.  Only work-derived quantities are published —
        wall-clock seconds are deliberately excluded so a traced
        simulated run's metrics snapshot stays deterministic.
        Idempotence is the caller's concern — publish each iteration's
        metrics exactly once.
        """
        for name, s in sorted(self.stages.items()):
            registry.counter(f"campaign.{name}.ligands").inc(s.n_ligands)
            registry.counter(f"campaign.{name}.node_hours").inc(s.node_hours)
            registry.histogram("campaign.stage_node_hours").observe(s.node_hours)
        registry.gauge("campaign.effective_ligands").set(self.effective_ligands)
        registry.gauge("campaign.iteration").set(self.iteration)

    def summary(self) -> str:
        """Human-readable multi-line report."""
        rows = [f"iteration {self.iteration}:"]
        for name, s in sorted(self.stages.items()):
            rows.append(
                f"  {name:6s} {s.n_ligands:6d} ligands "
                f"{s.wall_seconds:8.1f}s  {s.node_hours:10.4f} node-h "
                f"({s.ligands_per_second:9.2f} lig/s)"
            )
        rows.append(
            f"  EF(ML1→S1)={self.enrichment_s1:.2f} EF(S1→CG)={self.enrichment_cg:.2f} "
            f"effective={self.effective_ligands} "
            f"sci-perf={self.scientific_performance():.3f} lig/node-h"
        )
        return "\n".join(rows)
