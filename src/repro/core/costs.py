"""Summit-scale cost model — the bridge between our scaled-down kernels
and the paper's Table 2 / Table 3 numbers.

Table 2 (node-hours per ligand on Summit) is *derivable* from the
protocol definitions plus two calibrated rates, and this module does the
derivation instead of hard-coding the table:

* **MD rate** — one V100 GPU advances our LPC systems at
  ``MD_NS_PER_GPU_HOUR`` nanoseconds/hour.  With the paper's protocol
  durations this single constant reproduces both ESMACS rows:
  CG = 6 replicas × (1+4) ns on one 6-GPU node → 5/10 h = **0.5
  node-hours**; FG = 24 replicas × (2+10) ns on four nodes → 12/10 h
  × 4 = **4.8 ≈ 5 node-hours**.
* **Docking rate** — AutoDock-GPU evaluates ``DOCKING_EVALS_PER_GPU_SECOND``
  poses/second; with our LGA budget that lands on Table 2's ~1e-4
  node-hours/ligand.
* ML1 throughput comes from Table 3's measured 319,674 ligands/s on
  1536 GPUs (≈208/s per GPU), and S2 from its 2-node × 2-hour row.

Everything else (task shapes, node counts, throughput at scale) follows
from these rates and the real work-unit counts of our kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.esmacs.protocol import CG, FG, EsmacsConfig
from repro.rct.cluster import SUMMIT_NODE, NodeSpec
from repro.rct.task import TaskSpec
from repro.util.config import FrozenConfig, validate_positive

__all__ = ["CostModel", "PAPER_TABLE2"]

#: Table 2 as printed (node-hours per ligand) — the reference the bench
#: compares the derived model against.
PAPER_TABLE2 = {
    "S1": 1e-4,
    "S3-CG": 0.5,
    "S2": 4.0,
    "S3-FG": 5.0,
    "TI": 640.0,
}


@dataclass(frozen=True)
class CostModel(FrozenConfig):
    """Calibrated rates → per-stage durations and task shapes."""

    md_ns_per_gpu_hour: float = 10.0
    #: peak pose-evaluation rate (Table 3's short-interval measurement)
    docking_evals_per_gpu_second: float = 6500.0
    docking_evals_per_ligand: float = 2700.0  # our LGA default budget
    #: fraction of peak sustained end-to-end (ligand staging, IO, tail) —
    #: reconciles Table 3's 14,252 lig/s peak with Table 2's ~1e-4
    #: node-hours/ligand normalized whole-app cost (a ~5× gap in the
    #: paper's own numbers)
    docking_pipeline_efficiency: float = 0.2
    ml1_ligands_per_gpu_second: float = 208.0  # Table 3: 319674/s ÷ 1536 GPUs
    s2_nodes: int = 2
    s2_hours_per_ligand: float = 2.0  # Table 2's "Ad. Sampling" row
    ti_nodes: int = 64
    ti_hours_per_ligand: float = 10.0
    node: NodeSpec = SUMMIT_NODE

    def __post_init__(self) -> None:
        validate_positive("md_ns_per_gpu_hour", self.md_ns_per_gpu_hour)
        validate_positive("docking_evals_per_gpu_second", self.docking_evals_per_gpu_second)
        validate_positive("ml1_ligands_per_gpu_second", self.ml1_ligands_per_gpu_second)

    # ----------------------------------------------------------- durations
    def esmacs_wall_seconds(self, config: EsmacsConfig) -> float:
        """Wall time of one ESMACS run (replicas spread one per GPU)."""
        ns_per_replica = config.equilibration_ns + config.production_ns
        return ns_per_replica / self.md_ns_per_gpu_hour * 3600.0

    def esmacs_nodes(self, config: EsmacsConfig) -> int:
        """Nodes holding one replica ensemble (one replica per GPU)."""
        return max(1, -(-config.replicas // self.node.gpus))  # ceil division

    def docking_wall_seconds(self, n_ligands: int = 1, peak: bool = False) -> float:
        """GPU wall time to dock ``n_ligands`` on one GPU.

        ``peak=True`` gives the kernel-only rate (Table 3's measurement);
        the default charges the sustained whole-app rate (Table 2's).
        """
        seconds = (
            n_ligands
            * self.docking_evals_per_ligand
            / self.docking_evals_per_gpu_second
        )
        if not peak:
            seconds /= self.docking_pipeline_efficiency
        return seconds

    def ml1_wall_seconds(self, n_ligands: int = 1) -> float:
        """GPU wall time to surrogate-score ``n_ligands`` on one GPU."""
        return n_ligands / self.ml1_ligands_per_gpu_second

    # ------------------------------------------------------- Table 2 rows
    def node_hours_per_ligand(self, stage: str) -> float:
        """Derived Table 2 column."""
        if stage == "S1":
            # one ligand occupies one of the node's GPUs
            return self.docking_wall_seconds(1) / 3600.0 / self.node.gpus
        if stage == "S3-CG":
            return self.esmacs_wall_seconds(CG) / 3600.0 * self.esmacs_nodes(CG)
        if stage == "S3-FG":
            return self.esmacs_wall_seconds(FG) / 3600.0 * self.esmacs_nodes(FG)
        if stage == "S2":
            return self.s2_hours_per_ligand * self.s2_nodes
        if stage == "TI":
            return self.ti_hours_per_ligand * self.ti_nodes
        raise ValueError(f"unknown stage {stage!r}")

    def nodes_per_ligand(self, stage: str) -> float:
        """Table 2's "nodes per ligand" column."""
        if stage == "S1":
            return 1.0 / self.node.gpus
        if stage == "S3-CG":
            return float(self.esmacs_nodes(CG))
        if stage == "S3-FG":
            return float(self.esmacs_nodes(FG))
        if stage == "S2":
            return float(self.s2_nodes)
        if stage == "TI":
            return float(self.ti_nodes)
        raise ValueError(f"unknown stage {stage!r}")

    # ---------------------------------------------------------- task specs
    def docking_task(self, n_ligands: int, name: str = "") -> TaskSpec:
        """A single-GPU docking bundle (RAPTOR worker granularity)."""
        return TaskSpec(
            name=name or f"s1-dock-{n_ligands}",
            cpus=1,
            gpus=1,
            duration=self.docking_wall_seconds(n_ligands),
            stage="S1",
        )

    def esmacs_task(self, config: EsmacsConfig, compound_id: str, stage: str) -> TaskSpec:
        """One ESMACS ensemble as a (possibly multi-node) task."""
        nodes = self.esmacs_nodes(config)
        return TaskSpec(
            name=f"{stage.lower()}-{compound_id}",
            cpus=self.node.cpus if nodes > 1 else min(config.replicas, self.node.cpus),
            gpus=self.node.gpus if nodes > 1 else min(config.replicas, self.node.gpus),
            nodes=nodes,
            duration=self.esmacs_wall_seconds(config),
            stage=stage,
        )

    def s2_task(self, compound_id: str) -> TaskSpec:
        """One S2 (DeepDriveMD) iteration over a compound's ensemble."""
        return TaskSpec(
            name=f"s2-{compound_id}",
            cpus=self.node.cpus,
            gpus=self.node.gpus,
            nodes=self.s2_nodes,
            duration=self.s2_hours_per_ligand * 3600.0,
            stage="S2",
        )

    def ml1_task(self, n_ligands: int, n_gpus: int) -> TaskSpec:
        """ML1 inference sweep as one multi-node task."""
        nodes = max(1, -(-n_gpus // self.node.gpus))
        return TaskSpec(
            name=f"ml1-{n_ligands}",
            cpus=self.node.cpus,
            gpus=self.node.gpus,
            nodes=nodes,
            duration=self.ml1_wall_seconds(n_ligands) / max(1, n_gpus),
            stage="ML1",
        )
