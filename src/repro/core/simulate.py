"""Paper-scale campaign simulation: the task-graph generator for Fig 7,
Table 3 and the throughput benches.

Where :mod:`repro.core.campaign` runs the real science at laptop scale,
this module emits the *same* workflow structure with paper-scale task
counts and cost-model durations, to be executed on the simulated
cluster.  The integrated (S3-CG)-(S2)-(S3-FG) workflow of Fig 7 is one
pipeline per compound cohort, exactly as §6.1.3 describes.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.core.costs import CostModel
from repro.rct.cluster import Allocation, Cluster
from repro.rct.entk import Pipeline, Stage
from repro.rct.executor import SimExecutor
from repro.rct.pilot import Pilot
from repro.rct.task import TaskSpec
from repro.util.config import FrozenConfig, validate_positive

__all__ = ["SimulatedCampaignConfig", "build_integrated_pipelines", "simulate_integrated_run"]


@dataclass(frozen=True)
class SimulatedCampaignConfig(FrozenConfig):
    """Counts for a paper-scale (S3-CG)-(S2)-(S3-FG) window."""

    n_nodes: int = 120
    cg_compounds: int = 96
    s2_compounds: int = 10
    fg_compounds: int = 25
    cohorts: int = 4  # concurrent pipelines (compound batches)
    launch_overhead: float = 1.0
    #: lognormal sigma on task durations — §5.2's workload dynamism
    #: ("each LPC has a different rate of convergence … the duration
    #: varies"); also desynchronizes cohort barriers as in production
    heterogeneity: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        validate_positive("n_nodes", self.n_nodes)
        validate_positive("cg_compounds", self.cg_compounds)
        validate_positive("cohorts", self.cohorts)
        if self.heterogeneity < 0:
            raise ValueError("heterogeneity must be non-negative")


def build_integrated_pipelines(
    config: SimulatedCampaignConfig, cost_model: CostModel
) -> list[Pipeline]:
    """One pipeline per compound cohort: CG stage → S2 stage → FG stage."""
    from repro.esmacs.protocol import CG, FG
    from repro.util.rng import rng_stream

    rng = rng_stream(config.seed, "simulate/heterogeneity")

    def vary(task: TaskSpec) -> TaskSpec:
        if config.heterogeneity > 0:
            task.duration *= float(rng.lognormal(0.0, config.heterogeneity))
        return task

    pipelines = []
    per = max(1, config.cg_compounds // config.cohorts)
    s2_per = max(1, config.s2_compounds // config.cohorts)
    fg_per = max(1, config.fg_compounds // config.cohorts)
    for c in range(config.cohorts):
        stages = [
            Stage(
                name=f"cg-{c}",
                tasks=[
                    vary(cost_model.esmacs_task(CG, f"c{c}-{i}", "S3-CG"))
                    for i in range(per)
                ],
            ),
            Stage(
                name=f"s2-{c}",
                tasks=[vary(cost_model.s2_task(f"c{c}-{i}")) for i in range(s2_per)],
            ),
            Stage(
                name=f"fg-{c}",
                tasks=[
                    vary(cost_model.esmacs_task(FG, f"c{c}-{i}", "S3-FG"))
                    for i in range(fg_per)
                ],
            ),
        ]
        pipelines.append(Pipeline(name=f"cohort-{c}", stages=stages))
    return pipelines


def simulate_integrated_run(
    config: SimulatedCampaignConfig | None = None,
    cost_model: CostModel | None = None,
    tracer=None,
    fault_model=None,
    retry=None,
) -> Pilot:
    """Execute the integrated workflow on a simulated pilot; returns the
    pilot (whose utilization tracker holds the Fig 7 series).

    An explicit ``tracer`` collects the pilot's task/backoff spans into a
    shared trace; by default the pilot keeps its own private tracer.  A
    ``fault_model`` injects per-attempt failures into the simulated
    executor, re-driven under ``retry`` (the pilot's default
    drop-and-continue policy applies when retries are exhausted).
    """
    from repro.rct.entk import AppManager

    config = config or SimulatedCampaignConfig()
    cost_model = cost_model or CostModel()
    cluster = Cluster(config.n_nodes, cost_model.node)
    allocation: Allocation = cluster.allocate(config.n_nodes, 0.0)
    pilot = Pilot(
        allocation,
        SimExecutor(config.launch_overhead, fault_model=fault_model),
        retry=retry,
        tracer=tracer,
    )
    AppManager(pilot).run(build_integrated_pipelines(config, cost_model))
    return pilot
