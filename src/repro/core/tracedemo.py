"""A deterministic end-to-end traced run for ``repro trace``.

One small, seeded pass through every instrumented subsystem on a shared
:class:`~repro.telemetry.Tracer` driven by a virtual
:class:`~repro.telemetry.TickClock`:

1. a tiny :class:`~repro.core.campaign.ImpeccableCampaign` iteration —
   stage boundaries (``campaign.stage``), per-ligand docking
   (``docking``) and graph-executor op profiles (``nn.op``);
2. one fused multi-ligand docking window — per-kernel-phase spans
   (``docking.kernel``);
3. a fault-injected RAPTOR simulation — master dispatch, item attempts
   and retry backoffs (``raptor.dispatch`` / ``raptor.exec`` /
   ``raptor.backoff``);
4. an integrated run on the simulated cluster — pilot placement and
   backoff spans (``pilot.task`` / ``pilot.backoff``).

Every clock read comes from the tick clock and every decision from the
seed, so two runs at the same seed export byte-identical traces — the
property ``tests/telemetry/test_trace_determinism.py`` pins down.
"""

from __future__ import annotations

from repro.telemetry import TickClock, Tracer

__all__ = ["run_traced_demo"]


def run_traced_demo(seed: int = 0, tracer: Tracer | None = None) -> Tracer:
    """Run the demo; returns the tracer holding the full span set."""
    from repro.core.campaign import CampaignConfig, ImpeccableCampaign
    from repro.core.simulate import SimulatedCampaignConfig, simulate_integrated_run
    from repro.docking.lga import LGAConfig
    from repro.esmacs.protocol import EsmacsConfig
    from repro.rct.fault import FaultModel, RetryPolicy
    from repro.rct.raptor import RaptorConfig, simulate_raptor
    from repro.rct.task import reset_uid_counter
    from repro.surrogate.train import TrainConfig
    from repro.util.rng import rng_stream

    if tracer is None:
        tracer = Tracer(clock=TickClock())

    # fault draws key on task uid; pin uids so reruns in a warm process
    # (where the global counter has advanced) stay byte-identical
    reset_uid_counter()

    # -- 1. tiny campaign: stage, docking and nn.op spans ----------------
    small_md = EsmacsConfig(
        replicas=2,
        equilibration_ns=0.5,
        production_ns=1.0,
        steps_per_ns=6,
        n_residues=40,
        record_every=2,
        minimize_iterations=8,
    )
    campaign = ImpeccableCampaign(
        CampaignConfig(
            library_size=16,
            seed_train_size=6,
            iterations=1,
            ml1_keep_fraction=0.25,
            ml1_explore_fraction=0.0,
            cg_compounds=2,
            s2_top_compounds=1,
            s2_outliers_per_compound=1,
            docking=LGAConfig(population=8, generations=3),
            surrogate=TrainConfig(epochs=2, batch_size=8, width=4),
            cg=small_md,
            fg=small_md,
            compute_enrichment=False,
            seed=seed,
        ),
        tracer=tracer,
    )
    campaign.run()

    # -- 2. fused shard window: docking.kernel phase spans ---------------
    entries = [(e.smiles, e.compound_id) for e in campaign.library][:4]
    campaign.engine.dock_entries(entries, batched=True)

    # -- 3. fault-injected RAPTOR: dispatch / exec / backoff spans -------
    durations = rng_stream(seed, "tracedemo/durations").uniform(1.0, 5.0, size=24)
    simulate_raptor(
        durations,
        RaptorConfig(n_workers=4, n_masters=2, bulk_size=4),
        fault_model=FaultModel(failure_rate=0.2, seed=seed),
        retry=RetryPolicy(max_retries=2, backoff_base=0.5, seed=seed),
        tracer=tracer,
    )

    # -- 4. simulated cluster: pilot.task / pilot.backoff spans ----------
    simulate_integrated_run(
        SimulatedCampaignConfig(
            n_nodes=8,
            cg_compounds=8,
            s2_compounds=4,
            fg_compounds=4,
            cohorts=2,
            seed=seed,
        ),
        tracer=tracer,
        fault_model=FaultModel(failure_rate=0.15, seed=seed),
        retry=RetryPolicy(max_retries=2, backoff_base=2.0, seed=seed),
    )
    return tracer
