"""The IMPECCABLE campaign: ML1 → S1 → S3-CG → S2 → S3-FG, iterated.

This is the paper's Fig 1 loop as executable code.  Each iteration:

1. **ML1** — the surrogate ranks the not-yet-docked library; the top
   fraction (plus an exploration quota from lower ranks, §7.1.1's
   "15–20% of compounds from the RES") is passed on;
2. **S1** — selected compounds are docked; scores join the training set;
3. **S3-CG** — the structurally most diverse of the best docked
   compounds (§7.1.2) get coarse ensemble free energies;
4. **S2** — the 3D-AAE + LOF filter picks outlier conformations of the
   best CG binders;
5. **S3-FG** — fine-grained ESMACS refines the selected conformations;
6. the surrogate **retrains** on everything docked so far — the
   upstream feedback that makes the loop an active-learning pipeline.

Scaled-down in size, faithful in structure: every stage is the real
implementation from this package, and every hand-off carries real
structures (docked poses seed CG; S2-selected frames seed FG).
"""

from __future__ import annotations
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.chem.fingerprint import diversity_pick
from repro.chem.library import CompoundLibrary, generate_library
from repro.chem.smiles import parse_smiles
from repro.core.costs import CostModel
from repro.core.metrics import CampaignMetrics, StageAccounting, enrichment_factor
from repro.core.truth import ReferenceOracle
from repro.ddmd.adaptive import AdaptiveConfig, S2Result, run_s2
from repro.docking.engine import DockingEngine, DockingResult
from repro.docking.lga import LGAConfig
from repro.docking.receptor import Receptor, make_receptor
from repro.esmacs.protocol import EsmacsConfig, EsmacsResult, EsmacsRunner
from repro.md.builder import build_lpc
from repro.rct.fault import FAILURE_POLICIES, FailureSummary, TaskFailedError
from repro.surrogate.infer import InferenceEngine
from repro.surrogate.train import TrainConfig, TrainedSurrogate, train_surrogate
from repro.telemetry import NULL_TRACER, Tracer
from repro.util.config import FrozenConfig, validate_positive, validate_range
from repro.util.log import get_logger
from repro.util.rng import RngFactory
from repro.util.timer import WallClock

_log = get_logger("core.campaign")

#: stage wall-times measure *real* computation (docking, MD, training);
#: the sanctioned wall-clock utility keeps campaign code clock-pure
#: under the clock-purity lint rule
_clock = WallClock()

__all__ = [
    "CampaignConfig",
    "IterationResult",
    "CampaignResult",
    "ImpeccableCampaign",
    "StageUnit",
]

#: laptop-scale defaults for the heavy stages
_FAST_LGA = LGAConfig(population=14, generations=6)
_FAST_CG = EsmacsConfig(
    replicas=6,
    equilibration_ns=1.0,
    production_ns=4.0,
    steps_per_ns=14,
    n_residues=90,
    record_every=5,
    minimize_iterations=25,
)
_FAST_FG = EsmacsConfig(
    replicas=12,  # paper: 24; halved so examples stay interactive
    equilibration_ns=2.0,
    production_ns=10.0,
    steps_per_ns=14,
    n_residues=90,
    record_every=10,
    minimize_iterations=25,
)


@dataclass(frozen=True)
class CampaignConfig(FrozenConfig):
    """Shape of one campaign."""

    target: str = "PLPro"
    pdb_id: str = "6W9C"
    #: optional extra crystal structures: when non-empty, S1 docks every
    #: compound against each structure and keeps the consensus-best pose
    #: (§7.1.2's multi-structure docking); downstream stages run against
    #: the structure that produced each compound's best pose, and S2
    #: aggregates per structure (the paper trains its AAE per receptor)
    pdb_ids: tuple = ()
    receptor_seed: int = 2021
    library_size: int = 120
    seed_train_size: int = 40  # randomly docked to bootstrap ML1
    iterations: int = 2
    ml1_keep_fraction: float = 0.25  # top predicted fraction docked per iter
    ml1_explore_fraction: float = 0.15  # §7.1.1: sample below the top too
    #: inference engine for the ML1 ranking stage: "graph" (fused,
    #: arena-planned — the TensorRT analogue) or "eager" (reference)
    ml1_engine: str = "graph"
    cg_compounds: int = 6  # diversity-picked for S3-CG per iteration
    s2_top_compounds: int = 3
    s2_outliers_per_compound: int = 3
    docking: LGAConfig = _FAST_LGA
    surrogate: TrainConfig = TrainConfig(epochs=8, batch_size=24, width=8)
    cg: EsmacsConfig = _FAST_CG
    fg: EsmacsConfig = _FAST_FG
    compute_enrichment: bool = True
    #: what a stage-task failure (a raising dock/CG/S2/FG unit) does to the
    #: campaign: "fail_fast" re-raises immediately; "drop_and_continue"
    #: drops the failing unit, records it in the failure summary, and
    #: keeps the iteration going
    failure_policy: str = "fail_fast"
    #: with drop_and_continue, max drops tolerated per stage per iteration
    #: before the campaign gives up (None = unlimited)
    stage_failure_budget: int | None = None
    #: on-disk library shards (NDJSON or pickle, see repro.util.shardio);
    #: when non-empty the campaign loads its library from these instead
    #: of generating one, which is how a streamed/sharded library (e.g.
    #: written by repro.chem.write_library_shards) feeds the iterative
    #: loop — library_size is ignored in that case
    library_shards: tuple = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {self.failure_policy!r}"
            )
        if self.stage_failure_budget is not None and self.stage_failure_budget < 0:
            raise ValueError("stage_failure_budget must be non-negative")
        validate_positive("library_size", self.library_size)
        validate_positive("seed_train_size", self.seed_train_size)
        validate_positive("iterations", self.iterations)
        validate_range("ml1_keep_fraction", self.ml1_keep_fraction, 0.0, 1.0)
        validate_range("ml1_explore_fraction", self.ml1_explore_fraction, 0.0, 1.0)
        if self.ml1_engine not in ("graph", "eager"):
            raise ValueError(
                f"ml1_engine must be 'graph' or 'eager', got {self.ml1_engine!r}"
            )
        validate_positive("cg_compounds", self.cg_compounds)
        if self.seed_train_size >= self.library_size:
            raise ValueError("seed_train_size must be below library_size")


@dataclass
class IterationResult:
    """Everything one loop iteration produced."""

    iteration: int
    docked: list[DockingResult]
    cg_results: list[EsmacsResult]
    s2_result: S2Result | None  # the largest structure group's S2
    fg_results: list[EsmacsResult]
    fg_parents: list[str]  # compound id per FG run (aligned with fg_results)
    metrics: CampaignMetrics
    s2_by_structure: dict[str, S2Result] = field(default_factory=dict)


@dataclass
class CampaignResult:
    """Full campaign output."""

    config: CampaignConfig
    library: CompoundLibrary
    iterations: list[IterationResult] = field(default_factory=list)
    surrogate: TrainedSurrogate | None = None
    docked_scores: dict[str, float] = field(default_factory=dict)
    #: ledger of stage-task failures (drops per stage, nothing silent);
    #: empty under fail_fast, which raises instead
    failure_summary: FailureSummary = field(default_factory=FailureSummary)

    def all_cg(self) -> list[EsmacsResult]:
        """Every CG result across iterations."""
        return [r for it in self.iterations for r in it.cg_results]

    def all_fg(self) -> list[EsmacsResult]:
        """Every FG result across iterations."""
        return [r for it in self.iterations for r in it.fg_results]


@dataclass
class StageUnit:
    """One resumable slice of a campaign: a stage of one iteration.

    The campaign decomposes into a strict sequence of units (seed
    bootstrap, then ML1 → S1 → S3-CG → S2 → S3-FG → retrain per
    iteration).  A unit's *size* (``n_items``) is fixed when the unit is
    built — which is only possible once the previous unit has run,
    because stage sizes depend on upstream science (how many compounds
    ML1 selected, how many structures hold CG results).  The science
    itself executes when :meth:`complete` is called, so an external
    driver can schedule the unit's simulated cost on a shared pilot
    first and run the science once the tasks finish.
    """

    stage: str
    iteration: int  # -1 for the pre-loop seed bootstrap
    n_items: int
    _science: Callable[[], None]
    done: bool = False

    @property
    def unit_id(self) -> str:
        """Stable id used for checkpoint manifests (``it0/S1``, ``seed``)."""
        if self.iteration < 0:
            return self.stage
        return f"it{self.iteration}/{self.stage}"

    def complete(self) -> None:
        """Run this unit's science.  Idempotence is the caller's job."""
        if self.done:
            raise RuntimeError(f"stage unit {self.unit_id!r} already completed")
        self._science()
        self.done = True


class ImpeccableCampaign:
    """Drive the integrated loop against one receptor."""

    def __init__(
        self,
        config: CampaignConfig | None = None,
        tracer: Tracer | None = None,
        library: CompoundLibrary | None = None,
    ) -> None:
        self.config = config or CampaignConfig()
        cfg = self.config
        #: telemetry sink shared with every engine the campaign drives;
        #: the default no-op tracer keeps untraced runs instrumentation-free
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.factory = RngFactory(cfg.seed, prefix="campaign")
        pdb_ids = tuple(cfg.pdb_ids) or (cfg.pdb_id,)
        if cfg.pdb_id not in pdb_ids:
            pdb_ids = (cfg.pdb_id, *pdb_ids)
        self.receptors: dict[str, Receptor] = {
            pdb: make_receptor(cfg.target, pdb, seed=cfg.receptor_seed)
            for pdb in pdb_ids
        }
        self.receptor: Receptor = self.receptors[cfg.pdb_id]
        if library is not None:
            self.library = library
        elif cfg.library_shards:
            self.library = CompoundLibrary.from_shards(
                list(cfg.library_shards), name="OZD"
            )
        else:
            self.library = generate_library(
                cfg.library_size, seed=self.factory.spawn_seed("library"), name="OZD"
            )
        if len(self.library) <= cfg.seed_train_size:
            raise ValueError(
                "library must hold more compounds than seed_train_size, "
                f"got {len(self.library)} <= {cfg.seed_train_size}"
            )
        self.engines: dict[str, DockingEngine] = {
            pdb: DockingEngine(
                rec, seed=cfg.seed, config=cfg.docking, tracer=self.tracer
            )
            for pdb, rec in self.receptors.items()
        }
        self.engine = self.engines[cfg.pdb_id]
        self._best_structure: dict[str, str] = {}  # compound → pdb id
        self.cost_model = CostModel()
        self.oracle = (
            ReferenceOracle(self.receptor, seed=self.factory.spawn_seed("oracle"))
            if cfg.compute_enrichment
            else None
        )
        self._train_smiles: list[str] = []
        self._train_scores: list[float] = []
        self._docked_ids: set[str] = set()
        self._cg_done_ids: set[str] = set()
        self._entry_by_id = {e.compound_id: e for e in self.library}
        self.failures = FailureSummary()
        self._iter_drops: dict[str, int] = {}  # per-iteration, per-stage
        #: populated by :meth:`iter_units` (and thus :meth:`run`)
        self.result: CampaignResult | None = None

    # ---------------------------------------------------- failure handling
    def _guard(self, stage: str, unit: str, fn):
        """Run one stage work unit under the campaign failure policy.

        Returns the unit's (non-``None``) result, or ``None`` when the
        unit raised and ``drop_and_continue`` dropped it.  Every drop is
        logged, recorded in :attr:`failures`, and charged against the
        per-stage failure budget; ``fail_fast`` re-raises instead.
        """
        try:
            return fn()
        except Exception as exc:  # noqa: BLE001 - stage-task isolation
            if self.config.failure_policy == "fail_fast":
                raise TaskFailedError(
                    f"{stage} unit {unit} failed: {type(exc).__name__}: {exc}"
                ) from exc
            self.failures.record_failure(0.0)
            self.failures.record_drop(stage)
            self._iter_drops[stage] = self._iter_drops.get(stage, 0) + 1
            _log.warning(
                "%s unit %s dropped: %s: %s", stage, unit, type(exc).__name__, exc
            )
            budget = self.config.stage_failure_budget
            if budget is not None and self._iter_drops[stage] > budget:
                raise TaskFailedError(
                    f"stage {stage} failure budget exceeded: "
                    f"{self._iter_drops[stage]} drops this iteration, "
                    f"budget {budget}"
                ) from exc
            return None

    # ------------------------------------------------------------ pieces
    def _dock_batch(self, indices: list[int]) -> list[DockingResult]:
        """Dock against every receptor structure; keep the consensus best.

        A compound whose docking unit fails is dropped (per policy) and
        stays undocked, so a later ML1 round may re-drive it.
        """
        out = []
        for i in indices:
            entry = self.library[i]
            if entry.compound_id in self._docked_ids:
                continue

            def dock_one(entry=entry):
                best_result = None
                best_pdb = None
                for pdb, engine in self.engines.items():
                    result = engine.dock_smiles(entry.smiles, entry.compound_id)
                    if best_result is None or result.score < best_result.score:
                        best_result, best_pdb = result, pdb
                return best_result, best_pdb

            docked = self._guard("S1", entry.compound_id, dock_one)
            if docked is None:
                continue
            best_result, best_pdb = docked
            out.append(best_result)
            self._best_structure[entry.compound_id] = best_pdb
            self._docked_ids.add(entry.compound_id)
            self._train_smiles.append(entry.smiles)
            self._train_scores.append(best_result.score)
        return out

    def _train_surrogate(self) -> TrainedSurrogate:
        return train_surrogate(
            self._train_smiles,
            np.array(self._train_scores),
            self.config.surrogate,
            seed=self.factory.spawn_seed(f"surrogate/{len(self._train_scores)}"),
        )

    def _ml1_select(self, surrogate: TrainedSurrogate) -> list[int]:
        """Rank undocked compounds; keep top fraction + exploration draw."""
        cfg = self.config
        undocked = [
            i
            for i in range(len(self.library))
            if self.library[i].compound_id not in self._docked_ids
        ]
        if not undocked:
            return []
        inference = InferenceEngine(
            surrogate, engine=cfg.ml1_engine, tracer=self.tracer
        )
        scored = inference.score_smiles(
            [self.library[i].smiles for i in undocked],
            ids=[str(i) for i in undocked],
        )
        ranked = sorted(scored, key=lambda s: s.score, reverse=True)
        n_keep = max(1, int(round(cfg.ml1_keep_fraction * len(ranked))))
        chosen = [int(s.compound_id) for s in ranked[:n_keep]]
        # exploration: uniform draw from the remainder (the RES-motivated
        # hedge against the surrogate's rank errors)
        rest = [int(s.compound_id) for s in ranked[n_keep:]]
        n_explore = int(round(cfg.ml1_explore_fraction * n_keep))
        if rest and n_explore:
            rng = self.factory.stream(f"explore/{len(self._docked_ids)}")
            picks = rng.choice(len(rest), size=min(n_explore, len(rest)), replace=False)
            chosen.extend(rest[int(p)] for p in picks)
        return chosen

    def _select_for_cg(self) -> list[DockingResult]:
        """Diversity-pick among the best docked, not-yet-CG'd compounds."""
        cfg = self.config
        candidates = sorted(
            (
                (cid, score)
                for cid, score in self._score_by_id().items()
                if cid not in self._cg_done_ids
            ),
            key=lambda t: t[1],
        )
        pool = [cid for cid, _ in candidates[: 3 * cfg.cg_compounds]]
        if not pool:
            return []
        if len(pool) > cfg.cg_compounds:
            from repro.chem.fingerprint import morgan_fingerprint

            fps = np.stack(
                [
                    morgan_fingerprint(parse_smiles(self._entry_by_id[cid].smiles))
                    for cid in pool
                ]
            )
            picked = [pool[i] for i in diversity_pick(fps, cfg.cg_compounds)]
        else:
            picked = pool
        by_id = {r.compound_id: r for r in self._all_dock_results}
        return [by_id[cid] for cid in picked]

    def _score_by_id(self) -> dict[str, float]:
        return {r.compound_id: r.score for r in self._all_dock_results}

    # ------------------------------------------------------------- the loop
    def iter_units(self) -> Iterator[StageUnit]:
        """Decompose the campaign into its sequence of resumable stage units.

        Yields :class:`StageUnit` objects in execution order: a ``seed``
        bootstrap unit, then ML1 → S1 → S3-CG → S2 → S3-FG → ``retrain``
        per iteration (S3-FG is skipped when S2 selected nothing, exactly
        as the monolithic loop skipped its span).  The next unit is built
        only after the previous one's :meth:`StageUnit.complete` ran —
        stage sizes depend on upstream science.  Driving every unit
        back-to-back is :meth:`run`; an external driver (the multi-tenant
        campaign service) instead schedules each unit's simulated cost on
        a shared pilot, checkpoints between units, and fast-forwards
        completed units on resume.
        """
        cfg = self.config
        result = CampaignResult(config=cfg, library=self.library)
        self.result = result
        self._all_dock_results: list[DockingResult] = []
        state: dict = {}

        def checked(unit: StageUnit) -> Iterator[StageUnit]:
            yield unit
            if not unit.done:
                raise RuntimeError(
                    f"stage unit {unit.unit_id!r} must be completed before "
                    "the next unit is requested"
                )

        def seed_science() -> None:
            # bootstrap: random seed set docked, first surrogate trained
            seed_rng = self.factory.stream("seed-set")
            seed_idx = seed_rng.choice(
                len(self.library), size=cfg.seed_train_size, replace=False
            )
            seed_docked = self._dock_batch([int(i) for i in seed_idx])
            self._all_dock_results.extend(seed_docked)
            state["surrogate"] = self._train_surrogate()

        yield from checked(StageUnit("seed", -1, cfg.seed_train_size, seed_science))

        for it in range(cfg.iterations):
            _log.info("iteration %d starting", it)
            self._iter_drops = {}  # the failure budget is per iteration
            metrics = CampaignMetrics(iteration=it)
            ictx: dict = {}  # hand-offs between this iteration's units

            # ---------------------------------------------------------- ML1
            def ml1_science(it=it, metrics=metrics, ictx=ictx) -> None:
                # stage boundaries are manual spans on the tracer's own clock
                # (TickClock in deterministic runs), closed after accounting
                stage_span = self.tracer.start_span(
                    "stage:ML1", category="campaign.stage", iteration=it
                )
                t0 = _clock.now()
                selected = self._ml1_select(state["surrogate"])
                ml1_wall = _clock.now() - t0
                n_ranked = len(self.library) - len(self._docked_ids) + len(selected)
                stage_span.set_attr("n_ligands", n_ranked)
                stage_span.finish()
                metrics.stages["ML1"] = StageAccounting(
                    stage="ML1",
                    n_ligands=n_ranked,
                    wall_seconds=ml1_wall,
                    node_hours=self.cost_model.ml1_wall_seconds(n_ranked)
                    / 3600.0
                    / self.cost_model.node.gpus,
                )
                ictx["selected"] = selected

            n_undocked = len(self.library) - len(self._docked_ids)
            yield from checked(StageUnit("ML1", it, n_undocked, ml1_science))

            # ----------------------------------------------------------- S1
            def s1_science(it=it, metrics=metrics, ictx=ictx) -> None:
                selected = ictx["selected"]
                _log.info("S1: docking %d ML1-selected compounds", len(selected))
                stage_span = self.tracer.start_span(
                    "stage:S1", category="campaign.stage", iteration=it
                )
                t0 = _clock.now()
                docked = self._dock_batch(selected)
                self._all_dock_results.extend(docked)
                s1_wall = _clock.now() - t0
                stage_span.set_attr("n_ligands", len(docked))
                stage_span.finish()
                metrics.stages["S1"] = StageAccounting(
                    stage="S1",
                    n_ligands=len(docked),
                    wall_seconds=s1_wall,
                    node_hours=len(docked)
                    * self.cost_model.node_hours_per_ligand("S1"),
                )
                ictx["docked"] = docked

            yield from checked(
                StageUnit("S1", it, len(ictx["selected"]), s1_science)
            )

            # -------------------------------------------------------- S3-CG
            # the diversity pick is a cheap read-only selection, so it runs
            # at unit-build time and fixes the unit's size exactly
            cg_inputs = self._select_for_cg()
            _log.info("S3-CG: %d diversity-picked compounds", len(cg_inputs))
            # group compounds by the crystal structure that docked them
            # best; every downstream stage runs against that structure
            groups: dict[str, list[DockingResult]] = {}
            for dock in cg_inputs:
                pdb = self._best_structure.get(dock.compound_id, cfg.pdb_id)
                groups.setdefault(pdb, []).append(dock)

            def cg_science(it=it, metrics=metrics, ictx=ictx, groups=groups) -> None:
                stage_span = self.tracer.start_span(
                    "stage:S3-CG", category="campaign.stage", iteration=it
                )
                t0 = _clock.now()
                cg_results: list[EsmacsResult] = []
                cg_by_pdb: dict[str, list[EsmacsResult]] = {}
                ligand_atoms: dict[str, np.ndarray] = {}
                reference_by_pdb: dict[str, np.ndarray] = {}
                for pdb, docks in groups.items():
                    receptor = self.receptors[pdb]
                    runner_cg = EsmacsRunner(
                        receptor, cfg.cg, seed=self.factory.spawn_seed(f"cg/{it}/{pdb}")
                    )
                    for dock in docks:

                        def cg_one(dock=dock, receptor=receptor, runner_cg=runner_cg, pdb=pdb):
                            mol = parse_smiles(dock.smiles)
                            coords = self.engines[pdb].pose_coordinates(dock)
                            res = runner_cg.run(mol, coords, dock.compound_id)
                            system = build_lpc(
                                receptor, mol, coords, seed=cfg.seed,
                                n_residues=cfg.cg.n_residues,
                            )
                            return res, system

                        unit = self._guard("S3-CG", dock.compound_id, cg_one)
                        if unit is None:
                            continue
                        res, system = unit
                        cg_results.append(res)
                        cg_by_pdb.setdefault(pdb, []).append(res)
                        self._cg_done_ids.add(dock.compound_id)
                        ligand_atoms[dock.compound_id] = system.topology.ligand_atoms
                        reference_by_pdb[pdb] = system.positions[
                            system.topology.protein_atoms
                        ]
                cg_wall = _clock.now() - t0
                stage_span.set_attr("n_ligands", len(cg_results))
                stage_span.finish()
                metrics.stages["S3-CG"] = StageAccounting(
                    stage="S3-CG",
                    n_ligands=len(cg_results),
                    wall_seconds=cg_wall,
                    node_hours=len(cg_results)
                    * self.cost_model.node_hours_per_ligand("S3-CG"),
                )
                ictx["cg_results"] = cg_results
                ictx["cg_by_pdb"] = cg_by_pdb
                ictx["ligand_atoms"] = ligand_atoms
                ictx["reference_by_pdb"] = reference_by_pdb

            yield from checked(StageUnit("S3-CG", it, len(cg_inputs), cg_science))

            # ------------------------------------------------------------ S2
            def s2_science(it=it, metrics=metrics, ictx=ictx) -> None:
                cg_by_pdb = ictx["cg_by_pdb"]
                ligand_atoms = ictx["ligand_atoms"]
                reference_by_pdb = ictx["reference_by_pdb"]
                # one AAE per receptor structure, as §7.1.3 trains per PDB id
                s2_by_structure: dict[str, S2Result] = {}
                ictx["fg_results"] = []
                ictx["fg_parents"] = []
                stage_span = self.tracer.start_span(
                    "stage:S2", category="campaign.stage", iteration=it
                )
                t0 = _clock.now()
                for pdb, pdb_cg in cg_by_pdb.items():
                    if not pdb_cg:
                        continue

                    def s2_one(
                        pdb=pdb,
                        pdb_cg=pdb_cg,
                        it=it,
                        reference_by_pdb=reference_by_pdb,
                        ligand_atoms=ligand_atoms,
                    ):
                        return run_s2(
                            pdb_cg,
                            reference_by_pdb[pdb],
                            ligand_atoms,
                            AdaptiveConfig(
                                top_compounds=min(cfg.s2_top_compounds, len(pdb_cg)),
                                outliers_per_compound=cfg.s2_outliers_per_compound,
                                lof_neighbors=8,
                            ),
                            seed=self.factory.spawn_seed(f"s2/{it}/{pdb}"),
                        )

                    s2_unit = self._guard("S2", pdb, s2_one)
                    if s2_unit is not None:
                        s2_by_structure[pdb] = s2_unit
                s2_wall = _clock.now() - t0
                stage_span.set_attr(
                    "n_ligands",
                    sum(len(r.top_compound_ids) for r in s2_by_structure.values()),
                )
                stage_span.finish()
                s2_result = None
                if s2_by_structure:
                    s2_result = max(
                        s2_by_structure.values(), key=lambda r: len(r.dataset)
                    )
                    n_s2 = sum(
                        len(r.top_compound_ids) for r in s2_by_structure.values()
                    )
                    metrics.stages["S2"] = StageAccounting(
                        stage="S2",
                        n_ligands=n_s2,
                        wall_seconds=s2_wall,
                        node_hours=n_s2 * self.cost_model.node_hours_per_ligand("S2"),
                    )
                ictx["s2_by_structure"] = s2_by_structure
                ictx["s2_result"] = s2_result

            yield from checked(
                StageUnit("S2", it, len(ictx["cg_by_pdb"]), s2_science)
            )

            # -------------------------------------------------------- S3-FG
            def fg_science(it=it, metrics=metrics, ictx=ictx) -> None:
                s2_by_structure = ictx["s2_by_structure"]
                ligand_atoms = ictx["ligand_atoms"]
                fg_results = ictx["fg_results"]
                fg_parents = ictx["fg_parents"]
                stage_span = self.tracer.start_span(
                    "stage:S3-FG", category="campaign.stage", iteration=it
                )
                t0 = _clock.now()
                for pdb, s2 in s2_by_structure.items():
                    runner_fg = EsmacsRunner(
                        self.receptors[pdb],
                        cfg.fg,
                        seed=self.factory.spawn_seed(f"fg/{it}/{pdb}"),
                    )
                    for sel in s2.selections:

                        def fg_one(sel=sel, runner_fg=runner_fg, ligand_atoms=ligand_atoms):
                            mol = parse_smiles(
                                self._entry_by_id[sel.compound_id].smiles
                            )
                            lig_coords = sel.coordinates[
                                ligand_atoms[sel.compound_id]
                            ]
                            return runner_fg.run(
                                mol,
                                lig_coords,
                                f"{sel.compound_id}/r{sel.replica}f{sel.frame}",
                                keep_trajectories=False,
                            )

                        fg_unit = self._guard(
                            "S3-FG",
                            f"{sel.compound_id}/r{sel.replica}f{sel.frame}",
                            fg_one,
                        )
                        if fg_unit is None:
                            continue
                        fg_results.append(fg_unit)
                        fg_parents.append(sel.compound_id)
                fg_wall = _clock.now() - t0
                stage_span.set_attr("n_ligands", len(fg_results))
                stage_span.finish()
                metrics.stages["S3-FG"] = StageAccounting(
                    stage="S3-FG",
                    n_ligands=len(fg_results),
                    wall_seconds=fg_wall,
                    node_hours=len(fg_results)
                    * self.cost_model.node_hours_per_ligand("S3-FG"),
                )

            if ictx["s2_by_structure"]:
                n_fg = sum(
                    len(s2.selections) for s2 in ictx["s2_by_structure"].values()
                )
                yield from checked(StageUnit("S3-FG", it, n_fg, fg_science))

            # --------------------------------------------------- retrain
            def retrain_science(it=it, metrics=metrics, ictx=ictx) -> None:
                if self.oracle is not None:
                    # cumulative enrichment: how well has the campaign as a
                    # whole concentrated the true top compounds so far
                    true_top = self.oracle.true_top_ids(self.library, 0.10)
                    if self._docked_ids:
                        metrics.enrichment_s1 = enrichment_factor(
                            set(self._docked_ids), true_top, len(self.library)
                        )
                    if self._cg_done_ids:
                        metrics.enrichment_cg = enrichment_factor(
                            set(self._cg_done_ids), true_top, len(self.library)
                        )
                    metrics.effective_ligands = len(self._cg_done_ids & true_top)

                # the upstream feedback: retrain on everything docked so far
                surrogate = self._train_surrogate()
                state["surrogate"] = surrogate
                if surrogate.val_losses:
                    metrics.surrogate_val_loss = surrogate.val_losses[-1]
                metrics.publish(self.tracer.metrics)

                result.iterations.append(
                    IterationResult(
                        iteration=it,
                        docked=ictx["docked"],
                        cg_results=ictx["cg_results"],
                        s2_result=ictx["s2_result"],
                        fg_results=ictx["fg_results"],
                        fg_parents=ictx["fg_parents"],
                        metrics=metrics,
                        s2_by_structure=ictx["s2_by_structure"],
                    )
                )

            yield from checked(StageUnit("retrain", it, 1, retrain_science))

        result.surrogate = state["surrogate"]
        result.docked_scores = self._score_by_id()
        result.failure_summary = self.failures
        if self.failures.n_dropped:
            _log.warning("campaign finished with drops: %s", self.failures.summary())

    def run(self) -> CampaignResult:
        """Execute to completion and return the results.

        Equivalent to driving :meth:`iter_units` back-to-back: same
        statement order, same RNG stream keys, same tracer spans — the
        monolithic loop of earlier versions, now expressed over units.
        """
        for unit in self.iter_units():
            unit.complete()
        assert self.result is not None
        return self.result
