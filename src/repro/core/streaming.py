"""Streamed, checkpointed ML1 → S1 screen over an on-disk sharded library.

This is §6.1.1 at campaign scale: the library lives on disk as gzip
shards (NDJSON or legacy pickle), ML1 streams them through the compiled
surrogate one shard at a time, the top predicted compounds go to S1
docking in :class:`~repro.docking.ligand.LigandBeads` packs via the fused
LGA, and every completed shard — scored or docked — is durably recorded
in a checkpoint manifest.  Kill the process anywhere; rerunning the same
command resumes from the last completed shard without rescoring or
redocking, and the final output is byte-for-byte identical to an
uninterrupted run.

Memory is bounded by construction: one shard of records, one padded
feature batch, one packed docking shard, and a fixed-size top-K
selection heap are the only per-run state that scales with anything —
and none of it scales with library size.

Determinism ties the streamed path to the materialized one:

* padded fixed-size ML1 batches make scores split-invariant (PR 4), so
  per-shard scoring equals whole-library scoring bit-for-bit;
* per-compound docking RNG streams make the shard cut invisible (PR 3);
* top-K selection uses the key ``(-score, arrival index)``, which is
  exactly a stable descending sort — the same compounds, in the same
  order, as ``InferenceEngine.top_fraction`` over the full score table.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.docking.batch import dock_stream
from repro.docking.engine import DockingEngine, DockingResult
from repro.surrogate.infer import InferenceEngine, ScoredCompound
from repro.surrogate.train import TrainedSurrogate
from repro.telemetry import NULL_TRACER, Tracer
from repro.util.checkpoint import CheckpointManifest
from repro.util.log import get_logger

__all__ = ["StreamedScreenResult", "run_streamed_screen"]

_log = get_logger("core.streaming")


@dataclass
class StreamedScreenResult:
    """Everything a streamed screen produced, plus resume accounting."""

    selected: list[ScoredCompound]  # ML1 top-K, rank order
    docked: list[DockingResult]  # S1 results, selection order
    records_streamed: int = 0
    shards_total: int = 0
    shards_resumed: int = 0  # ML1 shards reloaded from the checkpoint
    dock_shards_total: int = 0
    dock_shards_resumed: int = 0
    stats: dict = field(default_factory=dict)


class _TopK:
    """Bounded top-K selection equal to a stable descending sort.

    Keeps the K best ``(score, -arrival)`` pairs in a min-heap; ties on
    score resolve to earliest arrival, exactly like
    ``sorted(key=score, reverse=True)`` over the full stream.  Memory is
    O(K) however many records flow past.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("keep_top must be positive")
        self.k = k
        self._heap: list[tuple[float, int, ScoredCompound]] = []
        self._n = 0

    def offer(self, item: ScoredCompound) -> None:
        key = (item.score, -self._n)
        self._n += 1
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (*key, item))
        elif key > self._heap[0][:2]:
            heapq.heapreplace(self._heap, (*key, item))

    def ranked(self) -> list[ScoredCompound]:
        """Best first; equal scores in arrival order."""
        return [
            item
            for _score, _neg, item in sorted(
                self._heap, key=lambda t: t[:2], reverse=True
            )
        ]


def run_streamed_screen(
    engine: DockingEngine,
    surrogate: TrainedSurrogate,
    shard_paths: Sequence[Path | str],
    keep_top: int,
    checkpoint_dir: Path | str | None = None,
    dock_shard_size: int = 16,
    batch_size: int = 64,
    ml1_engine: str = "graph",
    tracer: Tracer | None = None,
    on_shard: Callable[[str, str], None] | None = None,
) -> StreamedScreenResult:
    """Run the streamed ML1 → S1 screen; resumable when checkpointed.

    Parameters
    ----------
    engine:
        Docking engine for S1 (its seed fixes every pose).
    surrogate:
        Trained ML1 surrogate used for ranking.
    shard_paths:
        On-disk library shards, in library order.
    keep_top:
        How many top-predicted compounds S1 docks.
    checkpoint_dir:
        When set, holds ``ml1-manifest.jsonl`` / ``s1-manifest.jsonl``
        and per-shard result artifacts; reruns resume from the last
        completed shard.  ``None`` streams without checkpoints.
    on_shard:
        Optional ``callback(stage, shard_id)`` invoked after each shard
        completes (``stage`` is ``"ml1"`` or ``"s1"``) — progress
        reporting, and the hook the kill/resume tests use to die
        mid-run.

    Scores and poses are bit-identical to the materialized path
    (``score_shards`` over everything, stable sort, one big
    ``dock_entries``) and to any interrupted-and-resumed execution.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    result = StreamedScreenResult(selected=[], docked=[])

    ml1_ckpt = s1_ckpt = None
    ml1_art = s1_art = None
    if checkpoint_dir is not None:
        checkpoint_dir = Path(checkpoint_dir)
        ml1_art = checkpoint_dir / "ml1"
        s1_art = checkpoint_dir / "s1"
        ml1_ckpt = CheckpointManifest(checkpoint_dir / "ml1-manifest.jsonl")
        s1_ckpt = CheckpointManifest(checkpoint_dir / "s1-manifest.jsonl")

    # ---------------------------------------------------------------- ML1
    inference = InferenceEngine(
        surrogate, batch_size=batch_size, engine=ml1_engine, tracer=tracer
    )
    top = _TopK(keep_top)
    with tracer.span("stage:ML1-stream", category="campaign.stage"):
        for shard_id, scored in inference.iter_score_shards(
            shard_paths, checkpoint=ml1_ckpt, artifact_dir=ml1_art
        ):
            for item in scored:
                top.offer(item)
            result.records_streamed += len(scored)
            result.shards_total += 1
            if on_shard is not None:
                on_shard("ml1", shard_id)
    result.shards_resumed = inference.shards_resumed
    result.selected = top.ranked()
    _log.info(
        "ML1 stream: %d records in %d shards (%d resumed), keeping top %d",
        result.records_streamed,
        result.shards_total,
        result.shards_resumed,
        len(result.selected),
    )

    # ----------------------------------------------------------------- S1
    entries = [(s.smiles, s.compound_id) for s in result.selected]
    shards = [
        entries[start : start + dock_shard_size]
        for start in range(0, len(entries), dock_shard_size)
    ]
    pre_done = set(s1_ckpt.completed()) if s1_ckpt is not None else set()
    with tracer.span("stage:S1-stream", category="campaign.stage"):
        for shard_id, docked in dock_stream(
            engine, shards, checkpoint=s1_ckpt, artifact_dir=s1_art, tracer=tracer
        ):
            result.docked.extend(docked)
            result.dock_shards_total += 1
            if shard_id in pre_done:
                result.dock_shards_resumed += 1
            if on_shard is not None:
                on_shard("s1", shard_id)
    result.stats = {
        "records_streamed": result.records_streamed,
        "shards_total": result.shards_total,
        "shards_resumed": result.shards_resumed,
        "dock_shards_total": result.dock_shards_total,
        "dock_shards_resumed": result.dock_shards_resumed,
    }
    _log.info(
        "S1 stream: %d compounds docked in %d shards",
        len(result.docked),
        result.dock_shards_total,
    )
    return result
