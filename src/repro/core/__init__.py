"""The IMPECCABLE campaign core: the integrated loop, cost model,
ground-truth oracle and performance metrics."""

from repro.core.campaign import (
    CampaignConfig,
    CampaignResult,
    ImpeccableCampaign,
    IterationResult,
    StageUnit,
)
from repro.core.costs import PAPER_TABLE2, CostModel
from repro.core.metrics import (
    CampaignMetrics,
    StageAccounting,
    enrichment_factor,
    throughput,
)
from repro.core.simulate import (
    SimulatedCampaignConfig,
    build_integrated_pipelines,
    simulate_integrated_run,
)
from repro.core.streaming import StreamedScreenResult, run_streamed_screen
from repro.core.tracedemo import run_traced_demo
from repro.core.truth import ReferenceOracle

__all__ = [
    "CampaignConfig",
    "CampaignMetrics",
    "CampaignResult",
    "CostModel",
    "ImpeccableCampaign",
    "IterationResult",
    "PAPER_TABLE2",
    "ReferenceOracle",
    "SimulatedCampaignConfig",
    "StageAccounting",
    "StageUnit",
    "StreamedScreenResult",
    "build_integrated_pipelines",
    "enrichment_factor",
    "run_streamed_screen",
    "run_traced_demo",
    "simulate_integrated_run",
    "throughput",
]
