"""Streaming, compressed, prefetching data pipeline.

§6.1.1 describes ML1's inference IO in detail: the library arrives as
thousands of gzip-compressed shards; each rank stages its shard set,
then one prefetch thread loads+decompresses files while a second
iterates the decompressed records and feeds the network, glued together
with thread-safe queues and "careful exception handling to make the setup
resilient against sporadic IO errors".  This module is that pipeline.

Shards may be either of the two library formats — legacy gzip-pickle or
streaming gzip NDJSON (see :mod:`repro.util.shardio`); the reader
dispatches on the filename.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro.util.shardio import SHARD_READ_ERRORS, read_shard

__all__ = ["ShardReader", "PrefetchLoader", "partition_shards"]

_END = object()

#: how often a blocked producer re-checks the consumer's stop flag
_PUT_POLL_SECONDS = 0.05


def partition_shards(paths: Sequence[Path | str], rank: int, world: int) -> list[Path]:
    """Distribute shard files evenly across ``world`` ranks (MPI-style).

    Rank ``r`` takes files ``r, r+world, r+2·world, …`` — the same
    round-robin distribution the paper uses to bind shards to GPUs.
    """
    if world <= 0 or not 0 <= rank < world:
        raise ValueError(f"invalid rank/world: {rank}/{world}")
    return [Path(p) for i, p in enumerate(paths) if i % world == rank]


@dataclass
class LoaderStats:
    """Observability for the pipeline (errors are counted, not fatal)."""

    shards_read: int = 0
    records_yielded: int = 0
    io_errors: int = 0
    shards_staged: int = 0


class ShardReader:
    """Iterates records from gzip shards (pickle or NDJSON) with resilience.

    A shard that fails to read (corrupt gzip, truncated pickle, malformed
    NDJSON, missing file) increments ``stats.io_errors`` and is skipped —
    the paper's "resilient against sporadic IO errors" behaviour — unless
    ``strict=True``.

    ``staging_dir`` enables the §6.1.1 staging step ("each rank stages
    its assigned shard of the data from GPFS into node-local NVME"):
    each shard is copied into the staging directory before being read,
    and subsequent passes read the staged copy.  Staging is crash-safe:
    the copy lands under a temp name and is moved into place atomically,
    so an interrupted copy can never leave a truncated staged file that
    later passes would silently trust.
    """

    def __init__(
        self,
        paths: Sequence[Path | str],
        strict: bool = False,
        staging_dir: Path | str | None = None,
    ) -> None:
        self.paths = [Path(p) for p in paths]
        self.strict = strict
        self.staging_dir = Path(staging_dir) if staging_dir is not None else None
        self.stats = LoaderStats()

    def _resolve(self, path: Path) -> Path:
        if self.staging_dir is None:
            return path
        import os
        import shutil

        self.staging_dir.mkdir(parents=True, exist_ok=True)
        staged = self.staging_dir / path.name
        if not staged.exists():
            tmp = staged.with_name(staged.name + ".staging")
            try:
                shutil.copyfile(path, tmp)
                os.replace(tmp, staged)
            except BaseException:
                tmp.unlink(missing_ok=True)
                raise
            self.stats.shards_staged += 1
        return staged

    def __iter__(self) -> Iterator:
        for path in self.paths:
            try:
                local = self._resolve(path)
                records = read_shard(local)
            except SHARD_READ_ERRORS:
                if self.strict:
                    raise
                self.stats.io_errors += 1
                continue
            self.stats.shards_read += 1
            for rec in records:
                self.stats.records_yielded += 1
                yield rec


class PrefetchLoader:
    """Two-stage threaded prefetcher: decompress thread → batch thread.

    Stage 1 (IO thread) reads and decompresses shards into a bounded
    record queue.  Stage 2 (this iterator) assembles fixed-size batches,
    applying ``transform`` per record (e.g. SMILES → image featurization)
    so featurization overlaps IO — the §6.1.1 design.

    Concurrency contract:

    * Abandoning iteration early (``break``) releases the producer: its
      queue puts poll the stop flag instead of blocking forever on a
      full queue, so ``worker.join`` always succeeds and no thread leaks.
    * A producer-side exception (e.g. a corrupt shard under
      ``strict=True``) is captured and re-raised in the consumer — a
      truncated stream is an error, never a clean end-of-data.
    """

    def __init__(
        self,
        reader: ShardReader,
        batch_size: int,
        transform: Callable | None = None,
        queue_depth: int = 64,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.reader = reader
        self.batch_size = batch_size
        self.transform = transform
        self.queue_depth = queue_depth

    def _producer(
        self,
        q: queue.Queue,
        stop: threading.Event,
        errors: list[BaseException],
    ) -> None:
        def offer(item) -> bool:
            """Put honoring ``stop``: poll so an abandoned consumer with a
            full queue can never wedge this thread."""
            while not stop.is_set():
                try:
                    q.put(item, timeout=_PUT_POLL_SECONDS)
                    return True
                except queue.Full:
                    continue
            return False

        try:
            for rec in self.reader:
                if not offer(rec):
                    return
        except Exception as exc:  # noqa: BLE001 - relayed to the consumer
            errors.append(exc)
        finally:
            offer(_END)

    def __iter__(self) -> Iterator[list]:
        q: queue.Queue = queue.Queue(maxsize=self.queue_depth)
        stop = threading.Event()
        errors: list[BaseException] = []
        worker = threading.Thread(
            target=self._producer,
            args=(q, stop, errors),
            daemon=True,
            name="shard-prefetch",
        )
        worker.start()
        try:
            batch: list = []
            while True:
                rec = q.get()
                if rec is _END:
                    break
                batch.append(self.transform(rec) if self.transform else rec)
                if len(batch) == self.batch_size:
                    yield batch
                    batch = []
            if errors:
                raise errors[0]
            if batch:
                yield batch
        finally:
            stop.set()
            worker.join(timeout=5.0)
