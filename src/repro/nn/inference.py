"""Compiled inference: graph-free forward passes with optional FP16.

The paper deploys ML1 through TensorRT at FP16 to use the V100 tensor
cores (§6.1.1).  The NumPy analogue: strip the autograd graph (weights
frozen into plain arrays) and run the whole forward pass in half
precision.  :class:`CompiledModel` plays the role of the torch2trt export
— same predictions (to FP16 tolerance), a fraction of the cost.

Two engines share that contract:

``"graph"`` (default)
    the :mod:`repro.nn.graph` path — trace to an op graph, fuse, plan a
    buffer arena, execute with ``out=`` kernels.  The TensorRT-style
    build; several times faster at batch sizes the campaign uses.

``"eager"``
    the original closure-per-layer interpreter, kept verbatim below as
    the reference oracle.  Graph execution is bit-identical to it at the
    same batch size and precision — enforced by probe-gated kernel
    selection and asserted by the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.nn.graph.executor import GraphExecutor
from repro.nn.graph.ir import freeze_module, resolve_precision, trace_frozen
from repro.nn.graph.passes import optimize
from repro.nn.layers import (
    BatchNorm,
    Conv2d,
    Dense,
    Flatten,
    GlobalAvgPool2d,
    LeakyReLU,
    MaxPool2d,
    Module,
    PointwiseDense,
    ReLU,
    ResidualBlock,
    Sequential,
    Sigmoid,
    Tanh,
)

__all__ = ["CompiledModel", "compile_model"]


class CompiledModel:
    """Graph-free forward pass of a compiled module tree."""

    def __init__(
        self,
        store_dtype: np.dtype,
        compute_dtype: np.dtype,
        engine: str,
        fn=None,
        frozen=None,
        tracer=None,
    ) -> None:
        self.store_dtype = store_dtype
        self.compute_dtype = compute_dtype
        self.engine = engine
        self._fn = fn
        self._frozen = frozen
        self._tracer = tracer
        self._executors: dict[tuple[int, ...], GraphExecutor] = {}

    def __call__(self, x: np.ndarray) -> np.ndarray:
        # quantize the input to the storage precision, compute wider —
        # the tensor-core model (FP16 operands, FP32 accumulate)
        x = np.asarray(x).astype(self.store_dtype).astype(self.compute_dtype)
        if self.engine == "eager":
            return self._fn(x).astype(np.float64)
        return self.executor_for(x.shape[1:]).run(x).astype(np.float64)

    def executor_for(self, sample_shape: tuple[int, ...]) -> GraphExecutor:
        """The (lazily traced and optimized) executor for one input shape."""
        key = tuple(int(d) for d in sample_shape)
        executor = self._executors.get(key)
        if executor is None:
            graph = trace_frozen(
                self._frozen, key, self.store_dtype, self.compute_dtype
            )
            graph, self.pass_stats = optimize(graph)
            executor = self._executors[key] = GraphExecutor(
                graph, tracer=self._tracer
            )
        return executor


def compile_model(
    model: Module,
    precision: str = "fp16",
    engine: str = "graph",
    tracer=None,
) -> CompiledModel:
    """Compile a module tree into a pure-NumPy inference function.

    Parameters
    ----------
    model:
        A model built from the layers in :mod:`repro.nn.layers`.
    precision:
        ``"fp16"`` (default) quantizes weights and inputs to half
        precision and accumulates in FP32 — the V100 tensor-core
        behaviour the paper exploits via TensorRT.  ``"fp32"`` keeps full
        single precision.  (NumPy has no hardware FP16 arithmetic, so
        computing *in* float16 would be both slower and less faithful
        than quantize-then-accumulate.)
    engine:
        ``"graph"`` (default) for the fused, arena-planned executor;
        ``"eager"`` for the closure-per-layer reference interpreter.
        Predictions are bit-identical between the two at any given batch
        size.
    """
    store, compute = resolve_precision(precision)
    if engine == "graph":
        return CompiledModel(
            store,
            compute,
            engine,
            frozen=freeze_module(model, store, compute),
            tracer=tracer,
        )
    if engine == "eager":
        return CompiledModel(
            store, compute, engine, fn=_compile(model, _Precision(store, compute))
        )
    raise ValueError(f"engine must be 'graph' or 'eager', got {engine!r}")


class _Precision:
    """Weight-quantization policy handed down the compile recursion."""

    def __init__(self, store: np.dtype, compute: np.dtype) -> None:
        self.store = store
        self.compute = compute

    def quantize(self, arr: np.ndarray) -> np.ndarray:
        """Round-trip an array through the storage precision."""
        return arr.astype(self.store).astype(self.compute)


def _compile(module: Module, prec: "_Precision"):
    """Recursively translate a module into a closure over frozen weights."""
    if isinstance(module, Sequential):
        fns = [_compile(m, prec) for m in module.layers]

        def seq(x):
            for f in fns:
                x = f(x)
            return x

        return seq

    if isinstance(module, ResidualBlock):
        body = _compile(module.body, prec)
        proj = _compile(module.projection, prec) if module.projection else None

        def res(x):
            skip = proj(x) if proj else x
            return np.maximum(body(x) + skip, 0)

        return res

    if isinstance(module, (Dense, PointwiseDense)):
        w = prec.quantize(module.weight.data)
        b = prec.quantize(module.bias.data)
        return lambda x: x @ w + b

    if isinstance(module, Conv2d):
        w = prec.quantize(module.weight.data)
        b = prec.quantize(module.bias.data).reshape(1, -1, 1)
        kernel, stride, padding = module.kernel, module.stride, module.padding

        def conv(x):
            bsz, c, h, w_in = x.shape
            if padding:
                x = np.pad(
                    x, [(0, 0), (0, 0), (padding, padding), (padding, padding)]
                )
            hp, wp = h + 2 * padding, w_in + 2 * padding
            idx = module._gather_indices(c, hp, wp)
            cols = x.reshape(bsz, c * hp * wp)[:, idx]
            out = w @ cols + b
            oh = (hp - kernel) // stride + 1
            ow = (wp - kernel) // stride + 1
            return out.reshape(bsz, w.shape[0], oh, ow)

        return conv

    if isinstance(module, MaxPool2d):
        k = module.kernel

        def pool(x):
            bsz, c, h, w_in = x.shape
            return x.reshape(bsz, c, h // k, k, w_in // k, k).max(axis=(3, 5))

        return pool

    if isinstance(module, GlobalAvgPool2d):
        return lambda x: x.mean(axis=(2, 3))

    if isinstance(module, Flatten):
        return lambda x: x.reshape(x.shape[0], -1)

    if isinstance(module, ReLU):
        return lambda x: np.maximum(x, 0)

    if isinstance(module, LeakyReLU):
        slope = prec.compute(module.slope)
        return lambda x: np.where(x > 0, x, slope * x)

    if isinstance(module, Tanh):
        return np.tanh

    if isinstance(module, Sigmoid):
        return lambda x: 1.0 / (1.0 + np.exp(-x))

    if isinstance(module, BatchNorm):
        scale64 = module.gamma.data / np.sqrt(module.running_var + module.eps)
        shift64 = module.beta.data - module.running_mean * scale64
        scale = prec.quantize(scale64)
        shift = prec.quantize(shift64)

        def bn(x):
            if x.ndim == 4:
                return x * scale.reshape(1, -1, 1, 1) + shift.reshape(1, -1, 1, 1)
            return x * scale + shift

        return bn

    raise TypeError(f"cannot compile module of type {type(module).__name__}")
