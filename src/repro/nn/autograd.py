"""Reverse-mode automatic differentiation on NumPy arrays.

A tensor-valued, micrograd-style engine with one deliberate design rule:
**every vector–Jacobian product is itself expressed in tensor ops**, never
in raw NumPy.  Backward passes therefore build a differentiable graph of
their own, so ``grad(..., create_graph=True)`` supports double
backpropagation — which the 3D-AAE's WGAN gradient penalty (∂/∂θ of
‖∂D/∂x‖) requires, exactly as PyTorch provides it to the paper's S2 stage.

The engine is small but complete for this library's models: dense and
convolutional networks (via pad/take/matmul), PointNet-style max pooling,
and the Chamfer/Wasserstein losses.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "Tape",
    "as_tensor",
    "default_dtype",
    "grad",
    "no_grad",
    "concatenate",
    "stack",
    "tape_side_effect",
]

_grad_enabled = True
_dtype = np.float64


class no_grad:
    """Context manager disabling graph construction (fast inference)."""

    def __enter__(self):
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc):
        global _grad_enabled
        _grad_enabled = self._prev


class default_dtype:
    """Context manager setting the dtype new tensors are created with.

    Training runs in float64 by default (the precision the bit-identity
    contracts are stated at); entering ``default_dtype(np.float32)``
    builds models and tapes whose every tensor — parameters, activations,
    masks, gradients — is float32, so fp32 trajectories are well-defined
    for both the eager engine and the compiled one.
    """

    def __init__(self, dtype) -> None:
        self._dtype = np.dtype(dtype).type

    def __enter__(self):
        global _dtype
        self._prev = _dtype
        _dtype = self._dtype
        return self

    def __exit__(self, *exc):
        global _dtype
        _dtype = self._prev


class Tape:
    """Recorder of primitive ops in execution order.

    While a tape is active (``with Tape() as t:``), every primitive —
    including the ops that vector–Jacobian products execute during
    ``backward()`` — appends ``(op, inputs, out, attrs)`` to
    ``t.records``.  Because VJPs are themselves tensor ops, recording one
    eager training step captures the *entire* fwd+bwd computation in the
    exact order the eager engine ran it; replaying the records therefore
    reproduces the step bit-for-bit.  Records hold strong references to
    their tensors so ``id()`` reuse can never alias two distinct nodes.

    Data-dependent values that eager ops compute internally (ReLU masks,
    max tie-splitting masks, signs) are recorded as explicit aux ops so a
    replay can recompute them for new inputs.
    """

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: list[tuple] = []

    def __enter__(self):
        global _tape
        if _tape is not None:
            raise RuntimeError("another Tape is already recording")
        _tape = self
        return self

    def __exit__(self, *exc):
        global _tape
        _tape = None


_tape: Tape | None = None


def _rec(op: str, inputs: tuple, out, **attrs) -> None:
    t = _tape
    if t is not None:
        t.records.append((op, inputs, out, attrs))


def tape_side_effect(op: str, inputs: tuple, **attrs) -> None:
    """Record a non-tensor side effect (e.g. BatchNorm running stats)."""
    _rec(op, inputs, None, **attrs)


class Tensor:
    """A NumPy array plus autograd bookkeeping.

    Attributes
    ----------
    data:
        The underlying ``np.ndarray`` (float64 by default).
    requires_grad:
        Whether gradients should flow to this tensor.
    grad:
        Populated by :func:`grad` / :meth:`backward`; a ``Tensor`` (so
        higher-order differentiation can continue through it).
    """

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_vjps")
    __array_priority__ = 100  # numpy defers binary ops to us

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _vjps: tuple[Callable[["Tensor"], "Tensor"], ...] = (),
    ) -> None:
        self.data = np.asarray(data, dtype=_dtype)
        self.requires_grad = requires_grad and _grad_enabled
        self.grad: Tensor | None = None
        self._parents = _parents if self.requires_grad else ()
        self._vjps = _vjps if self.requires_grad else ()

    # ------------------------------------------------------------- basics
    @property
    def shape(self) -> tuple[int, ...]:
        """Array shape of the underlying data."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    def item(self) -> float:
        """The single scalar value as a float."""
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying NumPy array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """A constant copy cut off from the graph."""
        return Tensor(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ---------------------------------------------------------- operators
    def __add__(self, other):
        return add(self, as_tensor(other))

    def __radd__(self, other):
        return add(as_tensor(other), self)

    def __mul__(self, other):
        return mul(self, as_tensor(other))

    def __rmul__(self, other):
        return mul(as_tensor(other), self)

    def __neg__(self):
        return mul(self, Tensor(-1.0))

    def __sub__(self, other):
        return add(self, -as_tensor(other))

    def __rsub__(self, other):
        return add(as_tensor(other), -self)

    def __truediv__(self, other):
        return mul(self, power(as_tensor(other), -1.0))

    def __rtruediv__(self, other):
        return mul(as_tensor(other), power(self, -1.0))

    def __pow__(self, exponent: float):
        return power(self, exponent)

    def __matmul__(self, other):
        return matmul(self, as_tensor(other))

    def __getitem__(self, key):
        return getitem(self, key)

    # --------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims=False):
        """Sum over ``axis`` (all axes by default)."""
        return tensor_sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False):
        """Mean over ``axis`` (all axes by default)."""
        return tensor_mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims=False):
        """Maximum over ``axis`` (ties share gradient)."""
        return tensor_max(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims=False):
        """Minimum over ``axis``."""
        return -tensor_max(-self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        """View with a new shape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return reshape(self, shape)

    def transpose(self, *axes):
        """Permute axes (reverse by default)."""
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return transpose(self, axes or None)

    @property
    def T(self):
        """Transpose (reversed axes)."""
        return transpose(self, None)

    # ----------------------------------------------------------- backward
    def backward(self, gradient: "Tensor | None" = None, create_graph: bool = False):
        """Accumulate gradients of ``self`` into every reachable leaf."""
        grads = grad(
            self,
            leaves=None,
            gradient=gradient,
            create_graph=create_graph,
            _accumulate=True,
        )
        return grads


def as_tensor(x) -> Tensor:
    """Wrap plain data as a constant Tensor (no-op for Tensors)."""
    return x if isinstance(x, Tensor) else Tensor(x)


def _make(data, parents, vjps) -> Tensor:
    requires = _grad_enabled and any(p.requires_grad for p in parents)
    out = Tensor(data, requires_grad=requires)
    if requires:
        kept_parents = []
        kept_vjps = []
        for p, v in zip(parents, vjps):
            if p.requires_grad:
                kept_parents.append(p)
                kept_vjps.append(v)
        out._parents = tuple(kept_parents)
        out._vjps = tuple(kept_vjps)
    return out


# ---------------------------------------------------------------- helpers


def _sum_to_shape(g: Tensor, shape: tuple[int, ...]) -> Tensor:
    """Reduce a broadcast gradient back to ``shape`` (in tensor ops)."""
    if g.shape == shape:
        return g
    # sum over leading extra axes
    extra = g.ndim - len(shape)
    if extra > 0:
        g = tensor_sum(g, axis=tuple(range(extra)))
    # sum over broadcast (size-1) axes
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and g.shape[i] != 1)
    if axes:
        g = tensor_sum(g, axis=axes, keepdims=True)
    return reshape(g, shape)


# --------------------------------------------------------------- elementwise


def add(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise sum with broadcasting."""
    out = _make(
        a.data + b.data,
        (a, b),
        (
            lambda g: _sum_to_shape(g, a.shape),
            lambda g: _sum_to_shape(g, b.shape),
        ),
    )
    _rec("add", (a, b), out)
    return out


def mul(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise product with broadcasting."""
    out = _make(
        a.data * b.data,
        (a, b),
        (
            lambda g: _sum_to_shape(mul(g, b), a.shape),
            lambda g: _sum_to_shape(mul(g, a), b.shape),
        ),
    )
    _rec("mul", (a, b), out)
    return out


def power(a: Tensor, exponent: float) -> Tensor:
    """Elementwise power with a constant exponent."""
    if exponent < 0:
        tiny = np.finfo(a.data.dtype).tiny
        data = np.power(np.where(a.data == 0, tiny, a.data), exponent)
    else:
        data = np.power(a.data, exponent)
    out = _make(
        data,
        (a,),
        (lambda g: mul(g, mul(Tensor(exponent), power(a, exponent - 1.0))),),
    )
    _rec("power", (a,), out, exponent=exponent)
    return out


def exp(a: Tensor) -> Tensor:
    """Elementwise exponential (input clipped for stability)."""
    out_data = np.exp(np.clip(a.data, -500, 500))
    out = _make(out_data, (a,), ())
    if out.requires_grad:
        out._parents = (a,)
        out._vjps = (lambda g: mul(g, out),)
    _rec("exp", (a,), out)
    return out


def log(a: Tensor) -> Tensor:
    """Elementwise natural log (clamped away from zero)."""
    out = _make(
        np.log(np.maximum(a.data, np.finfo(a.data.dtype).tiny)),
        (a,),
        (lambda g: mul(g, power(a, -1.0)),),
    )
    _rec("log", (a,), out)
    return out


def sqrt(a: Tensor) -> Tensor:
    """Elementwise square root."""
    return power(a, 0.5)


def tanh(a: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    out = _make(np.tanh(a.data), (a,), ())
    if out.requires_grad:
        out._parents = (a,)
        out._vjps = (lambda g: mul(g, add(Tensor(1.0), -mul(out, out))),)
    _rec("tanh", (a,), out)
    return out


def sigmoid(a: Tensor) -> Tensor:
    """Elementwise logistic sigmoid."""
    out = _make(1.0 / (1.0 + np.exp(-np.clip(a.data, -500, 500))), (a,), ())
    if out.requires_grad:
        out._parents = (a,)
        out._vjps = (lambda g: mul(g, mul(out, add(Tensor(1.0), -out))),)
    _rec("sigmoid", (a,), out)
    return out


def relu(a: Tensor) -> Tensor:
    """Elementwise max(x, 0)."""
    mask = Tensor((a.data > 0).astype(a.data.dtype))
    _rec("relu_mask", (a,), mask)
    out = _make(a.data * mask.data, (a,), (lambda g: mul(g, mask),))
    _rec("mul", (a, mask), out)
    return out


def leaky_relu(a: Tensor, slope: float = 0.2) -> Tensor:
    """Elementwise leaky ReLU with the given negative slope."""
    factor = Tensor(np.where(a.data > 0, 1.0, slope))
    _rec("leaky_factor", (a,), factor, slope=slope)
    out = _make(a.data * factor.data, (a,), (lambda g: mul(g, factor),))
    _rec("mul", (a, factor), out)
    return out


def absolute(a: Tensor) -> Tensor:
    """Elementwise absolute value (sign subgradient)."""
    sign = Tensor(np.sign(a.data))
    _rec("sign", (a,), sign)
    out = _make(np.abs(a.data), (a,), (lambda g: mul(g, sign),))
    _rec("abs", (a,), out)
    return out


# -------------------------------------------------------------- structural


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix product (batched, with broadcast-aware vjps)."""
    def vjp_a(g: Tensor) -> Tensor:
        gb = matmul(g, _swap_last(b))
        return _sum_to_shape(gb, a.shape) if gb.shape != a.shape else gb

    def vjp_b(g: Tensor) -> Tensor:
        ga = matmul(_swap_last(a), g)
        return _sum_to_shape(ga, b.shape) if ga.shape != b.shape else ga

    out = _make(a.data @ b.data, (a, b), (vjp_a, vjp_b))
    _rec("matmul", (a, b), out)
    return out


def _swap_last(a: Tensor) -> Tensor:
    axes = list(range(a.ndim))
    axes[-1], axes[-2] = axes[-2], axes[-1]
    return transpose(a, tuple(axes))


def reshape(a: Tensor, shape: tuple[int, ...]) -> Tensor:
    """View with a new shape."""
    old = a.shape
    out = _make(a.data.reshape(shape), (a,), (lambda g: reshape(g, old),))
    _rec("reshape", (a,), out, shape=out.data.shape)
    return out


def transpose(a: Tensor, axes: tuple[int, ...] | None) -> Tensor:
    """Permute axes (reverse by default)."""
    if axes is None:
        axes = tuple(reversed(range(a.ndim)))
    inverse = tuple(int(i) for i in np.argsort(axes))
    out = _make(
        a.data.transpose(axes), (a,), (lambda g: transpose(g, inverse),)
    )
    _rec("transpose", (a,), out, axes=tuple(axes))
    return out


def getitem(a: Tensor, key) -> Tensor:
    """Basic indexing/slicing (adjoint scatters the gradient)."""
    shape = a.shape

    def vjp(g: Tensor) -> Tensor:
        return scatter(g, key, shape)

    out = _make(a.data[key], (a,), (vjp,))
    _rec("getitem", (a,), out, key=key)
    return out


def scatter(g: Tensor, key, shape: tuple[int, ...]) -> Tensor:
    """Place ``g`` into a zero tensor of ``shape`` at ``key`` (adjoint of getitem)."""

    def vjp(gg: Tensor) -> Tensor:
        return getitem(gg, key)

    data = np.zeros(shape, dtype=g.data.dtype)
    np.add.at(data, key, g.data)
    out = _make(data, (g,), (vjp,))
    _rec("scatter", (g,), out, key=key, shape=tuple(shape))
    return out


def take(a: Tensor, indices: np.ndarray, axis: int = 0) -> Tensor:
    """Gather along ``axis`` (adjoint: scatter-add)."""
    indices = np.asarray(indices)
    shape = a.shape

    def vjp(g: Tensor) -> Tensor:
        return _scatter_add_axis(g, indices, axis, shape)

    out = _make(np.take(a.data, indices, axis=axis), (a,), (vjp,))
    _rec("take", (a,), out, indices=indices, axis=axis)
    return out


def _scatter_add_axis(
    g: Tensor, indices: np.ndarray, axis: int, shape: tuple[int, ...]
) -> Tensor:
    def vjp(gg: Tensor) -> Tensor:
        return take(gg, indices, axis=axis)

    data = np.zeros(shape, dtype=g.data.dtype)
    # move target axis first for np.add.at, mirroring take's output layout
    moved = np.moveaxis(data, axis, 0)
    g_moved = np.moveaxis(
        g.data, tuple(range(axis, axis + indices.ndim)), tuple(range(indices.ndim))
    )
    np.add.at(moved, indices, g_moved)
    out = _make(data, (g,), (vjp,))
    _rec("scatter_add_axis", (g,), out, indices=indices, axis=axis, shape=tuple(shape))
    return out


def pad2d(a: Tensor, pad: int) -> Tensor:
    """Zero-pad the last two axes of a (B, C, H, W) tensor."""
    if pad == 0:
        return a
    width = [(0, 0)] * (a.ndim - 2) + [(pad, pad), (pad, pad)]
    key = tuple([slice(None)] * (a.ndim - 2) + [slice(pad, -pad), slice(pad, -pad)])

    def vjp(g: Tensor) -> Tensor:
        return getitem(g, key)

    out = _make(np.pad(a.data, width), (a,), (vjp,))
    _rec("pad2d", (a,), out, pad=pad)
    return out


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Join tensors along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.concatenate([[0], np.cumsum(sizes)])

    def make_vjp(i: int):
        def vjp(g: Tensor) -> Tensor:
            key = [slice(None)] * g.ndim
            key[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
            return getitem(g, tuple(key))

        return vjp

    out = _make(
        np.concatenate([t.data for t in tensors], axis=axis),
        tuple(tensors),
        tuple(make_vjp(i) for i in range(len(tensors))),
    )
    _rec("concat", tuple(tensors), out, axis=axis, sizes=tuple(sizes))
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]

    def make_vjp(i: int):
        def vjp(g: Tensor) -> Tensor:
            key = [slice(None)] * g.ndim
            key[axis] = i
            return getitem(g, tuple(key))

        return vjp

    out = _make(
        np.stack([t.data for t in tensors], axis=axis),
        tuple(tensors),
        tuple(make_vjp(i) for i in range(len(tensors))),
    )
    _rec("stack", tuple(tensors), out, axis=axis)
    return out


# --------------------------------------------------------------- reductions


def _normalize_axis(axis, ndim):
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, int):
        return (axis % ndim,)
    return tuple(a % ndim for a in axis)


def tensor_sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Sum reduction over the given axes."""
    axes = _normalize_axis(axis, a.ndim)
    shape = a.shape

    def vjp(g: Tensor) -> Tensor:
        if not keepdims:
            expand = list(g.shape)
            for ax in sorted(axes):
                expand.insert(ax, 1)
            g = reshape(g, tuple(expand))
        return mul(g, Tensor(np.ones(shape)))

    out = _make(a.data.sum(axis=axes, keepdims=keepdims), (a,), (vjp,))
    _rec("sum", (a,), out, axes=axes, keepdims=keepdims)
    return out


def tensor_mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Mean reduction over the given axes."""
    axes = _normalize_axis(axis, a.ndim)
    count = float(np.prod([a.shape[ax] for ax in axes]))
    return mul(tensor_sum(a, axis=axis, keepdims=keepdims), Tensor(1.0 / count))


def tensor_max(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Max reduction; tied maxima split the gradient."""
    axes = _normalize_axis(axis, a.ndim)
    out_data = a.data.max(axis=axes, keepdims=True)
    # subgradient mask, ties split evenly (constant w.r.t. the graph)
    mask = (a.data == out_data).astype(a.data.dtype)
    mask /= mask.sum(axis=axes, keepdims=True)
    mask_t = Tensor(mask)
    _rec("max_mask", (a,), mask_t, axes=axes)

    def vjp(g: Tensor) -> Tensor:
        if not keepdims:
            expand = list(g.shape)
            for ax in sorted(axes):
                expand.insert(ax, 1)
            g = reshape(g, tuple(expand))
        return mul(g, mask_t)

    final = out_data if keepdims else out_data.squeeze(axes)
    out = _make(final, (a,), (vjp,))
    _rec("max", (a,), out, axes=axes, keepdims=keepdims)
    return out


# ----------------------------------------------------------------- backward


def _topo_order(root: Tensor) -> list[Tensor]:
    order: list[Tensor] = []
    seen: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for p in node._parents:
            if id(p) not in seen:
                stack.append((p, False))
    return order


def grad(
    output: Tensor,
    leaves: Sequence[Tensor] | None = None,
    gradient: Tensor | None = None,
    create_graph: bool = False,
    _accumulate: bool = False,
) -> list[Tensor] | None:
    """Gradients of ``output`` w.r.t. ``leaves``.

    With ``create_graph=True`` the returned gradients carry their own
    graph, enabling higher-order differentiation (used by WGAN-GP).
    With ``_accumulate=True`` (the ``backward()`` path), gradients are
    stored on every reachable ``requires_grad`` tensor's ``.grad``.
    """
    if gradient is None:
        gradient = Tensor(np.ones_like(output.data))
    table: dict[int, Tensor] = {id(output): gradient}

    order = _topo_order(output)
    for node in reversed(order):
        g = table.get(id(node))
        if g is None:
            continue
        for parent, vjp in zip(node._parents, node._vjps):
            if create_graph:
                contrib = vjp(g)
            else:
                with no_grad():
                    contrib = vjp(g)
            prev = table.get(id(parent))
            if prev is None:
                table[id(parent)] = contrib
            else:
                if create_graph:
                    table[id(parent)] = add(prev, contrib)
                else:
                    with no_grad():
                        table[id(parent)] = add(prev, contrib)

    if _accumulate:
        for node in order:
            if node.requires_grad and id(node) in table and not node._parents:
                g = table[id(node)]
                node.grad = g if node.grad is None else Tensor(node.grad.data + g.data)
        return None

    assert leaves is not None, "grad() requires leaves unless accumulating"
    result = []
    for leaf in leaves:
        g = table.get(id(leaf))
        if g is None:
            g = Tensor(np.zeros_like(leaf.data))
        result.append(g)
    return result
