"""Optimizers: SGD (momentum), Adam, RMSprop.

RMSprop is what the paper trains the 3D-AAE with (§7.1.3); Adam is used
for the ML1 surrogate.  Optimizers mutate ``Parameter.data`` in place and
read gradients accumulated by ``backward()``.

Updates are applied through explicit ``out=`` ufunc sequences that are
bitwise-identical to the textbook expression forms (scalar×array
multiplication is exactly commutative in IEEE-754, and every staged
intermediate reproduces the expression tree's evaluation order), so the
rewrite changes allocation behaviour only: two preallocated scratch
buffers replace the 4+ full-size temporaries per parameter the
expression forms materialised.  Moment buffers live in one flat
:class:`~repro.nn.graph.planner.StateArena` per moment kind — persistent
optimizer-owned state that outlives any batch-size-specific activation
plan of the compiled training path.

:meth:`~_Optimizer.bind_compiled` returns a zero-argument closure that
applies the same in-place sequences to gradient arrays bound once (the
compiled :class:`~repro.nn.graph.train.TrainStep` arena's gradient
slots): eager ``step()`` and the compiled path share ``_update``
verbatim, making their trajectories bitwise-identical by construction.
"""

from __future__ import annotations

import numpy as np

from repro.nn.graph.planner import plan_state_arena
from repro.nn.layers import Parameter

__all__ = ["SGD", "Adam", "RMSprop", "clip_grad_norm", "grad_norm"]


class _Optimizer:
    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not params:
            raise ValueError("no parameters to optimize")
        self.params = list(params)
        self.lr = lr
        self._scratch_bufs: dict[np.dtype, list[np.ndarray]] = {}

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        for p in self.params:
            p.grad = None

    def _grads(self):
        for p in self.params:
            if p.grad is not None:
                yield p, p.grad.data

    def _state_views(self, n_kinds: int) -> list[list[np.ndarray]]:
        """``n_kinds`` arenas of per-parameter zeroed moment views."""
        shapes = [p.data.shape for p in self.params]
        dtypes = {p.data.dtype for p in self.params}
        if len(dtypes) == 1:
            dtype = dtypes.pop()
            arenas = [plan_state_arena(shapes, dtype) for _ in range(n_kinds)]
            self._state_arenas = arenas
            return [a.views for a in arenas]
        # mixed-precision parameter lists fall back to per-param buffers
        self._state_arenas = []
        return [
            [np.zeros_like(p.data) for p in self.params] for _ in range(n_kinds)
        ]

    def _scratch(self, n_bufs: int, shape: tuple[int, ...], dtype) -> list[np.ndarray]:
        """Reusable flat scratch buffers viewed at ``shape``."""
        key = np.dtype(dtype)
        bufs = self._scratch_bufs.get(key)
        if bufs is None or len(bufs) < n_bufs:
            size = max(max(p.data.size for p in self.params), 1)
            bufs = [np.empty(size, dtype=key) for _ in range(n_bufs)]
            self._scratch_bufs[key] = bufs
        n = int(np.prod(shape, dtype=np.int64)) if shape else 1
        return [b[:n].reshape(shape) for b in bufs[:n_bufs]]

    def _prologue(self) -> tuple:
        """Per-step scalars passed through to ``_update`` (e.g. Adam's
        bias corrections); advances any step counter exactly once."""
        return ()

    def _update(self, idx: int, p: Parameter, g: np.ndarray, *extra) -> None:
        raise NotImplementedError  # pragma: no cover - abstract

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        extra = self._prologue()
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            self._update(i, p, p.grad.data, *extra)

    def bind_compiled(self, grads: dict[int, np.ndarray]):
        """Closure applying one step from pre-bound gradient arrays.

        ``grads`` maps parameter position → the arena view holding that
        parameter's accumulated gradient after a compiled replay.  The
        closure runs the exact ``_update`` sequences ``step()`` runs, in
        the same parameter order, so eager and compiled trajectories
        (weights *and* moments) stay bitwise-identical.
        """
        items = [(pos, self.params[pos], grads[pos]) for pos in sorted(grads)]

        def run() -> None:
            extra = self._prologue()
            for pos, p, g in items:
                self._update(pos, p, g, *extra)

        return run


class SGD(_Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, params: list[Parameter], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        (self._velocity,) = self._state_views(1)

    def _update(self, idx: int, p: Parameter, g: np.ndarray) -> None:
        (s1,) = self._scratch(1, g.shape, g.dtype)
        if self.momentum:
            vel = self._velocity[idx]
            np.multiply(vel, self.momentum, out=vel)  # vel *= momentum
            np.multiply(g, self.lr, out=s1)
            np.subtract(vel, s1, out=vel)  # vel -= lr·g
            np.add(p.data, vel, out=p.data)  # p += vel
        else:
            np.multiply(g, self.lr, out=s1)
            np.subtract(p.data, s1, out=p.data)  # p -= lr·g


class Adam(_Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        self.b1, self.b2 = betas
        self.eps = eps
        self._m, self._v = self._state_views(2)
        self._t = 0

    def _prologue(self) -> tuple:
        self._t += 1
        return (1 - self.b1**self._t, 1 - self.b2**self._t)

    def _update(
        self, idx: int, p: Parameter, g: np.ndarray, b1t: float, b2t: float
    ) -> None:
        m, v = self._m[idx], self._v[idx]
        s1, s2 = self._scratch(2, g.shape, g.dtype)
        np.multiply(m, self.b1, out=m)  # m *= b1
        np.multiply(g, 1 - self.b1, out=s1)
        np.add(m, s1, out=m)  # m += (1-b1)·g
        np.multiply(v, self.b2, out=v)  # v *= b2
        np.multiply(g, 1 - self.b2, out=s1)
        np.multiply(s1, g, out=s1)
        np.add(v, s1, out=v)  # v += (1-b2)·g·g
        np.divide(m, b1t, out=s1)
        np.multiply(s1, self.lr, out=s1)  # lr·(m/b1t)
        np.divide(v, b2t, out=s2)
        np.sqrt(s2, out=s2)
        np.add(s2, self.eps, out=s2)  # sqrt(v/b2t)+eps
        np.divide(s1, s2, out=s1)
        np.subtract(p.data, s1, out=p.data)


class RMSprop(_Optimizer):
    """RMSprop — the optimizer the paper's 3D-AAE training uses."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-5,
        alpha: float = 0.99,
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        self.alpha = alpha
        self.eps = eps
        (self._sq,) = self._state_views(1)

    def _update(self, idx: int, p: Parameter, g: np.ndarray) -> None:
        sq = self._sq[idx]
        s1, s2 = self._scratch(2, g.shape, g.dtype)
        np.multiply(sq, self.alpha, out=sq)  # sq *= alpha
        np.multiply(g, 1 - self.alpha, out=s1)
        np.multiply(s1, g, out=s1)
        np.add(sq, s1, out=sq)  # sq += (1-alpha)·g·g
        np.multiply(g, self.lr, out=s1)  # lr·g
        np.sqrt(sq, out=s2)
        np.add(s2, self.eps, out=s2)  # sqrt(sq)+eps
        np.divide(s1, s2, out=s1)
        np.subtract(p.data, s1, out=p.data)


def grad_norm(params: list[Parameter]) -> float:
    """Global L2 norm of the accumulated gradients.

    :meth:`repro.nn.graph.train.TrainStep.grad_norm` runs this exact
    per-parameter loop over its arena gradient views, so telemetry values
    match across engines bitwise.
    """
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad.data**2).sum())
    return float(np.sqrt(total))


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``."""
    norm = grad_norm(params)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad.data *= scale
    return norm
