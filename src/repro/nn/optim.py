"""Optimizers: SGD (momentum), Adam, RMSprop.

RMSprop is what the paper trains the 3D-AAE with (§7.1.3); Adam is used
for the ML1 surrogate.  Optimizers mutate ``Parameter.data`` in place and
read gradients accumulated by ``backward()``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter

__all__ = ["SGD", "Adam", "RMSprop", "clip_grad_norm"]


class _Optimizer:
    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not params:
            raise ValueError("no parameters to optimize")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError

    def _grads(self):
        for p in self.params:
            if p.grad is not None:
                yield p, p.grad.data


class SGD(_Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, params: list[Parameter], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for p, vel in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad.data
            if self.momentum:
                vel *= self.momentum
                vel -= self.lr * g
                p.data += vel
            else:
                p.data -= self.lr * g


class Adam(_Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        self.b1, self.b2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        self._t += 1
        b1t = 1 - self.b1**self._t
        b2t = 1 - self.b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad.data
            m *= self.b1
            m += (1 - self.b1) * g
            v *= self.b2
            v += (1 - self.b2) * g * g
            p.data -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)


class RMSprop(_Optimizer):
    """RMSprop — the optimizer the paper's 3D-AAE training uses."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-5,
        alpha: float = 0.99,
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        self.alpha = alpha
        self.eps = eps
        self._sq = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for p, sq in zip(self.params, self._sq):
            if p.grad is None:
                continue
            g = p.grad.data
            sq *= self.alpha
            sq += (1 - self.alpha) * g * g
            p.data -= self.lr * g / (np.sqrt(sq) + self.eps)


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad.data**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad.data *= scale
    return norm
