"""From-scratch NumPy deep-learning stack.

Replaces PyTorch + TensorRT in the paper's pipeline: a reverse-mode
autograd engine with double-backprop support (for WGAN-GP), a module/layer
system, optimizers (incl. the paper's RMSprop), the Chamfer and gradient
penalty losses, FP16 compiled inference, and the gzip-sharded threaded
data pipeline of §6.1.1.
"""

from repro.nn import autograd
from repro.nn.autograd import Tensor, as_tensor, grad, no_grad
from repro.nn.dataloader import PrefetchLoader, ShardReader, partition_shards
from repro.nn.inference import CompiledModel, compile_model
from repro.nn.layers import (
    BatchNorm,
    Conv2d,
    Dense,
    Flatten,
    GlobalAvgPool2d,
    LeakyReLU,
    MaxPool2d,
    Module,
    Parameter,
    PointwiseDense,
    ReLU,
    ResidualBlock,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import (
    bce_loss,
    chamfer_distance,
    gradient_penalty,
    mae_loss,
    mse_loss,
)
from repro.nn.optim import SGD, Adam, RMSprop, clip_grad_norm
from repro.nn.serialization import load_model, save_model

__all__ = [
    "Adam",
    "BatchNorm",
    "CompiledModel",
    "Conv2d",
    "Dense",
    "Flatten",
    "GlobalAvgPool2d",
    "LeakyReLU",
    "MaxPool2d",
    "Module",
    "Parameter",
    "PointwiseDense",
    "PrefetchLoader",
    "ReLU",
    "RMSprop",
    "ResidualBlock",
    "SGD",
    "Sequential",
    "ShardReader",
    "Sigmoid",
    "Tanh",
    "Tensor",
    "as_tensor",
    "autograd",
    "bce_loss",
    "chamfer_distance",
    "clip_grad_norm",
    "compile_model",
    "grad",
    "gradient_penalty",
    "load_model",
    "mae_loss",
    "mse_loss",
    "no_grad",
    "partition_shards",
    "save_model",
]
