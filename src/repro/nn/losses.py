"""Loss functions.

Includes the pipeline's three workhorses: MSE (ML1 score regression),
Chamfer distance (3D-AAE point-cloud reconstruction) and the Wasserstein
critic objective with gradient penalty (3D-AAE adversarial term).
"""

from __future__ import annotations

import numpy as np

from repro.nn import autograd as ag
from repro.nn.autograd import Tensor

__all__ = [
    "mse_loss",
    "mae_loss",
    "bce_loss",
    "chamfer_distance",
    "gradient_penalty",
    "gradient_penalty_at",
]


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = pred - target
    return ag.tensor_mean(diff * diff)


def mae_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    return ag.tensor_mean(ag.absolute(pred - target))


def bce_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Binary cross-entropy on probabilities.

    ``log`` clamps its argument away from zero internally, so predictions
    that saturate at exactly 0/1 yield large-but-finite losses rather than
    NaNs.
    """
    one = Tensor(1.0)
    return -ag.tensor_mean(
        target * ag.log(pred) + (one - target) * ag.log(one - pred)
    )


def chamfer_distance(a: Tensor, b: Tensor) -> Tensor:
    """Symmetric Chamfer distance between point clouds.

    ``a``/``b`` have shape (batch, n_points, 3).  For each point the
    squared distance to its nearest neighbour in the other cloud is
    averaged; the two directions are summed.  This is the reconstruction
    loss of the paper's 3D-AAE (§5.1.4).
    """
    # pairwise squared distances: |a|² + |b|² − 2 a·b
    a2 = ag.tensor_sum(a * a, axis=2, keepdims=True)  # (B, N, 1)
    b2 = ag.tensor_sum(b * b, axis=2, keepdims=True)  # (B, M, 1)
    cross = ag.matmul(a, ag.transpose(b, (0, 2, 1)))  # (B, N, M)
    d2 = a2 + ag.transpose(b2, (0, 2, 1)) - 2.0 * cross
    a_to_b = ag.tensor_mean(d2.min(axis=2))
    b_to_a = ag.tensor_mean(d2.min(axis=1))
    return a_to_b + b_to_a


def gradient_penalty(critic, real: Tensor, fake: Tensor, rng: np.random.Generator) -> Tensor:
    """WGAN-GP penalty: ``E[(‖∇_x̂ D(x̂)‖₂ − 1)²]`` at interpolates x̂.

    Draws the interpolation coefficients from ``rng`` and delegates to
    :func:`gradient_penalty_at`.
    """
    shape = (real.shape[0],) + (1,) * (real.ndim - 1)
    alpha = Tensor(rng.random(shape))
    interp = Tensor(
        alpha.data * real.data + (1 - alpha.data) * fake.data, requires_grad=True
    )
    return gradient_penalty_at(critic, interp)


def gradient_penalty_at(critic, interp: Tensor) -> Tensor:
    """WGAN-GP penalty evaluated at precomputed interpolates.

    Uses double backpropagation: the inner gradient is computed with
    ``create_graph=True`` so the penalty differentiates w.r.t. the critic
    parameters.  Taking ``interp`` as an argument (rather than drawing it
    here) lets trainers precompute the interpolates outside the loss —
    the compiled training path feeds them in as a graph input.
    """
    score = ag.tensor_sum(critic(interp))
    (g,) = ag.grad(score, [interp], create_graph=True)
    flat = ag.reshape(g, (g.shape[0], -1))
    norm = ag.sqrt(ag.tensor_sum(flat * flat, axis=1) + 1e-12)
    one = Tensor(1.0)
    return ag.tensor_mean((norm - one) * (norm - one))
