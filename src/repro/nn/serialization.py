"""Model checkpointing: parameters + batch-norm statistics → ``.npz``."""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.nn.layers import BatchNorm, Module

__all__ = ["save_model", "load_model"]


def save_model(model: Module, path: str | Path) -> Path:
    """Atomically write parameters and running statistics to ``.npz``.

    The checkpoint is written to a tmp sibling and ``os.replace``d into
    place, so a crash mid-save can never leave a torn checkpoint at the
    final path (the same durability idiom as :mod:`repro.util.shardio`).
    """
    path = Path(path)
    state = model.state_dict()
    for i, m in enumerate(model.modules()):
        if isinstance(m, BatchNorm):
            state[f"bn{i}_mean"] = m.running_mean
            state[f"bn{i}_var"] = m.running_var
    # the tmp name must keep the .npz suffix or numpy appends its own
    tmp = path.with_name(path.name + ".tmp.npz")
    try:
        np.savez_compressed(tmp, **state)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def load_model(model: Module, path: str | Path) -> Module:
    """Load a checkpoint written by :func:`save_model` into ``model``.

    The model must have the same architecture (parameter count/shapes and
    BatchNorm placement) as the one saved.
    """
    with np.load(Path(path)) as blob:
        state = {k: blob[k] for k in blob.files}
    params = {k: v for k, v in state.items() if k.startswith("p")}
    model.load_state_dict(params)
    for i, m in enumerate(model.modules()):
        if isinstance(m, BatchNorm):
            mean_key, var_key = f"bn{i}_mean", f"bn{i}_var"
            if mean_key not in state:
                raise ValueError(f"checkpoint missing BatchNorm stats {mean_key}")
            m.running_mean = state[mean_key].copy()
            m.running_var = state[var_key].copy()
    return model
