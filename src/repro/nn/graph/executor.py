"""Arena-backed graph executor: out= kernels, in-place epilogues.

Binding happens once per (graph, batch): the planner's arena is
allocated, every value becomes a preallocated view into it, and each
node compiles to a closure over those views — ``np.take(..., out=)``
gathers, ``np.matmul(..., out=)`` GEMMs, in-place epilogue ufuncs.
Steady-state ``run`` calls perform zero array allocations.

Convs get one extra trick.  The eager path runs the im2col matmul as a
broadcast over the batch — ``(oc, ckk) @ (b, ckk, L)`` is ``b`` small
GEMMs, each too thin to keep BLAS busy.  Folding the batch into the
column axis — one ``(oc, ckk) @ (ckk, b*L)`` GEMM — is ~17x faster, but
BLAS accumulation order inside a dot product can differ with column
position, so the substitution is only *usually* bit-identical.  We
therefore **probe** each conv at bind time: run both kernels on a
deterministic ramp at the actual batch size and compare bitwise; the
folded kernel is used only when the probe proves equality, otherwise the
executor falls back to the broadcast form (still allocation-free).  The
bit-identity contract is enforced, not assumed.

Padded convs never materialize a padded copy: activations consumed by a
padded gather carry one trailing "zero slot" element per sample row
(see :mod:`repro.nn.im2col`), pinned to 0 right before the gather.
"""

from __future__ import annotations

import numpy as np

from repro.nn.graph.ir import Graph, quantize
from repro.nn.graph.planner import plan_memory
from repro.nn.im2col import conv_index_plan, conv_zero_slot_plan
from repro.telemetry import NULL_TRACER, Tracer

__all__ = ["GraphExecutor"]


class _BoundPlan:
    """One graph bound to an arena for a fixed batch size."""

    __slots__ = (
        "input",
        "output",
        "steps",
        "labels",
        "arena",
        "memory",
        "strategies",
    )

    def __init__(
        self, input_view, output_view, steps, labels, arena, memory, strategies
    ):
        self.input = input_view
        self.output = output_view
        self.steps = steps
        #: per-step profiling labels, parallel to ``steps``:
        #: (span name, attrs with node kind / output vid / arena offset)
        self.labels = labels
        self.arena = arena
        self.memory = memory
        self.strategies = strategies


class GraphExecutor:
    """Execute a (typically optimized) :class:`Graph` over batches.

    The executor does not run passes itself — callers optimize first (or
    not: an unoptimized trace executes correctly too, which the
    bit-equivalence tests exploit).  Plans are cached per batch size;
    :meth:`run` returns a live view into the arena, so callers must copy
    (e.g. via ``astype``) before the next call.  Not thread-safe.
    """

    def __init__(self, graph: Graph, tracer: Tracer | None = None) -> None:
        self.graph = graph
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._plans: dict[int, _BoundPlan] = {}
        self._probe_cache: dict[tuple, bool] = {}

    def run(self, xq: np.ndarray) -> np.ndarray:
        """Run one quantized compute-dtype batch; returns an arena view.

        With tracing enabled, each bound step emits one ``nn.op`` span
        (labels carry node kind, output vid and arena slot offset); the
        enabled check happens once per batch, so the disabled path pays a
        single branch, not one per op.
        """
        batch = int(xq.shape[0])
        plan = self._plans.get(batch)
        if plan is None:
            plan = self._plans[batch] = self._bind(batch)
        np.copyto(plan.input, xq)
        if self._tracer.enabled:
            tracer = self._tracer
            for step, (name, attrs) in zip(plan.steps, plan.labels):
                with tracer.span(name, category="nn.op", attrs=attrs):
                    step()
            tracer.metrics.counter("nn.batches").inc()
            tracer.metrics.counter("nn.samples").inc(batch)
        else:
            for step in plan.steps:
                step()
        return plan.output

    def plan_info(self, batch: int) -> dict:
        """Arena and kernel statistics for one batch size (binds if new)."""
        plan = self._plans.get(batch)
        if plan is None:
            plan = self._plans[batch] = self._bind(batch)
        strategies = list(plan.strategies.values())
        return {
            "arena_elems": plan.memory.total_elems,
            "arena_bytes": plan.memory.total_bytes,
            "n_buffers": plan.memory.n_buffers,
            "naive_elems": plan.memory.naive_elems,
            "n_steps": len(plan.steps),
            "n_folded_gemm": strategies.count("folded"),
            "n_broadcast_gemm": strategies.count("broadcast"),
        }

    # ----------------------------------------------------------- binding
    def _probe_folded(self, w_vid: int, wq, ckk: int, length: int, batch: int) -> bool:
        """Bitwise-compare folded vs broadcast GEMM on a deterministic ramp."""
        key = (w_vid, length, batch)
        hit = self._probe_cache.get(key)
        if hit is not None:
            return hit
        oc = wq.shape[0]
        compute = np.dtype(self.graph.compute)
        ramp = (np.arange(batch * ckk * length, dtype=np.int64) % 251).astype(compute)
        cols = quantize(ramp * 0.01 - 1.0, self.graph.store, compute)
        cols = cols.reshape(batch, ckk, length)
        ref = wq @ cols
        cols_cm = np.ascontiguousarray(cols.transpose(1, 0, 2))
        folded = np.empty((oc, batch * length), dtype=compute)
        np.matmul(wq, cols_cm.reshape(ckk, batch * length), out=folded)
        same = bool(
            np.array_equal(folded.reshape(oc, batch, length).transpose(1, 0, 2), ref)
        )
        self._probe_cache[key] = same
        return same

    def _bind(self, batch: int) -> _BoundPlan:
        g = self.graph
        compute = np.dtype(g.compute)

        strategies: dict[int, str] = {}
        scratch_req: dict[int, tuple[int, ...]] = {}
        for i, node in enumerate(g.nodes):  # repro: disable=vectorization — node bookkeeping
            if node.kind != "matmul" or node.attrs["form"] != "wx":
                continue
            wq = g.const_array(node.inputs[0])
            ckk, length = g.values[node.inputs[1]].ps_shape
            if self._probe_folded(node.inputs[0], wq, ckk, length, batch):
                strategies[i] = "folded"
                scratch_req[i] = (ckk * batch * length, wq.shape[0] * batch * length)
            else:
                strategies[i] = "broadcast"

        memory = plan_memory(g, batch, scratch_req)
        arena = np.empty(memory.total_elems, dtype=compute)

        def row_view(root: int, carve: bool):
            off, _ = memory.slots[("value", root)]
            elems = g.values[root].ps_elems
            rowlen = elems + (1 if root in memory.slot_roots else 0)
            base = arena[off : off + batch * rowlen].reshape(batch, rowlen)
            return base[:, :elems] if carve and rowlen != elems else base

        def view_at(vid: int, ps):
            shaped = row_view(g.storage_root(vid), carve=True).reshape(
                (batch,) + tuple(ps)
            )
            if not np.shares_memory(shaped, arena):  # pragma: no cover
                raise RuntimeError("activation view is not arena-backed")
            return shaped

        views: dict[int, np.ndarray] = {}

        def view(vid: int):
            if vid not in views:
                views[vid] = view_at(vid, g.values[vid].ps_shape)
            return views[vid]

        def scratch_view(node_idx: int, j: int, shape):
            off, _ = memory.slots[("scratch", node_idx, j)]
            return arena[off : off + int(np.prod(shape))].reshape(shape)

        def operand_array(vid: int):
            return view(vid) if g.values[vid].batched else g.const_array(vid)

        def bind_epilogue(node, skip_first: bool = False):
            fns = []
            for step in node.epilogue[1 if skip_first else 0 :]:
                target = view_at(node.out, step.view_ps)
                if step.fn in ("add", "mul"):
                    ufunc = np.add if step.fn == "add" else np.multiply
                    fns.append(_inplace_binary(ufunc, target, operand_array(step.operand)))
                elif step.fn == "max0":
                    fns.append(_inplace_relu(target))
                elif step.fn == "tanh":
                    fns.append(_inplace_tanh(target))
                elif step.fn == "sigmoid":
                    fns.append(_inplace_sigmoid(target))
                else:  # pragma: no cover - passes never absorb other fns
                    raise ValueError(f"cannot apply epilogue fn {step.fn!r} in place")
            return fns

        steps: list = []
        labels: list[tuple[str, dict]] = []

        def emit(fn, name: str, node) -> None:
            # label attrs are computed once at bind time; run() only
            # reads them, so tracing adds no per-step bookkeeping
            steps.append(fn)
            slot = memory.slots.get(("value", g.storage_root(node.out)))
            labels.append(
                (
                    name,
                    {
                        "kind": node.kind,
                        "out": node.out,
                        "arena_off": slot[0] if slot is not None else -1,
                    },
                )
            )

        def emit_epilogue(node, skip_first: bool = False) -> None:
            for fn in bind_epilogue(node, skip_first=skip_first):
                emit(fn, f"{node.kind}.epilogue", node)

        for i, node in enumerate(g.nodes):  # repro: disable=vectorization — kernel binding
            if node.kind == "reshape":
                continue  # pure storage alias (or a lazily folded constant)

            if node.kind == "gather":
                k = node.attrs["kernel"]
                stride = node.attrs["stride"]
                pad = node.attrs["padding"]
                c, h, w = node.attrs["in_ps"]
                out_view = view(node.out)
                src_root = g.storage_root(node.inputs[0])
                if pad:
                    idx = conv_zero_slot_plan(k, stride, pad, c, h, w)
                    src = row_view(src_root, carve=False)
                    emit(
                        _gather_padded(src, g.values[src_root].ps_elems, idx, out_view),
                        "gather.padded",
                        node,
                    )
                else:
                    idx = conv_index_plan(k, stride, c, h, w)
                    emit(
                        _gather(row_view(src_root, carve=True), idx, out_view),
                        "gather",
                        node,
                    )

            elif node.kind == "matmul":
                out_view = view(node.out)
                if node.attrs["form"] == "wx":
                    wq = g.const_array(node.inputs[0])
                    cols = view(node.inputs[1])
                    if strategies[i] == "folded":
                        ckk, length = g.values[node.inputs[1]].ps_shape
                        oc = wq.shape[0]
                        stage = scratch_view(i, 0, (ckk, batch, length))
                        acc = scratch_view(i, 1, (oc, batch * length))
                        # the transpose-back copy can carry the first
                        # const epilogue (the conv bias) for free
                        first = node.epilogue[0] if node.epilogue else None
                        fuse_first = (
                            first is not None
                            and first.fn in ("add", "mul")
                            and first.operand is not None
                            and not g.values[first.operand].batched
                            and tuple(first.view_ps) == g.values[node.out].ps_shape
                        )
                        if fuse_first:
                            ufunc = np.add if first.fn == "add" else np.multiply
                            fused = (ufunc, g.const_array(first.operand))
                        else:
                            fused = None
                        emit(
                            _conv_folded(wq, cols, stage, acc, out_view, fused),
                            "matmul.folded",
                            node,
                        )
                        emit_epilogue(node, skip_first=fuse_first)
                    else:
                        emit(_matmul_bcast(wq, cols, out_view), "matmul.bcast", node)
                        emit_epilogue(node)
                else:
                    wq = g.const_array(node.inputs[1])
                    emit(_matmul_xw(view(node.inputs[0]), wq, out_view), "matmul", node)
                    emit_epilogue(node)

            elif node.kind == "ewise":
                fn = node.attrs["fn"]
                xv = view(node.inputs[0])
                out_view = view(node.out)
                if fn in ("add", "mul"):
                    ufunc = np.add if fn == "add" else np.multiply
                    emit(
                        _binary(ufunc, xv, operand_array(node.inputs[1]), out_view),
                        f"ewise.{fn}",
                        node,
                    )
                elif fn == "max0":
                    emit(_relu(xv, out_view), "ewise.relu", node)
                elif fn == "leaky":
                    emit(_leaky(xv, node.attrs["slope"], out_view), "ewise.leaky", node)
                elif fn == "tanh":
                    emit(_tanh(xv, out_view), "ewise.tanh", node)
                elif fn == "sigmoid":
                    emit(_sigmoid(xv, out_view), "ewise.sigmoid", node)
                else:  # pragma: no cover - trace emits no other fns
                    raise ValueError(f"unknown ewise fn {fn!r}")
                emit_epilogue(node)

            elif node.kind == "reduce":
                pre = node.attrs["pre_ps"]
                axes = tuple(a + 1 for a in node.attrs["axes_ps"])
                src = view_at(node.inputs[0], pre) if pre else view(node.inputs[0])
                out_view = view(node.out)
                if node.attrs["fn"] == "max":
                    emit(_reduce_max(src, axes, out_view), "reduce.max", node)
                else:
                    emit(_reduce_mean(src, axes, out_view), "reduce.mean", node)
                emit_epilogue(node)

            else:  # pragma: no cover - trace emits no other kinds
                raise ValueError(f"unknown node kind {node.kind!r}")

        return _BoundPlan(
            view(g.input_vid),
            view(g.output_vid),
            steps,
            labels,
            arena,
            memory,
            strategies,
        )


# ------------------------------------------------------------- kernels
# Each binder returns a zero-argument closure over preallocated views.
# The ufunc sequences mirror the eager interpreter's expressions exactly
# (same ops, same operand order up to commutativity of IEEE add/mul).


def _gather(src, idx, out_view):
    def run():
        np.take(src, idx, axis=1, out=out_view, mode="clip")

    return run


def _gather_padded(src, zero_slot, idx, out_view):
    def run():
        # the slot column may hold garbage from arena reuse; re-pin it
        src[:, zero_slot] = 0
        np.take(src, idx, axis=1, out=out_view, mode="clip")

    return run


def _matmul_bcast(wq, cols, out_view):
    def run():
        np.matmul(wq, cols, out=out_view)

    return run


def _conv_folded(wq, cols, stage, acc, out_view, fused):
    oc, batch, length = acc.shape[0], cols.shape[0], cols.shape[2]
    acc2d = acc.reshape(oc, batch * length)
    acc_bm = acc.reshape(oc, batch, length)

    def run():
        np.copyto(stage, cols.transpose(1, 0, 2))
        np.matmul(wq, stage.reshape(stage.shape[0], -1), out=acc2d)
        if fused is not None:
            ufunc, operand = fused
            ufunc(acc_bm.transpose(1, 0, 2), operand, out=out_view)
        else:
            np.copyto(out_view, acc_bm.transpose(1, 0, 2))

    return run


def _matmul_xw(xv, wq, out_view):
    def run():
        np.matmul(xv, wq, out=out_view)

    return run


def _binary(ufunc, xv, arr, out_view):
    def run():
        ufunc(xv, arr, out=out_view)

    return run


def _relu(xv, out_view):
    def run():
        np.maximum(xv, 0, out=out_view)

    return run


def _leaky(xv, slope, out_view):
    def run():
        # mirrors eager np.where(x > 0, x, slope * x); the mask is the
        # one unavoidable temporary (the negative branch needs pre-
        # activation values, so a fully in-place form does not exist)
        np.multiply(xv, slope, out=out_view)
        np.copyto(out_view, xv, where=xv > 0)

    return run


def _tanh(xv, out_view):
    def run():
        np.tanh(xv, out=out_view)

    return run


def _sigmoid(xv, out_view):
    def run():
        np.negative(xv, out=out_view)
        np.exp(out_view, out=out_view)
        np.add(out_view, 1.0, out=out_view)
        np.divide(1.0, out_view, out=out_view)

    return run


def _reduce_max(src, axes, out_view):
    def run():
        src.max(axis=axes, out=out_view)

    return run


def _reduce_mean(src, axes, out_view):
    def run():
        src.mean(axis=axes, out=out_view)

    return run


def _inplace_binary(ufunc, target, arr):
    def run():
        ufunc(target, arr, out=target)

    return run


def _inplace_relu(target):
    def run():
        np.maximum(target, 0, out=target)

    return run


def _inplace_tanh(target):
    def run():
        np.tanh(target, out=target)

    return run


def _inplace_sigmoid(target):
    def run():
        np.negative(target, out=target)
        np.exp(target, out=target)
        np.add(target, 1.0, out=target)
        np.divide(1.0, target, out=target)

    return run
