"""Compiled training steps: trace the eager engine once, replay with
``out=`` kernels forever after.

:class:`TrainStep` wraps a loss function ``fn(*tensors) -> Tensor`` (or a
tuple whose first element is the loss) plus an optimizer.  The first call
at each input-shape signature **is** an ordinary eager training step —
forward, ``backward()``, ``optimizer.step()`` — run under a recording
:class:`~repro.nn.autograd.Tape`.  The recorded op list is lowered to a
:class:`~repro.nn.graph.backward.TrainGraph`, scheduled by the training
passes (dead-branch elimination, IEEE-identity simplification, in-place
coalescing — no arithmetic is reassociated), arena-planned, and bound to
a flat list of ``out=`` kernel closures.  Subsequent same-shape calls
replay the kernels against preallocated views and finish with the
optimizer's :meth:`~repro.nn.optim._Optimizer.bind_compiled` closure:
zero per-step array allocations, and — because every kernel runs the
very same ufunc sequence on identically-laid-out operands — weights,
losses and optimizer state stay **bitwise-identical** to the eager
trainer at every step.

The eager path therefore remains the oracle: any divergence is a bug in
the compiler, never a tolerance question.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.nn.autograd import Tape, Tensor
from repro.nn.graph.backward import TrainGraph, TOp, build_train_graph
from repro.nn.graph.passes import PassStats, optimize_train
from repro.nn.graph.planner import MemoryPlan, plan_train_memory, validate_train_plan
from repro.nn.layers import Parameter

__all__ = ["TrainStep"]


class _Binder:
    """Resolves value ids to concrete numpy views for one compiled plan.

    Arena roots become slices of the flat arena; aliases compose their
    recorded view recipes on top; params/externs bind the parameter's
    live ``.data`` (stable because the optimizers update in place);
    consts bind the traced array by reference.
    """

    def __init__(self, tg: TrainGraph, plan: MemoryPlan, arena: np.ndarray) -> None:
        self._tg = tg
        self._plan = plan
        self._arena = arena
        self._views: dict[int, np.ndarray] = {}

    def view(self, vid: int) -> np.ndarray:
        got = self._views.get(vid)
        if got is not None:
            return got
        v = self._tg.values[vid]
        if v.alias_of is not None:
            base = self.view(v.alias_of)
            kind = v.view[0]
            if kind == "same":
                out = base
            elif kind == "reshape":
                out = base.reshape(v.view[1])
                if not np.may_share_memory(out, base):
                    raise AssertionError("reshape alias copied at bind time")
            elif kind == "transpose":
                out = base.transpose(v.view[1])
            else:  # ("getitem", key)
                out = base[v.view[1]]
        elif v.kind in ("param", "extern", "const"):
            out = v.data
        else:  # temp/input arena root
            off, _ = self._plan.slots[("value", vid)]
            out = self._arena[off : off + v.size].reshape(v.shape)
        self._views[vid] = out
        return out

    def scratch(self, op_idx: int, i: int, shape: tuple[int, ...]) -> np.ndarray:
        off, _ = self._plan.slots[("scratch", op_idx, i)]
        elems = int(np.prod(shape, dtype=np.int64)) if shape else 1
        return self._arena[off : off + elems].reshape(shape)


def _scratch_requests(tg: TrainGraph) -> dict[int, tuple[int, ...]]:
    """Arena-dtype scratch element counts per op (see kernel binders)."""
    req: dict[int, tuple[int, ...]] = {}
    for i, op in enumerate(tg.ops):  # repro: disable=vectorization -- op bookkeeping
        if op.kind == "power" and op.attrs.get("exponent", 0.0) < 0:
            req[i] = (tg.values[op.inputs[0]].size,)
        elif op.kind == "max_mask":
            shape = tg.values[op.inputs[0]].shape
            axes = op.attrs["axes"]
            keep = [1 if ax in axes else s for ax, s in enumerate(shape)]
            req[i] = (int(np.prod(keep, dtype=np.int64)),)
    return req


def _keep_shape(shape: tuple[int, ...], axes: tuple[int, ...]) -> tuple[int, ...]:
    return tuple(1 if ax in axes else s for ax, s in enumerate(shape))


def _bind_kernel(i: int, op: TOp, b: _Binder) -> Callable[[], None] | None:
    """One ``out=``-style closure mirroring the eager op's exact ufunc
    sequence (operand order included — only the destination changes)."""
    kind = op.kind
    if kind == "alias":
        return None

    if kind == "bn_stats":
        layer = op.attrs["layer"]
        m = float(layer.momentum)
        rm, rv = layer.running_mean, layer.running_var
        mean_v, var_v = b.view(op.inputs[0]), b.view(op.inputs[1])
        mean_flat, var_flat = mean_v.reshape(-1), var_v.reshape(-1)
        if not (
            np.may_share_memory(mean_flat, mean_v)
            and np.may_share_memory(var_flat, var_v)
        ):
            raise AssertionError("bn_stats flatten copied at bind time")
        scr = np.empty_like(rm)

        def run_bn() -> None:
            np.multiply(rm, 1.0 - m, out=rm)
            np.multiply(mean_flat, m, out=scr)
            np.add(rm, scr, out=rm)
            np.multiply(rv, 1.0 - m, out=rv)
            np.multiply(var_flat, m, out=scr)
            np.add(rv, scr, out=rv)

        return run_bn

    o = b.view(op.out)
    ins = [b.view(vid) for vid in op.inputs]

    if kind == "add":
        a, c = ins
        return lambda: np.add(a, c, out=o)
    if kind == "mul":
        a, c = ins
        return lambda: np.multiply(a, c, out=o)
    if kind == "power":
        (a,) = ins
        e = op.attrs["exponent"]
        if e < 0:
            tiny = np.finfo(a.dtype).tiny
            boolbuf = np.empty(a.shape, dtype=bool)
            scr = b.scratch(i, 0, a.shape)

            def run_pow_neg() -> None:
                np.equal(a, 0, out=boolbuf)
                np.copyto(scr, a)
                np.copyto(scr, tiny, where=boolbuf)
                np.power(scr, e, out=o)

            return run_pow_neg
        return lambda: np.power(a, e, out=o)
    if kind == "exp":
        (a,) = ins

        def run_exp() -> None:
            np.clip(a, -500, 500, out=o)
            np.exp(o, out=o)

        return run_exp
    if kind == "log":
        (a,) = ins
        tiny = np.finfo(a.dtype).tiny

        def run_log() -> None:
            np.maximum(a, tiny, out=o)
            np.log(o, out=o)

        return run_log
    if kind == "tanh":
        (a,) = ins
        return lambda: np.tanh(a, out=o)
    if kind == "sigmoid":
        (a,) = ins

        def run_sigmoid() -> None:
            np.clip(a, -500, 500, out=o)
            np.negative(o, out=o)
            np.exp(o, out=o)
            np.add(o, 1.0, out=o)
            np.divide(1.0, o, out=o)

        return run_sigmoid
    if kind == "abs":
        (a,) = ins
        return lambda: np.absolute(a, out=o)
    if kind == "sign":
        (a,) = ins
        return lambda: np.sign(a, out=o)
    if kind == "relu_mask":
        (a,) = ins
        boolbuf = np.empty(a.shape, dtype=bool)

        def run_relu_mask() -> None:
            np.greater(a, 0, out=boolbuf)
            np.copyto(o, boolbuf)

        return run_relu_mask
    if kind == "leaky_factor":
        (a,) = ins
        slope = op.attrs["slope"]
        boolbuf = np.empty(a.shape, dtype=bool)

        def run_leaky() -> None:
            np.greater(a, 0, out=boolbuf)
            o.fill(slope)
            np.copyto(o, 1.0, where=boolbuf)

        return run_leaky
    if kind == "max_mask":
        (a,) = ins
        axes = op.attrs["axes"]
        boolbuf = np.empty(a.shape, dtype=bool)
        scr = b.scratch(i, 0, _keep_shape(a.shape, axes))

        def run_max_mask() -> None:
            np.amax(a, axis=axes, keepdims=True, out=scr)
            np.equal(a, scr, out=boolbuf)
            np.copyto(o, boolbuf)
            np.sum(o, axis=axes, keepdims=True, out=scr)
            np.divide(o, scr, out=o)

        return run_max_mask
    if kind == "max":
        (a,) = ins
        axes, keepdims = op.attrs["axes"], op.attrs["keepdims"]
        return lambda: np.amax(a, axis=axes, keepdims=keepdims, out=o)
    if kind == "sum":
        (a,) = ins
        axes, keepdims = op.attrs["axes"], op.attrs["keepdims"]
        return lambda: np.sum(a, axis=axes, keepdims=keepdims, out=o)
    if kind == "matmul":
        a, c = ins
        return lambda: np.matmul(a, c, out=o)
    if kind == "copy":
        (a,) = ins
        return lambda: np.copyto(o, a)
    if kind == "reshape_copy":
        (a,) = ins
        o_as_in = o.reshape(a.shape)
        return lambda: np.copyto(o_as_in, a)
    if kind == "getitem_copy":
        (a,) = ins
        key = op.attrs["key"]
        return lambda: np.copyto(o, a[key])
    if kind == "take":
        (a,) = ins
        indices, axis = op.attrs["indices"], op.attrs["axis"]
        # mode="clip" skips numpy's buffered bounds-checking path (~3x
        # faster) and selects the very same elements whenever every index
        # is already in range — gated, since "clip" would silently remap
        # negative/out-of-range indices that "raise" handles differently
        if indices.size and 0 <= indices.min() and indices.max() < a.shape[axis]:
            return lambda: np.take(a, indices, axis=axis, out=o, mode="clip")
        return lambda: np.take(a, indices, axis=axis, out=o)
    if kind == "scatter":
        (g,) = ins
        key = op.attrs["key"]

        def run_scatter() -> None:
            o.fill(0)
            np.add.at(o, key, g)

        return run_scatter
    if kind == "scatter_add_axis":
        (g,) = ins
        indices, axis = op.attrs["indices"], op.attrs["axis"]
        shape = op.attrs["shape"]
        if op.attrs.get("bincount_ok") and g.flags.c_contiguous:
            idx_flat = indices.ravel()
            g2 = g.reshape(shape[0], -1)
            minlength = shape[1]

            def run_bincount() -> None:
                for row in range(shape[0]):  # repro: disable=vectorization -- 1-D bincount
                    o[row] = np.bincount(idx_flat, weights=g2[row], minlength=minlength)

            return run_bincount
        moved = np.moveaxis(o, axis, 0)
        g_moved = np.moveaxis(
            g, tuple(range(axis, axis + indices.ndim)), tuple(range(indices.ndim))
        )

        def run_scatter_axis() -> None:
            o.fill(0)
            np.add.at(moved, indices, g_moved)

        return run_scatter_axis
    if kind == "pad2d":
        (a,) = ins
        pad = op.attrs["pad"]
        core = tuple(
            [slice(None)] * (o.ndim - 2) + [slice(pad, -pad), slice(pad, -pad)]
        )
        o_core = o[core]

        def run_pad() -> None:
            o.fill(0)
            np.copyto(o_core, a)

        return run_pad
    if kind == "concat":
        axis, sizes = op.attrs["axis"], op.attrs["sizes"]
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        slots = []
        for j, a in enumerate(ins):  # repro: disable=vectorization -- slice bookkeeping
            key = [slice(None)] * o.ndim
            key[axis] = slice(int(offsets[j]), int(offsets[j + 1]))
            slots.append((o[tuple(key)], a))

        def run_concat() -> None:
            for dst, src in slots:
                np.copyto(dst, src)

        return run_concat
    if kind == "stack":
        axis = op.attrs["axis"]
        slots = []
        for j, a in enumerate(ins):
            key = [slice(None)] * o.ndim
            key[axis] = j
            slots.append((o[tuple(key)], a))

        def run_stack() -> None:
            for dst, src in slots:
                np.copyto(dst, src)

        return run_stack
    raise NotImplementedError(f"no kernel binder for traced op {kind!r}")


@dataclass
class _Compiled:
    """One bound plan: kernels + views for a fixed input-shape signature."""

    tg: TrainGraph
    plan: MemoryPlan
    arena: np.ndarray
    kernels: list[Callable[[], None]]
    input_views: list[np.ndarray]
    output_views: list[np.ndarray]
    grad_views: dict[int, np.ndarray]
    opt_run: Callable[[], None]
    guards: list[tuple[Parameter, np.ndarray]]
    pass_stats: PassStats = field(default_factory=dict)


class TrainStep:
    """A compiled ``fwd+bwd+optimizer`` step with an eager oracle.

    Parameters
    ----------
    fn:
        ``fn(*tensors) -> Tensor | tuple[Tensor, ...]``; the first (or
        only) returned tensor is the loss that ``backward()`` runs on.
        Auxiliary outputs are returned alongside the loss on every call.
    optimizer:
        Owns the parameters to update; its in-place ``_update``
        sequences run identically on both paths.
    input_requires_grad:
        Per-input flags (default all ``False``); inputs that require
        grad (e.g. WGAN-GP interpolates) participate in double backward.

    Calls take numpy arrays and return floats (0-d outputs) / array
    copies.  The first call at each input-shape signature runs — and
    *is* — the eager step while tracing; later same-shape calls replay
    the compiled kernels.  Trajectories are bitwise-identical either
    way.
    """

    def __init__(
        self,
        fn: Callable[..., Tensor | tuple],
        optimizer,
        input_requires_grad: Sequence[bool] | None = None,
    ) -> None:
        self.fn = fn
        self.optimizer = optimizer
        self._flags = tuple(input_requires_grad) if input_requires_grad else None
        self._plans: dict[tuple, _Compiled] = {}
        self._last_grads: list[np.ndarray] = []

    # ------------------------------------------------------------- tracing
    def _trace(self, key: tuple, arrays: Sequence[np.ndarray]) -> tuple:
        flags = self._flags or (False,) * len(arrays)
        xs = [Tensor(a, requires_grad=f) for a, f in zip(arrays, flags)]
        self.optimizer.zero_grad()
        tape = Tape()
        with tape:
            outs = self.fn(*xs)
            outs_t = outs if isinstance(outs, tuple) else (outs,)
            outs_t[0].backward()
        tg = build_train_graph(tape, xs, self.optimizer.params, outs_t)
        self.optimizer.step()

        stats = optimize_train(tg)
        plan = plan_train_memory(tg, _scratch_requests(tg))
        validate_train_plan(plan)
        arena = np.empty(plan.total_elems, dtype=plan.dtype)
        binder = _Binder(tg, plan, arena)
        kernels = [
            k
            for i, op in enumerate(tg.ops)
            if (k := _bind_kernel(i, op, binder)) is not None
        ]
        grad_views = {pos: binder.view(vid) for pos, vid in tg.grad_vids.items()}
        guards = [
            (v.param, v.data)
            for v in tg.values
            if v.param is not None and v.kind in ("param", "extern")
        ]
        self._plans[key] = _Compiled(
            tg=tg,
            plan=plan,
            arena=arena,
            kernels=kernels,
            input_views=[binder.view(vid) for vid in tg.input_vids],
            output_views=[binder.view(vid) for vid in tg.output_vids],
            grad_views=grad_views,
            opt_run=self.optimizer.bind_compiled(grad_views),
            guards=guards,
            pass_stats=stats,
        )
        self._last_grads = [
            p.grad.data for p in self.optimizer.params if p.grad is not None
        ]
        return tuple(
            float(t.data) if t.data.ndim == 0 else t.data.copy() for t in outs_t
        )

    # -------------------------------------------------------------- replay
    def __call__(self, *arrays: np.ndarray):
        arrays = tuple(np.asarray(a) for a in arrays)
        key = tuple(a.shape for a in arrays)
        c = self._plans.get(key)
        if c is None:
            outs = self._trace(key, arrays)
            return outs[0] if len(outs) == 1 else outs
        for p, captured in c.guards:
            if p.data is not captured:
                raise RuntimeError(
                    "parameter storage was rebound after tracing; compiled "
                    "TrainStep requires in-place parameter updates"
                )
        for view, a in zip(c.input_views, arrays):
            np.copyto(view, a)
        for k in c.kernels:
            k()
        c.opt_run()
        self._last_grads = [c.grad_views[pos] for pos in sorted(c.grad_views)]
        outs = tuple(
            float(v) if v.ndim == 0 else v.copy() for v in c.output_views
        )
        return outs[0] if len(outs) == 1 else outs

    # ----------------------------------------------------------- telemetry
    def grad_norm(self) -> float:
        """Global L2 norm of the last step's gradients (either path),
        computed with the same per-parameter loop the eager trainers
        use so telemetry values match across engines bitwise."""
        total = 0.0
        for g in self._last_grads:
            total += float((g**2).sum())
        return float(np.sqrt(total))

    def plan_info(self) -> dict:
        """Per-shape compile statistics (for benchmarks/diagnostics)."""
        info: dict = {}
        for key, c in self._plans.items():
            info[str(key)] = {
                "n_ops": len(c.tg.ops),
                "n_kernels": c.tg.n_kernels,
                "n_inplace": c.tg.n_inplace,
                "arena_bytes": c.plan.total_bytes,
                "naive_elems": c.plan.naive_elems,
                "arena_elems": c.plan.total_elems,
                "pass_stats": dict(c.pass_stats),
            }
        return info
