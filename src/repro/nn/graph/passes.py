"""Graph optimization passes: folding and fusion without reassociation.

Every pass here is a *scheduling* rewrite.  The bit-identity contract
with the eager interpreter forbids algebraic folding (e.g. multiplying
BN scale into conv weights reassociates the FP32 accumulation), so
instead of changing the arithmetic, the passes absorb elementwise
follower ops into the **epilogue** of their producer: the executor
applies the exact same ufuncs, in the exact same order, in place on the
producer's output buffer — one op node where the eager path ran five
closures and five temporaries.

Absorption is legal only along single-consumer chains (an in-place
epilogue destroys the pre-epilogue value, so nobody else may read it);
``reshape`` nodes are pure storage aliases and are looked through.

The default pipeline, in order:

1. ``fold_constants`` — materialize const-only subgraphs (e.g. the
   broadcast-reshape of a conv bias) at compile time.
2. ``fuse_bias`` — matmul + const-add → matmul with bias epilogue.
3. ``fold_batchnorm`` — const-mul + const-add pairs (inference-mode BN)
   fold into the preceding matmul's epilogue — conv+BN becomes one op —
   or into a single node when no matmul precedes.  The matmul node
   records the analytic ``(scale, shift)`` constants in ``attrs["bn"]``.
4. ``fuse_activations`` — ReLU/Tanh/Sigmoid absorb into the producer's
   epilogue (conv-bn-relu and dense-bias-act become one op each).
5. ``fuse_residual`` — the skip add (and its already-fused ReLU) absorb
   into the body's last matmul: a whole ResidualBlock tail is one op.
6. ``eliminate_dead`` — drop nodes and values that no longer feed the
   output.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.graph.backward import INPLACE_KINDS, LAST_FOREVER, TrainGraph
from repro.nn.graph.ir import EpStep, Graph, Node

__all__ = [
    "PassStats",
    "coalesce_inplace",
    "default_passes",
    "eliminate_dead",
    "eliminate_dead_train",
    "fold_batchnorm",
    "fold_constants",
    "fuse_activations",
    "fuse_bias",
    "fuse_residual",
    "optimize",
    "optimize_train",
    "simplify_identities",
]

#: per-pass rewrite counts, in pipeline order
PassStats = dict[str, int]

#: unary activations an epilogue can apply in place (LeakyReLU is
#: excluded: its negative branch needs the pre-activation value, which
#: an in-place epilogue has already destroyed)
_ACT_FNS = ("max0", "tanh", "sigmoid")


def _sole_consumer(g: Graph, vid: int) -> Node | None:
    consumers = g.consumers_of(vid)
    return consumers[0] if len(consumers) == 1 else None


def _chase(g: Graph, node: Node) -> tuple[int, Node | None]:
    """Follow ``node.out`` through single-consumer reshape aliases.

    Returns the final value id and its sole consumer (None if the value
    fans out or terminates the graph).
    """
    vid = node.out
    while True:
        consumer = _sole_consumer(g, vid)
        if (
            consumer is not None
            and consumer.kind == "reshape"
            and g.values[consumer.out].batched
        ):
            vid = consumer.out
            continue
        return vid, consumer


def _rewire(g: Graph, old: int, new: int) -> None:
    """Replace every use of value ``old`` with ``new``."""
    for node in g.nodes:
        if old in node.inputs:
            node.inputs = tuple(new if v == old else v for v in node.inputs)
        for step in node.epilogue:
            if step.operand == old:
                step.operand = new
    if g.output_vid == old:
        g.output_vid = new


def _absorb(g: Graph, target: Node, ewise: Node) -> None:
    """Fold an ewise node into ``target``'s epilogue and remove it.

    The step is recorded at the per-sample shape the op originally ran
    at, so the executor re-applies it through a view of the target's
    storage with identical broadcasting.  Any epilogue the absorbed node
    itself carried rides along, preserving order.
    """
    x = ewise.inputs[0]
    operand = ewise.inputs[1] if len(ewise.inputs) > 1 else None
    target.epilogue.append(
        EpStep(ewise.attrs["fn"], operand, g.values[x].ps_shape)
    )
    target.epilogue.extend(ewise.epilogue)
    g.nodes.remove(ewise)
    _rewire(g, ewise.out, x)


def fold_constants(g: Graph) -> int:
    """Materialize nodes whose inputs are all constants; returns count."""
    count = 0
    changed = True
    while changed:
        changed = False
        for node in list(g.nodes):
            if node.epilogue or g.values[node.out].batched:
                continue
            if any(g.values[v].batched for v in node.inputs):
                continue
            out_value = g.values[node.out]
            if node.kind == "reshape":
                out_value.data = g.const_array(node.inputs[0]).reshape(
                    node.attrs["shape"]
                )
            elif node.kind == "ewise" and node.attrs["fn"] in ("add", "mul"):
                a = g.const_array(node.inputs[0])
                b = g.const_array(node.inputs[1])
                out_value.data = a + b if node.attrs["fn"] == "add" else a * b
            else:
                continue
            g.nodes.remove(node)
            count += 1
            changed = True
    return count


def _is_const_ewise(g: Graph, node: Node | None, fn: str, vid: int) -> bool:
    """Is ``node`` an ``fn``-ewise applying a constant to value ``vid``?"""
    return (
        node is not None
        and node.kind == "ewise"
        and node.attrs["fn"] == fn
        and len(node.inputs) == 2
        and node.inputs[0] == vid
        and not g.values[node.inputs[1]].batched
    )


def fuse_bias(g: Graph) -> int:
    """Absorb const-add followers into matmul epilogues; returns count."""
    count = 0
    for node in list(g.nodes):
        if node.kind != "matmul" or node not in g.nodes:
            continue
        vid, consumer = _chase(g, node)
        if _is_const_ewise(g, consumer, "add", vid):
            _absorb(g, node, consumer)
            count += 1
    return count


def fold_batchnorm(g: Graph) -> int:
    """Fold inference-mode BN (const mul + const add) pairs; returns count.

    After a matmul, both steps join the matmul epilogue (conv+BN is one
    op) and the analytic scale/shift value ids are recorded in
    ``attrs["bn"]``.  Standalone pairs merge into a single two-step node.
    """
    count = 0
    for node in list(g.nodes):
        if node not in g.nodes:
            continue
        if node.kind == "matmul":
            vid, mul_node = _chase(g, node)
            if not _is_const_ewise(g, mul_node, "mul", vid):
                continue
            add_node = _sole_consumer(g, mul_node.out)
            if not _is_const_ewise(g, add_node, "add", mul_node.out):
                continue
            node.attrs["bn"] = (mul_node.inputs[1], add_node.inputs[1])
            _absorb(g, node, mul_node)
            _absorb(g, node, add_node)
            count += 1
        elif node.kind == "ewise" and node.attrs["fn"] == "mul":
            if len(node.inputs) != 2 or g.values[node.inputs[1]].batched:
                continue
            add_node = _sole_consumer(g, node.out)
            if _is_const_ewise(g, add_node, "add", node.out):
                _absorb(g, node, add_node)
                count += 1
    return count


def fuse_activations(g: Graph) -> int:
    """Absorb unary activations into their producer; returns count."""
    count = 0
    changed = True
    while changed:
        changed = False
        for node in list(g.nodes):
            if node.kind not in ("matmul", "ewise", "reduce") or node not in g.nodes:
                continue
            vid, consumer = _chase(g, node)
            if (
                consumer is not None
                and consumer.kind == "ewise"
                and consumer.attrs["fn"] in _ACT_FNS
                and len(consumer.inputs) == 1
            ):
                _absorb(g, node, consumer)
                count += 1
                changed = True
    return count


def fuse_residual(g: Graph) -> int:
    """Absorb skip-adds into the body's last matmul; returns count.

    Only fires when the matmul chain feeds the add's *first* operand —
    the body branch, traced after the projection — so the skip value is
    always defined before the epilogue that reads it.
    """
    count = 0
    for node in list(g.nodes):
        if node.kind != "matmul" or node not in g.nodes:
            continue
        vid, consumer = _chase(g, node)
        if (
            consumer is not None
            and consumer.kind == "ewise"
            and consumer.attrs["fn"] == "add"
            and len(consumer.inputs) == 2
            and consumer.inputs[0] == vid
            and g.values[consumer.inputs[1]].batched
        ):
            _absorb(g, node, consumer)
            count += 1
    return count


def eliminate_dead(g: Graph) -> int:
    """Drop nodes and values unreachable from the output; returns count."""
    live = {g.output_vid}
    changed = True
    while changed:
        changed = False
        for node in g.nodes:
            if node.out in live:
                needed = set(node.inputs)
                needed.update(
                    s.operand for s in node.epilogue if s.operand is not None
                )
                if not needed <= live:
                    live |= needed
                    changed = True
    removed = sum(1 for n in g.nodes if n.out not in live)
    g.nodes = [n for n in g.nodes if n.out in live]
    keep = live | {g.input_vid}
    g.values = {vid: val for vid, val in g.values.items() if vid in keep}
    return removed


def default_passes() -> list[tuple[str, Callable[[Graph], int]]]:
    """The standard pipeline, in order."""
    return [
        ("fold_constants", fold_constants),
        ("fuse_bias", fuse_bias),
        ("fold_batchnorm", fold_batchnorm),
        ("fuse_activations", fuse_activations),
        ("fuse_residual", fuse_residual),
        ("eliminate_dead", eliminate_dead),
    ]


def optimize(
    g: Graph, passes: list[tuple[str, Callable[[Graph], int]]] | None = None
) -> tuple[Graph, PassStats]:
    """Run a pass pipeline over ``g`` in place; returns (graph, stats)."""
    stats: PassStats = {}
    for name, fn in passes if passes is not None else default_passes():
        stats[name] = fn(g)
    return g, stats


# ------------------------------------------------------------------ training
# Passes over the TrainGraph IR (the traced fwd+bwd+side-effect step of
# repro.nn.graph.backward).  Same contract as the inference passes: pure
# scheduling rewrites, no reassociation — a rewrite is admitted only if
# the replacement is bitwise-identical by IEEE-754 identity (x*1 == x,
# pow(x, 1) == x) or executes the very same ufunc sequence in place.


def eliminate_dead_train(tg: "TrainGraph") -> int:
    """Drop ops whose results feed neither outputs, gradients nor side
    effects — e.g. the critic weight-gradient branch inside the
    autoencoder step, whose optimizer does not own the critic."""
    live: set[int] = set(tg.output_vids) | set(tg.grad_vids.values())
    keep: list[bool] = [False] * len(tg.ops)
    for i in range(len(tg.ops) - 1, -1, -1):  # repro: disable=vectorization -- liveness
        op = tg.ops[i]
        if op.out is None or op.out in live:
            keep[i] = True
            live.update(op.inputs)
    removed = keep.count(False)
    tg.ops = [op for i, op in enumerate(tg.ops) if keep[i]]
    return removed


def _is_all_ones(tg: "TrainGraph", vid: int, cache: dict[int, bool]) -> bool:
    got = cache.get(vid)
    if got is None:
        v = tg.values[vid]
        got = v.kind == "const" and bool(np.all(v.data == 1.0))
        cache[vid] = got
    return got


def simplify_identities(tg: "TrainGraph") -> int:
    """Rewrite multiplications that are IEEE-754 identities.

    ``x * 1.0 == x`` holds bitwise for every operand (sign of zero
    included), so the broadcast-by-ones multiplies that ``tensor_sum``'s
    VJP emits degrade to broadcast *copies* — and to pure aliases when no
    broadcast happens.  Likewise ``pow(x, 1.0) == x`` exactly, so the
    ``power(a, exponent-1)`` chain of a squared term's VJP aliases its
    input.  Values are untouched; only the schedule changes.
    """
    ones_cache: dict[int, bool] = {}
    changed = 0
    for op in tg.ops:
        if op.kind == "mul":
            a, b = op.inputs
            if _is_all_ones(tg, b, ones_cache):
                other = a
            elif _is_all_ones(tg, a, ones_cache):
                other = b
            else:
                continue
        elif op.kind == "power" and op.attrs.get("exponent") == 1.0:
            other = op.inputs[0]
        else:
            continue
        out_v = tg.values[op.out]
        if tg.values[other].shape == out_v.shape:
            op.kind = "alias"
            op.inputs = (other,)
            op.attrs = {}
            out_v.alias_of = other
            out_v.view = ("same",)
            out_v.contiguous = tg.values[other].contiguous
        else:
            op.kind = "copy"
            op.inputs = (other,)
            op.attrs = {}
        changed += 1
    return changed


def coalesce_inplace(tg: "TrainGraph") -> int:
    """Fuse elementwise kernels onto a dying input's buffer.

    The training-graph analogue of the inference epilogues: when an
    elementwise op is the *last* reader of one of its inputs and shapes
    match, its kernel writes straight into that input's storage (same
    ufunc, same operands — only the destination changes), so activation
    gradients fold onto the upstream gradient buffer and the ``add`` that
    accumulates dL/dW lands in place.  Safety conditions: the reused
    storage root must be arena-owned (never a parameter or captured
    const), must not be read by any later op, and must not back another
    operand of the same op.
    """
    vid_last: dict[int, int] = {}
    for i, op in enumerate(tg.ops):
        for vid in op.inputs:
            vid_last[vid] = i
    for vid in list(tg.output_vids) + list(tg.grad_vids.values()):
        vid_last[vid] = LAST_FOREVER

    root_last: dict[int, int] = {}
    for vid, last in vid_last.items():
        root = tg.storage_root(vid)
        root_last[root] = max(root_last.get(root, -1), last)

    fused = 0
    for i, op in enumerate(tg.ops):
        if op.kind not in INPLACE_KINDS or op.out is None or op.is_alias:
            continue
        out_v = tg.values[op.out]
        for pos, vin in enumerate(op.inputs):
            root = tg.storage_root(vin)
            if tg.values[root].kind not in ("temp", "input"):
                continue
            if root_last.get(root, -1) != i:
                continue
            if tg.values[vin].shape != out_v.shape:
                continue
            if any(
                other != vin and tg.storage_root(other) == root
                for other in op.inputs
            ):
                continue
            op.inplace_on = pos
            out_v.alias_of = vin
            out_v.view = ("same",)
            out_v.contiguous = tg.values[vin].contiguous
            root_last[root] = max(
                root_last.get(root, -1), root_last.get(op.out, vid_last.get(op.out, i))
            )
            fused += 1
            break
    return fused


def optimize_train(tg: "TrainGraph") -> PassStats:
    """Run the training pass pipeline over ``tg`` in place."""
    return {
        "eliminate_dead_train": eliminate_dead_train(tg),
        "simplify_identities": simplify_identities(tg),
        "coalesce_inplace": coalesce_inplace(tg),
    }
