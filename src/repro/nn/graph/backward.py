"""Backward-graph builder: lower a recorded eager training step to IR.

Reverse-mode autodiff over the op-graph IR works by *tracing the eager
engine once*: the first step at each input shape runs the ordinary eager
forward + ``loss.backward()`` (+ optimizer step) under an active
:class:`repro.nn.autograd.Tape`.  Because every vector–Jacobian product
in :mod:`repro.nn.autograd` is itself written in tensor primitives, the
tape captures the **entire** fwd+bwd computation — including double
backward through the WGAN gradient penalty — as a flat op list in the
exact order the eager engine executed it.  Lowering that list to a
:class:`TrainGraph` and replaying it with ``out=`` kernels therefore
reproduces the eager step bit-for-bit *by construction*: same ufuncs,
same operand order, same reduction axes, no reassociation anywhere.

Data-dependent values the eager ops compute internally (ReLU masks,
leaky-ReLU factors, max tie-splitting masks, signs) arrive on the tape
as explicit aux ops, so a replay recomputes them for fresh inputs.

Leaf classification
-------------------
Tensors that appear as op inputs but were never produced by a recorded
op are leaves:

* ``input``  — the step's minibatch arrays (copied into the arena);
* ``param``  — optimizer-owned :class:`~repro.nn.layers.Parameter`\\ s
  (read/updated through their live ``.data``, gradients materialized);
* ``extern`` — Parameters *not* owned by the step's optimizer (e.g. the
  critic's weights inside the autoencoder step): read through their live
  ``.data`` so interleaved updates by another TrainStep are observed;
* ``const``  — everything else (VJP seed/ones/scalar tensors), captured
  by reference — eager ops never mutate their outputs, so the arrays are
  immutable after the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.nn.autograd import Tape, Tensor
from repro.nn.layers import Parameter

__all__ = ["TValue", "TOp", "TrainGraph", "build_train_graph"]

#: liveness sentinel — "read after every op" (outputs, gradients)
LAST_FOREVER = 1 << 30

#: ops whose output is a numpy *view* of their input (no kernel at all)
ALIAS_KINDS = frozenset({"reshape", "transpose", "getitem"})

#: elementwise ops whose kernel may legally write into a dying input's
#: buffer (the in-place coalescing pass uses this; every kernel below
#: either reads each element before writing it or stages through scratch)
INPLACE_KINDS = frozenset(
    {"add", "mul", "power", "exp", "log", "tanh", "sigmoid", "abs",
     "sign", "relu_mask", "leaky_factor", "max_mask", "copy"}
)


@dataclass
class TValue:
    """One SSA value of the training graph (absolute shapes)."""

    vid: int
    shape: tuple[int, ...]
    dtype: np.dtype
    kind: str  # "input" | "param" | "extern" | "const" | "temp"
    data: np.ndarray | None = None  # const/extern/param: live array (by ref)
    param: Parameter | None = None  # param/extern: identity-guarded owner
    alias_of: int | None = None  # view of another value (reshape/transpose/…)
    # ("reshape", shape) | ("transpose", axes) | ("getitem", key) | ("same",)
    view: tuple | None = None
    contiguous: bool = True

    @property
    def size(self) -> int:
        """Total number of elements."""
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1


@dataclass
class TOp:
    """One executable step (or pure alias) of the training graph."""

    kind: str
    inputs: tuple[int, ...]
    out: int | None
    attrs: dict = field(default_factory=dict)
    inplace_on: int | None = None  # input position whose buffer `out` reuses

    @property
    def is_alias(self) -> bool:
        """True for ops that bind as views and execute no kernel."""
        return self.kind == "alias"


@dataclass
class TrainGraph:
    """A lowered fwd+bwd(+side-effect) training step.

    ``grad_vids`` maps positions in the traced parameter list to the
    value holding that parameter's final accumulated gradient;
    ``output_vids`` lists the loss (first) plus any aux outputs.
    """

    values: list[TValue]
    ops: list[TOp]
    input_vids: list[int]
    param_vids: dict[int, int]
    grad_vids: dict[int, int]
    output_vids: list[int]
    dtype: np.dtype

    # ------------------------------------------------------------ aliases
    def storage_root(self, vid: int) -> int:
        """Follow the alias chain to the value owning the storage."""
        v = self.values[vid]
        while v.alias_of is not None:
            v = self.values[v.alias_of]
        return v.vid

    def root_kind(self, vid: int) -> str:
        """Kind of the storage root backing ``vid``."""
        return self.values[self.storage_root(vid)].kind

    # ----------------------------------------------------------- liveness
    def root_intervals(self) -> tuple[dict[int, int], dict[int, int]]:
        """Per arena root: (definition op index, last read op index).

        Only roots of kind ``temp``/``input`` get arena storage; inputs
        are filled before the first op (definition step -1).  Outputs and
        parameter gradients are read after the last op (the optimizer /
        the caller), side-effect operands at their op's index.
        """
        defined: dict[int, int] = {}
        last: dict[int, int] = {}
        for vid in self.input_vids:
            root = self.storage_root(vid)
            defined[root] = -1
            last[root] = -1
        for i, op in enumerate(self.ops):
            for vid in op.inputs:
                root = self.storage_root(vid)
                if root in defined:
                    last[root] = i
            if op.out is not None:
                root = self.storage_root(op.out)
                if self.values[root].kind in ("temp", "input") and root not in defined:
                    defined[root] = i
                    last.setdefault(root, i)
        for vid in list(self.output_vids) + list(self.grad_vids.values()):
            root = self.storage_root(vid)
            if root in defined:
                last[root] = LAST_FOREVER
        return defined, last

    @property
    def n_kernels(self) -> int:
        """Number of ops that execute a kernel (non-alias)."""
        return sum(1 for op in self.ops if not op.is_alias)

    @property
    def n_inplace(self) -> int:
        """Number of kernels coalesced onto an input's buffer."""
        return sum(1 for op in self.ops if op.inplace_on is not None)


def _is_basic_key(key) -> bool:
    """True if ``key`` uses only basic indexing (numpy returns a view)."""
    items = key if isinstance(key, tuple) else (key,)
    for k in items:
        if isinstance(k, (int, np.integer, slice)) or k is None or k is Ellipsis:
            continue
        return False
    return True


def _probe_bincount(indices: np.ndarray, g: np.ndarray, shape, ref: np.ndarray) -> bool:
    """Can this scatter-add be served by per-sample ``np.bincount``?

    ``np.add.at`` is the bitwise-faithful adjoint of ``take`` but is slow
    (buffered fancy indexing).  For the conv-backward pattern —
    2-D target ``(batch, n)`` scattered along axis 1 by a 2-D index map —
    per-sample ``bincount`` applies the *same sequential accumulation
    order* per target cell; this probe proves bit-equality on the traced
    data and gates the fast kernel (PR 4's probe-don't-assume idiom).
    """
    if len(shape) != 2 or indices.ndim != 2 or not g.flags.c_contiguous:
        return False
    if g.dtype != np.float64:  # bincount accumulates in float64 only
        return False
    idx_flat = indices.ravel()
    g2 = g.reshape(shape[0], -1)
    cand = np.empty(shape, dtype=ref.dtype)
    for b in range(shape[0]):  # repro: disable=vectorization -- bincount is 1-D only
        cand[b] = np.bincount(idx_flat, weights=g2[b], minlength=shape[1])
    return bool(np.array_equal(cand, ref))


def build_train_graph(
    tape: Tape,
    inputs: Sequence[Tensor],
    params: Sequence[Parameter],
    outputs: Sequence[Tensor],
) -> TrainGraph:
    """Lower a recorded training step to a :class:`TrainGraph`.

    ``inputs`` are the step's argument tensors, ``params`` the optimizer
    parameters (their ``.grad`` tensors, where present, become the
    graph's gradient outputs), ``outputs`` the loss plus aux scalars.
    """
    values: list[TValue] = []
    vid_of: dict[int, int] = {}

    def new_value(t: Tensor, kind: str, **kw) -> int:
        vid = len(values)
        values.append(
            TValue(vid=vid, shape=t.data.shape, dtype=t.data.dtype, kind=kind, **kw)
        )
        vid_of[id(t)] = vid
        return vid

    param_vids: dict[int, int] = {}
    for t in inputs:
        new_value(t, "input")
    for pos, p in enumerate(params):  # repro: disable=vectorization -- id bookkeeping
        param_vids[pos] = new_value(p, "param", data=p.data, param=p)

    def leaf_vid(t: Tensor) -> int:
        vid = vid_of.get(id(t))
        if vid is not None:
            return vid
        if isinstance(t, Parameter):
            return new_value(t, "extern", data=t.data, param=t)
        return new_value(t, "const", data=t.data)

    ops: list[TOp] = []
    for op_name, tin, tout, attrs in tape.records:
        in_vids = tuple(leaf_vid(t) for t in tin)
        if tout is None:  # side effect (bn_stats)
            ops.append(TOp(op_name, in_vids, None, dict(attrs)))
            continue
        if id(tout) in vid_of:
            raise AssertionError(f"tape op {op_name!r} re-produced a known tensor")
        a = tin[0]
        if op_name in ALIAS_KINDS:
            if op_name == "transpose":
                view = ("transpose", attrs["axes"])
                is_view = True
            elif op_name == "reshape":
                view = ("reshape", attrs["shape"])
                is_view = np.may_share_memory(tout.data, a.data)
            else:  # getitem
                view = ("getitem", attrs["key"])
                is_view = _is_basic_key(attrs["key"])
            if is_view:
                out_vid = new_value(
                    tout,
                    "temp",
                    alias_of=in_vids[0],
                    view=view,
                    contiguous=bool(tout.data.flags.c_contiguous),
                )
                ops.append(TOp("alias", in_vids, out_vid, dict(attrs)))
                continue
            # numpy had to copy (reshape of an incompatible strided view /
            # advanced indexing) — lower to an explicit copy kernel
            out_vid = new_value(tout, "temp")
            kind = "reshape_copy" if op_name == "reshape" else "getitem_copy"
            ops.append(TOp(kind, in_vids, out_vid, dict(attrs)))
            continue
        out_vid = new_value(tout, "temp")
        top = TOp(op_name, in_vids, out_vid, dict(attrs))
        if op_name == "scatter_add_axis":
            top.attrs["bincount_ok"] = _probe_bincount(
                attrs["indices"], tin[0].data, attrs["shape"], tout.data
            )
        ops.append(top)

    grad_vids: dict[int, int] = {}
    for pos, p in enumerate(params):  # repro: disable=vectorization -- id bookkeeping
        if p.grad is None:
            continue
        vid = vid_of.get(id(p.grad))
        if vid is None:
            raise AssertionError(
                "parameter gradient was not produced by a recorded op "
                "(was backward() run under the tape?)"
            )
        grad_vids[pos] = vid

    output_vids = []
    for t in outputs:
        vid = vid_of.get(id(t))
        if vid is None:
            raise AssertionError("step output was not produced by a recorded op")
        output_vids.append(vid)

    return TrainGraph(
        values=values,
        ops=ops,
        input_vids=list(range(len(inputs))),
        param_vids=param_vids,
        grad_vids=grad_vids,
        output_vids=output_vids,
        dtype=outputs[0].data.dtype,
    )
