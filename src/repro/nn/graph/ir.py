"""Op-graph IR: freeze a module tree, trace it into explicit nodes.

Two stages, mirroring TensorRT's parse→build split:

:func:`freeze_module`
    snapshots a :class:`~repro.nn.layers.Module` tree into an immutable
    layer description with *quantized* weights (the same
    store→compute round-trip the eager compiled path applies), so later
    mutation of the live model cannot drift the compiled engine.

:func:`trace_frozen` / :func:`trace_module`
    lowers the frozen tree plus a concrete per-sample input shape into a
    :class:`Graph` of primitive nodes — ``gather`` (im2col), ``matmul``,
    ``ewise``, ``reduce`` and ``reshape`` — emitted in exactly the eager
    evaluation order.  Every elementwise step the eager interpreter
    takes appears as its own node; the fusion passes then *reschedule*
    those steps into matmul epilogues without ever reassociating the
    arithmetic, which is what keeps graph execution bit-identical.

Shapes in the IR are **per-sample**: every batched value's ``ps_shape``
omits the leading batch axis, so one traced graph serves any batch size
and the planner scales buffer sizes by the batch it is planning for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.nn.im2col import conv_out_hw
from repro.nn.layers import (
    BatchNorm,
    Conv2d,
    Dense,
    Flatten,
    GlobalAvgPool2d,
    LeakyReLU,
    MaxPool2d,
    Module,
    PointwiseDense,
    ReLU,
    ResidualBlock,
    Sequential,
    Sigmoid,
    Tanh,
)

__all__ = [
    "EpStep",
    "Graph",
    "Node",
    "Value",
    "freeze_module",
    "quantize",
    "resolve_precision",
    "trace_frozen",
    "trace_module",
]


def resolve_precision(precision: str) -> tuple[np.dtype, np.dtype]:
    """Map a precision name to (storage, compute) dtypes."""
    if precision == "fp16":
        return np.float16, np.float32
    if precision == "fp32":
        return np.float32, np.float32
    if precision == "fp64":
        return np.float64, np.float64
    raise ValueError(f"precision must be 'fp16', 'fp32' or 'fp64', got {precision!r}")


def quantize(arr: np.ndarray, store, compute) -> np.ndarray:
    """Round-trip an array through the storage precision."""
    return np.asarray(arr).astype(store).astype(compute)


# ---------------------------------------------------------------------- IR
@dataclass
class Value:
    """One tensor in the graph: a batched activation or a constant."""

    vid: int
    ps_shape: tuple[int, ...] | None  # per-sample shape; None for constants
    data: np.ndarray | None = None  # constant payload (may be lazily folded)
    name: str = ""

    @property
    def batched(self) -> bool:
        """Whether this value carries a leading batch axis at runtime."""
        return self.ps_shape is not None

    @property
    def ps_elems(self) -> int:
        """Elements per sample."""
        return int(np.prod(self.ps_shape)) if self.ps_shape else 1


@dataclass
class EpStep:
    """One in-place epilogue step fused onto a node's output buffer.

    ``fn`` is an elementwise op (``add``/``mul`` with an operand value,
    or ``max0``/``tanh``/``sigmoid``); ``view_ps`` is the per-sample
    shape the step originally ran at, so the executor applies it through
    a view of the producing node's storage with identical broadcasting.
    """

    fn: str
    operand: int | None = None  # vid of a const or batched value
    view_ps: tuple[int, ...] | None = None


@dataclass
class Node:
    """One primitive op: kind, operand values, output value, attributes."""

    kind: str  # 'gather' | 'matmul' | 'ewise' | 'reduce' | 'reshape'
    inputs: tuple[int, ...]
    out: int
    attrs: dict = field(default_factory=dict)
    epilogue: list[EpStep] = field(default_factory=list)


@dataclass
class Graph:
    """A traced inference program: values, nodes in execution order."""

    store: np.dtype
    compute: np.dtype
    input_vid: int = -1
    output_vid: int = -1
    values: dict[int, Value] = field(default_factory=dict)
    nodes: list[Node] = field(default_factory=list)
    _next_vid: int = 0

    # -------------------------------------------------------------- values
    def new_value(self, ps_shape: tuple[int, ...], name: str = "") -> int:
        """Register a batched value; returns its vid."""
        vid = self._next_vid
        self._next_vid += 1
        self.values[vid] = Value(vid, tuple(int(d) for d in ps_shape), name=name)
        return vid

    def new_const(self, data: np.ndarray, name: str = "") -> int:
        """Register a constant value; returns its vid."""
        vid = self._next_vid
        self._next_vid += 1
        self.values[vid] = Value(vid, None, data=data, name=name)
        return vid

    def new_shaped_const(self, shape: tuple[int, ...], name: str = "") -> int:
        """A constant whose payload a const-producing node will define."""
        vid = self._next_vid
        self._next_vid += 1
        self.values[vid] = Value(vid, None, data=None, name=name)
        return vid

    # ------------------------------------------------------------ topology
    def producer_of(self, vid: int) -> Node | None:
        """The node defining ``vid``, or None for graph inputs/constants."""
        for node in self.nodes:
            if node.out == vid:
                return node
        return None

    def consumers_of(self, vid: int) -> list[Node]:
        """Nodes reading ``vid`` as input or epilogue operand."""
        out = []
        for node in self.nodes:
            if vid in node.inputs or any(s.operand == vid for s in node.epilogue):
                out.append(node)
        return out

    def storage_root(self, vid: int) -> int:
        """Follow reshape-alias producers back to the owning storage."""
        node = self.producer_of(vid)
        while node is not None and node.kind == "reshape":
            vid = node.inputs[0]
            node = self.producer_of(vid)
        return vid

    def const_array(self, vid: int) -> np.ndarray:
        """Materialize a constant value, folding alias chains lazily."""
        value = self.values[vid]
        if value.batched:
            raise ValueError(f"value {vid} is not a constant")
        if value.data is None:
            node = self.producer_of(vid)
            if node is None or node.kind != "reshape":
                raise ValueError(f"constant {vid} has no payload")
            value.data = self.const_array(node.inputs[0]).reshape(
                node.attrs["shape"]
            )
        return value.data


# ------------------------------------------------------------- frozen tree
@dataclass(frozen=True)
class FrozenConv:
    weight: np.ndarray  # (out_c, c*k*k), quantized
    bias: np.ndarray  # (out_c,), quantized
    kernel: int
    stride: int
    padding: int


@dataclass(frozen=True)
class FrozenDense:
    weight: np.ndarray  # (in, out), quantized
    bias: np.ndarray  # (out,), quantized


@dataclass(frozen=True)
class FrozenBatchNorm:
    scale: np.ndarray  # gamma / sqrt(var + eps), fp64 math then quantized
    shift: np.ndarray  # beta - mean * scale


@dataclass(frozen=True)
class FrozenActivation:
    kind: str  # 'relu' | 'leaky' | 'tanh' | 'sigmoid'
    slope: float = 0.0


@dataclass(frozen=True)
class FrozenMaxPool:
    kernel: int


@dataclass(frozen=True)
class FrozenGlobalAvgPool:
    pass


@dataclass(frozen=True)
class FrozenFlatten:
    pass


@dataclass(frozen=True)
class FrozenSequential:
    items: tuple


@dataclass(frozen=True)
class FrozenResidual:
    body: "FrozenLayer"
    projection: Union["FrozenLayer", None]


FrozenLayer = Union[
    FrozenConv,
    FrozenDense,
    FrozenBatchNorm,
    FrozenActivation,
    FrozenMaxPool,
    FrozenGlobalAvgPool,
    FrozenFlatten,
    FrozenSequential,
    FrozenResidual,
]


def freeze_module(module: Module, store, compute) -> FrozenLayer:
    """Snapshot a module tree with weights quantized for inference.

    Raises ``TypeError`` for module types the graph engine cannot lower —
    the same contract as the eager compiler.
    """
    if isinstance(module, Sequential):
        return FrozenSequential(
            tuple(freeze_module(m, store, compute) for m in module.layers)
        )
    if isinstance(module, ResidualBlock):
        proj = (
            freeze_module(module.projection, store, compute)
            if module.projection is not None
            else None
        )
        return FrozenResidual(freeze_module(module.body, store, compute), proj)
    if isinstance(module, Conv2d):
        return FrozenConv(
            quantize(module.weight.data, store, compute),
            quantize(module.bias.data, store, compute),
            module.kernel,
            module.stride,
            module.padding,
        )
    if isinstance(module, (Dense, PointwiseDense)):
        return FrozenDense(
            quantize(module.weight.data, store, compute),
            quantize(module.bias.data, store, compute),
        )
    if isinstance(module, BatchNorm):
        # identical fp64 folding to the eager path, then quantize once
        scale64 = module.gamma.data / np.sqrt(module.running_var + module.eps)
        shift64 = module.beta.data - module.running_mean * scale64
        return FrozenBatchNorm(
            quantize(scale64, store, compute), quantize(shift64, store, compute)
        )
    if isinstance(module, ReLU):
        return FrozenActivation("relu")
    if isinstance(module, LeakyReLU):
        return FrozenActivation("leaky", slope=float(module.slope))
    if isinstance(module, Tanh):
        return FrozenActivation("tanh")
    if isinstance(module, Sigmoid):
        return FrozenActivation("sigmoid")
    if isinstance(module, MaxPool2d):
        return FrozenMaxPool(module.kernel)
    if isinstance(module, GlobalAvgPool2d):
        return FrozenGlobalAvgPool()
    if isinstance(module, Flatten):
        return FrozenFlatten()
    raise TypeError(f"cannot compile module of type {type(module).__name__}")


# ------------------------------------------------------------------ tracing
def trace_module(
    module: Module, input_ps: tuple[int, ...], precision: str = "fp16"
) -> Graph:
    """Freeze and trace a module for per-sample input shape ``input_ps``."""
    store, compute = resolve_precision(precision)
    return trace_frozen(freeze_module(module, store, compute), input_ps, store, compute)


def trace_frozen(
    frozen: FrozenLayer, input_ps: tuple[int, ...], store, compute
) -> Graph:
    """Lower a frozen layer tree into a :class:`Graph`."""
    g = Graph(store=store, compute=compute)
    g.input_vid = g.new_value(tuple(int(d) for d in input_ps), name="input")
    g.output_vid = _trace(g, frozen, g.input_vid)
    return g


def _ewise(g: Graph, fn: str, x: int, operand: int | None = None, name: str = "") -> int:
    ps = g.values[x].ps_shape
    out = g.new_value(ps, name=name)
    inputs = (x,) if operand is None else (x, operand)
    g.nodes.append(Node("ewise", inputs, out, {"fn": fn}))
    return out


def _reshape_const(g: Graph, vid: int, shape: tuple[int, ...], name: str) -> int:
    """Emit a reshape node over a constant (folded away by passes)."""
    out = g.new_shaped_const(shape, name=name)
    g.nodes.append(Node("reshape", (vid,), out, {"shape": shape}))
    return out


def _trace(g: Graph, layer: FrozenLayer, x: int) -> int:
    """Emit nodes for ``layer`` applied to value ``x``; returns out vid."""
    ps = g.values[x].ps_shape

    if isinstance(layer, FrozenSequential):
        for item in layer.items:
            x = _trace(g, item, x)
        return x

    if isinstance(layer, FrozenResidual):
        # eager order: projection first, then body, then add + relu
        skip = _trace(g, layer.projection, x) if layer.projection is not None else x
        body = _trace(g, layer.body, x)
        if g.values[body].ps_shape != g.values[skip].ps_shape:
            raise ValueError(
                f"residual shape mismatch: body {g.values[body].ps_shape} "
                f"vs skip {g.values[skip].ps_shape}"
            )
        added = _ewise(g, "add", body, skip, name="res_add")
        return _ewise(g, "max0", added, name="res_relu")

    if isinstance(layer, FrozenConv):
        if len(ps) != 3:
            raise ValueError(f"Conv2d expects (C, H, W) per sample, got {ps}")
        c, h, w = ps
        k, s, p = layer.kernel, layer.stride, layer.padding
        oh, ow = conv_out_hw(k, s, h + 2 * p, w + 2 * p)
        oc = layer.weight.shape[0]
        ckk = c * k * k
        cols = g.new_value((ckk, oh * ow), name="cols")
        g.nodes.append(
            Node(
                "gather",
                (x,),
                cols,
                {"kernel": k, "stride": s, "padding": p, "in_ps": (c, h, w)},
            )
        )
        w_vid = g.new_const(layer.weight, name="conv_w")
        mm = g.new_value((oc, oh * ow), name="conv_mm")
        g.nodes.append(Node("matmul", (w_vid, cols), mm, {"form": "wx"}))
        b_vid = g.new_const(layer.bias, name="conv_b")
        b_shaped = _reshape_const(g, b_vid, (oc, 1), "conv_b_bcast")
        biased = _ewise(g, "add", mm, b_shaped, name="conv_bias")
        out = g.new_value((oc, oh, ow), name="conv_out")
        g.nodes.append(Node("reshape", (biased,), out, {"shape": (oc, oh, ow)}))
        return out

    if isinstance(layer, FrozenDense):
        w_vid = g.new_const(layer.weight, name="dense_w")
        out_features = int(layer.weight.shape[1])
        mm = g.new_value(ps[:-1] + (out_features,), name="dense_mm")
        g.nodes.append(Node("matmul", (x, w_vid), mm, {"form": "xw"}))
        b_vid = g.new_const(layer.bias, name="dense_b")
        return _ewise(g, "add", mm, b_vid, name="dense_bias")

    if isinstance(layer, FrozenBatchNorm):
        c = int(layer.scale.shape[0])
        scale_vid = g.new_const(layer.scale, name="bn_scale")
        shift_vid = g.new_const(layer.shift, name="bn_shift")
        if len(ps) == 3:
            scale_vid = _reshape_const(g, scale_vid, (c, 1, 1), "bn_scale_bcast")
            shift_vid = _reshape_const(g, shift_vid, (c, 1, 1), "bn_shift_bcast")
        elif len(ps) != 1:
            raise ValueError(f"BatchNorm expects 1-D or 3-D per-sample input, got {ps}")
        scaled = _ewise(g, "mul", x, scale_vid, name="bn_mul")
        return _ewise(g, "add", scaled, shift_vid, name="bn_add")

    if isinstance(layer, FrozenActivation):
        fn = {"relu": "max0", "leaky": "leaky", "tanh": "tanh", "sigmoid": "sigmoid"}[
            layer.kind
        ]
        out = _ewise(g, fn, x, name=layer.kind)
        if layer.kind == "leaky":
            # eager quantizes the slope to the compute dtype scalar
            g.nodes[-1].attrs["slope"] = g.compute(layer.slope)
        return out

    if isinstance(layer, FrozenMaxPool):
        c, h, w = ps
        k = layer.kernel
        if h % k or w % k:
            raise ValueError(f"spatial dims ({h},{w}) not divisible by pool {k}")
        out = g.new_value((c, h // k, w // k), name="maxpool")
        g.nodes.append(
            Node(
                "reduce",
                (x,),
                out,
                {
                    "fn": "max",
                    "pre_ps": (c, h // k, k, w // k, k),
                    "axes_ps": (2, 4),
                },
            )
        )
        return out

    if isinstance(layer, FrozenGlobalAvgPool):
        c = ps[0]
        out = g.new_value((c,), name="gap")
        g.nodes.append(
            Node("reduce", (x,), out, {"fn": "mean", "pre_ps": None, "axes_ps": (1, 2)})
        )
        return out

    if isinstance(layer, FrozenFlatten):
        n = int(np.prod(ps))
        out = g.new_value((n,), name="flatten")
        g.nodes.append(Node("reshape", (x,), out, {"shape": (n,)}))
        return out

    raise TypeError(f"cannot trace frozen layer of type {type(layer).__name__}")
