"""Liveness-based arena planner: every activation in one buffer.

The eager interpreter allocates a fresh temporary per layer per batch.
Here, each storage root (a value plus its reshape aliases) gets a live
interval — defined at its producing step, dead after its last reader —
and a greedy best-fit allocator packs the intervals into offsets of a
single flat arena.  The executor allocates that arena **once** per
(graph, batch) and every kernel writes through preallocated views:
steady-state inference performs zero array allocations.

Two wrinkles the planner owns:

* **pad slots** — a value consumed by a padded-conv gather is laid out
  with one extra element per sample row (the "zero slot" of
  :func:`repro.nn.im2col.conv_zero_slot_plan`); consumers of the value
  itself read a carved ``[:, :n]`` view.
* **scratch** — the executor may request per-node scratch buffers (the
  column-major staging of the batch-folded GEMM); these live only for
  their node's step.

Plans are deterministic: entries are packed in (definition step, kind,
id) order with no hashing involved, so the same graph and batch always
produce the same offsets — asserted by tests via :func:`validate_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Sequence

import numpy as np

from repro.nn.graph.backward import TrainGraph
from repro.nn.graph.ir import Graph

__all__ = [
    "MemoryPlan",
    "StateArena",
    "plan_memory",
    "plan_state_arena",
    "plan_train_memory",
    "validate_plan",
    "validate_train_plan",
]

#: offsets are kept to multiples of 16 elements (64B at fp32) so every
#: buffer starts cache-line/SIMD aligned regardless of packing order
_ALIGN = 16


def _align(n: int) -> int:
    return -(-n // _ALIGN) * _ALIGN


@dataclass
class MemoryPlan:
    """Packed arena layout for one (graph, batch) pair.

    ``slots`` maps ``("value", root_vid)`` and ``("scratch", node_idx, i)``
    keys to ``(offset, elems)``; ``intervals`` holds the live range
    ``(def_step, last_step)`` each slot was packed under.
    """

    batch: int
    total_elems: int
    dtype: np.dtype
    slots: dict[tuple, tuple[int, int]] = field(default_factory=dict)
    intervals: dict[tuple, tuple[int, int]] = field(default_factory=dict)
    slot_roots: frozenset[int] = frozenset()

    @property
    def total_bytes(self) -> int:
        """Arena footprint in bytes."""
        return self.total_elems * np.dtype(self.dtype).itemsize

    @property
    def naive_elems(self) -> int:
        """Sum of all buffer sizes — the no-reuse footprint."""
        return sum(size for _, size in self.slots.values())

    @property
    def n_buffers(self) -> int:
        """Number of distinct packed buffers."""
        return len(self.slots)


def _storage_intervals(g: Graph) -> tuple[dict[int, int], dict[int, int]]:
    """Per-root (definition step, last use step); input defines at -1."""
    defined: dict[int, int] = {g.storage_root(g.input_vid): -1}
    last: dict[int, int] = {g.storage_root(g.input_vid): -1}
    for i, node in enumerate(g.nodes):
        for vid in node.inputs:
            if g.values[vid].batched:
                last[g.storage_root(vid)] = i
        for step in node.epilogue:
            if step.operand is not None and g.values[step.operand].batched:
                last[g.storage_root(step.operand)] = i
        root = g.storage_root(node.out)
        if g.values[node.out].batched and root not in defined:
            defined[root] = i
            last.setdefault(root, i)
    out_root = g.storage_root(g.output_vid)
    last[out_root] = len(g.nodes)
    return defined, last


def plan_memory(
    g: Graph, batch: int, scratch: dict[int, tuple[int, ...]] | None = None
) -> MemoryPlan:
    """Pack all activations and scratch for ``batch`` into one arena.

    ``scratch`` maps node index → absolute element counts of per-node
    scratch buffers (live only at that node's step).
    """
    scratch = scratch or {}
    slot_roots = frozenset(
        g.storage_root(node.inputs[0])
        for node in g.nodes
        if node.kind == "gather" and node.attrs["padding"] > 0
    )
    defined, last = _storage_intervals(g)

    # (def_step, kind_rank, id...) → deterministic packing order
    entries: list[tuple[tuple, tuple, int, tuple[int, int]]] = []
    for root in sorted(defined):
        rowlen = g.values[root].ps_elems + (1 if root in slot_roots else 0)
        entries.append(
            (
                (defined[root], 0, root),
                ("value", root),
                _align(batch * rowlen),
                (defined[root], last.get(root, defined[root])),
            )
        )
    for node_idx in sorted(scratch):
        for i, elems in enumerate(scratch[node_idx]):
            entries.append(
                (
                    (node_idx, 1, node_idx, i),
                    ("scratch", node_idx, i),
                    _align(int(elems)),
                    (node_idx, node_idx),
                )
            )

    plan = MemoryPlan(
        batch=batch, total_elems=0, dtype=np.dtype(g.compute), slot_roots=slot_roots
    )
    _pack_entries(plan, entries)
    return plan


def _pack_entries(
    plan: MemoryPlan,
    entries: list[tuple[tuple, tuple, int, tuple[int, int]]],
) -> None:
    """Greedy best-fit packing of ``(sort_key, key, size, interval)``
    entries into ``plan`` (shared by the inference and training planners).

    Entries are packed in ``sort_key`` order; a buffer's hole is released
    once its interval's last step lies before the entry being placed.
    """
    entries = sorted(entries, key=lambda e: e[0])
    free: list[tuple[int, int]] = []  # (offset, size), sorted by offset
    active: list[tuple[int, tuple, int, int]] = []  # (last, key, offset, size)

    def release(up_to_step: int) -> None:
        nonlocal free
        still = []
        for last_step, key, off, size in active:
            if last_step < up_to_step:
                free.append((off, size))
            else:
                still.append((last_step, key, off, size))
        active[:] = still
        free.sort()
        merged: list[tuple[int, int]] = []
        for off, size in free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((off, size))
        free = merged

    for (def_step, *_rest), key, size, interval in entries:
        release(def_step)
        best = None
        for j, (off, hole) in enumerate(free):
            if hole >= size and (best is None or hole < free[best][1]):
                best = j
        if best is not None:
            off, hole = free.pop(best)
            if hole > size:
                free.append((off + size, hole - size))
                free.sort()
        else:
            off = plan.total_elems
            plan.total_elems += size
        plan.slots[key] = (off, size)
        plan.intervals[key] = interval
        active.append((interval[1], key, off, size))


def _assert_no_overlap(plan: MemoryPlan) -> None:
    items = list(plan.slots.items())
    for key, (off, size) in items:
        if off + size > plan.total_elems:
            raise AssertionError(f"slot {key} exceeds arena")
    for (key_a, (off_a, size_a)), (key_b, (off_b, size_b)) in combinations(items, 2):
        def_a, last_a = plan.intervals[key_a]
        def_b, last_b = plan.intervals[key_b]
        overlap_time = def_a <= last_b and def_b <= last_a
        overlap_mem = off_a < off_b + size_b and off_b < off_a + size_a
        if overlap_time and overlap_mem:
            raise AssertionError(
                f"slots {key_a} and {key_b} overlap in time and memory"
            )


def validate_plan(g: Graph, plan: MemoryPlan) -> bool:
    """Assert no two live-range-overlapping slots share arena elements."""
    _assert_no_overlap(plan)
    return True


# --------------------------------------------------------------- training
def plan_train_memory(
    tg: TrainGraph, scratch: dict[int, tuple[int, ...]] | None = None
) -> MemoryPlan:
    """Pack a training step's activations and gradients into one arena.

    Unlike the inference planner, training-graph shapes are absolute (the
    batch dimension is baked in at trace time), so slot sizes come
    straight from the root value's element count.  Only roots of kind
    ``temp``/``input`` get arena storage — params/externs/consts live in
    their own arrays.  Outputs and parameter gradients carry a
    last-read of ``LAST_FOREVER`` (see
    :meth:`~repro.nn.graph.backward.TrainGraph.root_intervals`) so the
    optimizer and the caller read stable buffers every step.

    ``scratch`` maps op index → absolute element counts of per-op
    scratch buffers in the arena dtype (live only at that op's step).
    """
    scratch = scratch or {}
    defined, last = tg.root_intervals()

    entries: list[tuple[tuple, tuple, int, tuple[int, int]]] = []
    for root in sorted(defined):
        entries.append(
            (
                (defined[root], 0, root),
                ("value", root),
                _align(tg.values[root].size),
                (defined[root], last.get(root, defined[root])),
            )
        )
    for op_idx in sorted(scratch):
        for i, elems in enumerate(scratch[op_idx]):
            entries.append(
                (
                    (op_idx, 1, op_idx, i),
                    ("scratch", op_idx, i),
                    _align(int(elems)),
                    (op_idx, op_idx),
                )
            )

    plan = MemoryPlan(batch=0, total_elems=0, dtype=np.dtype(tg.dtype))
    _pack_entries(plan, entries)
    return plan


def validate_train_plan(plan: MemoryPlan) -> bool:
    """Assert a training arena plan has no time×memory slot overlap."""
    _assert_no_overlap(plan)
    return True


@dataclass
class StateArena:
    """Persistent flat arena for optimizer state (moment buffers).

    Moments must outlive any single batch-size-specific activation plan,
    so they get their own arena owned by the optimizer.  ``views`` holds
    one zero-initialised view per requested shape, in request order.
    """

    buf: np.ndarray
    views: list[np.ndarray]
    slots: list[tuple[int, int]]  # (offset, elems) per view

    @property
    def total_bytes(self) -> int:
        """Arena footprint in bytes."""
        return self.buf.nbytes


def plan_state_arena(
    shapes: Sequence[tuple[int, ...]], dtype: np.dtype
) -> StateArena:
    """Lay ``shapes`` out back-to-back (aligned) in one zeroed buffer."""
    slots: list[tuple[int, int]] = []
    offset = 0
    for shape in shapes:
        elems = int(np.prod(shape, dtype=np.int64)) if shape else 1
        slots.append((offset, elems))
        offset += _align(elems)
    buf = np.zeros(offset, dtype=dtype)
    views = [
        buf[off : off + elems].reshape(shape)
        for (off, elems), shape in zip(slots, shapes)
    ]
    return StateArena(buf=buf, views=views, slots=slots)
