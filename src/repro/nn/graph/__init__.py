"""Graph-compiled inference: op IR, fusion passes, arena planning, execution.

The TensorRT analogue of this codebase (§6.1.1): instead of interpreting
a module tree closure-by-closure, :func:`trace_module` lowers it into an
explicit op graph, :func:`optimize` runs fusion/folding passes over the
graph (conv+BN folding, matmul-epilogue activation fusion, residual
add+ReLU fusion, constant folding, dead-op elimination), a liveness-based
planner packs every intermediate into one preallocated buffer arena, and
:class:`GraphExecutor` runs the plan with ``out=`` kernels and in-place
epilogues — zero steady-state allocations per batch.

Hard contract: for every supported layer and precision, the executed
graph's predictions are **bit-identical** to the eager compiled path of
:mod:`repro.nn.inference`.  Passes therefore never reassociate floating
point — they fold at the *scheduling* level (same arithmetic, same
order, fewer passes and no temporaries), and the one kernel substitution
that could legally change rounding (batch-folded single-GEMM convs) is
gated by a bitwise probe with automatic fallback.

Training extends the same pipeline through the backward pass:
:func:`build_train_graph` lowers one tape-recorded eager step (forward,
``backward()``, optimizer) to a :class:`TrainGraph`,
:func:`optimize_train` runs the training passes (dead-gradient pruning,
identity simplification, in-place coalescing), :func:`plan_train_memory`
arena-packs activations/gradients/scratch with
:func:`validate_train_plan` asserting no live-range overlap, optimizer
moments persist in :class:`StateArena` buffers, and :class:`TrainStep`
replays it all as one compiled step — bitwise-identical weights, losses
and optimizer state vs. the eager trainer at the same seed.
"""

from repro.nn.graph.backward import TrainGraph, build_train_graph
from repro.nn.graph.executor import GraphExecutor
from repro.nn.graph.ir import Graph, Node, Value, freeze_module, trace_module
from repro.nn.graph.passes import PassStats, default_passes, optimize, optimize_train
from repro.nn.graph.planner import (
    MemoryPlan,
    StateArena,
    plan_memory,
    plan_state_arena,
    plan_train_memory,
    validate_plan,
    validate_train_plan,
)
from repro.nn.graph.train import TrainStep

__all__ = [
    "Graph",
    "GraphExecutor",
    "MemoryPlan",
    "Node",
    "PassStats",
    "StateArena",
    "TrainGraph",
    "TrainStep",
    "Value",
    "build_train_graph",
    "default_passes",
    "freeze_module",
    "optimize",
    "optimize_train",
    "plan_memory",
    "plan_state_arena",
    "plan_train_memory",
    "trace_module",
    "validate_plan",
    "validate_train_plan",
]
