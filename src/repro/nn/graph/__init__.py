"""Graph-compiled inference: op IR, fusion passes, arena planning, execution.

The TensorRT analogue of this codebase (§6.1.1): instead of interpreting
a module tree closure-by-closure, :func:`trace_module` lowers it into an
explicit op graph, :func:`optimize` runs fusion/folding passes over the
graph (conv+BN folding, matmul-epilogue activation fusion, residual
add+ReLU fusion, constant folding, dead-op elimination), a liveness-based
planner packs every intermediate into one preallocated buffer arena, and
:class:`GraphExecutor` runs the plan with ``out=`` kernels and in-place
epilogues — zero steady-state allocations per batch.

Hard contract: for every supported layer and precision, the executed
graph's predictions are **bit-identical** to the eager compiled path of
:mod:`repro.nn.inference`.  Passes therefore never reassociate floating
point — they fold at the *scheduling* level (same arithmetic, same
order, fewer passes and no temporaries), and the one kernel substitution
that could legally change rounding (batch-folded single-GEMM convs) is
gated by a bitwise probe with automatic fallback.
"""

from repro.nn.graph.executor import GraphExecutor
from repro.nn.graph.ir import Graph, Node, Value, freeze_module, trace_module
from repro.nn.graph.passes import PassStats, default_passes, optimize
from repro.nn.graph.planner import MemoryPlan, plan_memory, validate_plan

__all__ = [
    "Graph",
    "GraphExecutor",
    "MemoryPlan",
    "Node",
    "PassStats",
    "Value",
    "default_passes",
    "freeze_module",
    "optimize",
    "plan_memory",
    "trace_module",
    "validate_plan",
]
