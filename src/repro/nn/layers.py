"""Neural-network modules on top of the autograd engine.

A small PyTorch-shaped module system: ``Module`` owns ``Parameter``s,
``Sequential`` composes, and the layer set covers what the paper's two
models need — a residual CNN for the ML1 docking surrogate (ResNet-50's
role at laptop scale) and PointNet-style shared MLPs for the 3D-AAE.
"""

from __future__ import annotations

import numpy as np

from repro.nn import autograd as ag
from repro.nn.autograd import Tensor
from repro.nn.im2col import conv_index_plan

__all__ = [
    "Parameter",
    "Module",
    "Dense",
    "Conv2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "BatchNorm",
    "Sequential",
    "ResidualBlock",
    "PointwiseDense",
]


class Parameter(Tensor):
    """A trainable tensor."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class: parameter discovery, train/eval mode, state dicts."""

    def __init__(self) -> None:
        self.training = True

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        """Forward pass."""
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """All trainable parameters, depth-first, deterministic order."""
        params: list[Parameter] = []
        for name in sorted(vars(self)):
            value = getattr(self, name)
            if isinstance(value, Parameter):
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Parameter):
                        params.append(item)
        return params

    def modules(self) -> list["Module"]:
        """This module and every submodule, depth-first."""
        found: list[Module] = [self]
        for name in sorted(vars(self)):
            value = getattr(self, name)
            if isinstance(value, Module):
                found.extend(value.modules())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        found.extend(item.modules())
        return found

    def train(self) -> "Module":
        """Set training mode on every submodule."""
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        """Set inference mode on every submodule."""
        for m in self.modules():
            m.training = False
        return self

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        for p in self.parameters():
            p.grad = None

    def n_parameters(self) -> int:
        """Total trainable parameter count."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------- state
    def state_dict(self) -> dict[str, np.ndarray]:
        """Parameter arrays keyed by deterministic position."""
        return {f"p{i}": p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays written by :meth:`state_dict`."""
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} arrays, model has {len(params)} parameters"
            )
        for i, p in enumerate(params):
            arr = state[f"p{i}"]
            if arr.shape != p.shape:
                raise ValueError(f"shape mismatch at p{i}: {arr.shape} vs {p.shape}")
            p.data = arr.copy()


def _he_init(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int):
    return rng.normal(scale=np.sqrt(2.0 / fan_in), size=shape)


class Dense(Module):
    """Affine layer ``y = x W + b`` on (batch, features) inputs."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        super().__init__()
        self.weight = Parameter(_he_init(rng, (in_features, out_features), in_features))
        self.bias = Parameter(np.zeros(out_features))

    def forward(self, x: Tensor) -> Tensor:
        """Forward pass."""
        return ag.matmul(x, self.weight) + self.bias


class PointwiseDense(Module):
    """Shared (per-point) affine layer on (batch, points, features) inputs.

    The PointNet building block: one weight matrix applied to every point —
    equivalent to Conv1d with kernel 1.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        super().__init__()
        self.weight = Parameter(_he_init(rng, (in_features, out_features), in_features))
        self.bias = Parameter(np.zeros(out_features))

    def forward(self, x: Tensor) -> Tensor:
        """Forward pass."""
        return ag.matmul(x, self.weight) + self.bias


class Conv2d(Module):
    """2-D convolution via im2col + matmul on (B, C, H, W) inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
    ):
        super().__init__()
        fan_in = in_channels * kernel * kernel
        self.weight = Parameter(
            _he_init(rng, (out_channels, in_channels * kernel * kernel), fan_in)
        )
        self.bias = Parameter(np.zeros(out_channels))
        self.kernel = kernel
        self.stride = stride
        self.padding = padding

    def _gather_indices(self, c: int, h: int, w: int) -> np.ndarray:
        """Flat indices into (C*H*W) selecting each im2col patch column.

        Plans live in the process-wide LRU of :mod:`repro.nn.im2col`, so
        the sixteen identical residual-stage convs of a deep model share
        one index array instead of building one per layer instance.
        """
        return conv_index_plan(self.kernel, self.stride, c, h, w)

    def forward(self, x: Tensor) -> Tensor:
        """Forward pass."""
        b, c, h, w = x.shape
        x = ag.pad2d(x, self.padding)
        hp, wp = h + 2 * self.padding, w + 2 * self.padding
        k, s = self.kernel, self.stride
        oh = (hp - k) // s + 1
        ow = (wp - k) // s + 1
        idx = self._gather_indices(c, hp, wp)
        flat = ag.reshape(x, (b, c * hp * wp))
        cols = ag.take(flat, idx, axis=1)  # (b, c*k*k, oh*ow)
        out = ag.matmul(self.weight, cols)  # (b, out_c, oh*ow) via broadcasting
        out = out + ag.reshape(self.bias, (1, -1, 1))
        return ag.reshape(out, (b, self.weight.shape[0], oh, ow))


class MaxPool2d(Module):
    """2×2 (or k×k) non-overlapping max pooling via reshape."""

    def __init__(self, kernel: int = 2):
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        """Forward pass."""
        b, c, h, w = x.shape
        k = self.kernel
        if h % k or w % k:
            raise ValueError(f"spatial dims ({h},{w}) not divisible by pool {k}")
        x = ag.reshape(x, (b, c, h // k, k, w // k, k))
        return ag.tensor_max(x, axis=(3, 5))


class GlobalAvgPool2d(Module):
    """Average over spatial dims: (B, C, H, W) → (B, C)."""

    def forward(self, x: Tensor) -> Tensor:
        """Forward pass."""
        return ag.tensor_mean(x, axis=(2, 3))


class Flatten(Module):
    """Collapse all non-batch dims: (B, …) → (B, features)."""
    def forward(self, x: Tensor) -> Tensor:
        """Forward pass."""
        return ag.reshape(x, (x.shape[0], -1))


class ReLU(Module):
    """Elementwise max(x, 0) activation."""
    def forward(self, x: Tensor) -> Tensor:
        """Forward pass."""
        return ag.relu(x)


class LeakyReLU(Module):
    """Leaky ReLU activation with configurable negative slope."""
    def __init__(self, slope: float = 0.2):
        super().__init__()
        self.slope = slope

    def forward(self, x: Tensor) -> Tensor:
        """Forward pass."""
        return ag.leaky_relu(x, self.slope)


class Tanh(Module):
    """Hyperbolic tangent activation."""
    def forward(self, x: Tensor) -> Tensor:
        """Forward pass."""
        return ag.tanh(x)


class Sigmoid(Module):
    """Logistic sigmoid activation."""
    def forward(self, x: Tensor) -> Tensor:
        """Forward pass."""
        return ag.sigmoid(x)


class BatchNorm(Module):
    """Batch normalization over the batch axis (and spatial axes for 4-D).

    Keeps running statistics for eval mode.  Works on (B, F) and
    (B, C, H, W) inputs; for the latter, statistics are per channel.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.momentum = momentum
        self.eps = eps
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        """Forward pass."""
        if x.ndim == 4:
            axes = (0, 2, 3)
            shape = (1, -1, 1, 1)
        elif x.ndim == 2:
            axes = (0,)
            shape = (1, -1)
        else:
            raise ValueError(f"BatchNorm expects 2-D or 4-D input, got {x.ndim}-D")
        if self.training:
            mean = ag.tensor_mean(x, axis=axes, keepdims=True)
            var = ag.tensor_mean((x - mean) * (x - mean), axis=axes, keepdims=True)
            # in-place EMA (same values as `(1-m)*rm + m*mean`), so the
            # arrays keep their identity — the compiled TrainStep replays
            # this update into the very same buffers
            np.multiply(self.running_mean, 1 - self.momentum, out=self.running_mean)
            self.running_mean += self.momentum * mean.data.reshape(-1)
            np.multiply(self.running_var, 1 - self.momentum, out=self.running_var)
            self.running_var += self.momentum * var.data.reshape(-1)
            ag.tape_side_effect("bn_stats", (mean, var), layer=self)
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))
        xn = (x - mean) * ag.power(var + self.eps, -0.5)
        return xn * ag.reshape(self.gamma, shape) + ag.reshape(self.beta, shape)


class Sequential(Module):
    """Compose layers in order."""
    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        """Forward pass."""
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, i: int) -> Module:
        return self.layers[i]

    def __len__(self) -> int:
        return len(self.layers)


class ResidualBlock(Module):
    """``y = act(f(x) + proj(x))`` — the ResNet skip-connection block."""

    def __init__(self, body: Module, projection: Module | None = None):
        super().__init__()
        self.body = body
        self.projection = projection

    def forward(self, x: Tensor) -> Tensor:
        """Forward pass."""
        skip = self.projection(x) if self.projection is not None else x
        return ag.relu(self.body(x) + skip)
