"""Shared im2col index plans: one process-wide LRU for every conv.

A convolution lowered to matmul needs a gather plan — the flat indices
that pull each im2col patch column out of a ``(C, H, W)`` sample.  The
plan depends only on ``(kernel, stride, C, H, W)``, yet the old design
cached it per ``Conv2d`` *instance*: sixteen identical residual-block
convs built sixteen copies of the same multi-megabyte index array, and
nothing ever evicted them.  This module owns the plans instead — a
bounded, module-level LRU shared by the training forward pass, the eager
compiled path and the graph executor.

Two plan flavours:

:func:`conv_index_plan`
    indices into an already *padded* ``(C, Hp, Wp)`` sample — what the
    eager path uses after ``np.pad``.

:func:`conv_zero_slot_plan`
    indices into the *unpadded* sample plus one trailing "zero slot":
    out-of-bounds taps map to index ``C*H*W``, whose value the executor
    pins to 0.  The graph engine gathers padding without ever
    materializing a padded copy of the activation.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["conv_index_plan", "conv_zero_slot_plan", "conv_out_hw", "plan_cache_info"]

#: bound on distinct (kernel, stride, C, H, W) geometries kept alive;
#: generous for real models (the surrogate needs 5) while stopping a
#: shape-sweeping workload from pinning unbounded index memory
_MAX_PLANS = 128


def conv_out_hw(kernel: int, stride: int, h: int, w: int) -> tuple[int, int]:
    """Output spatial dims of a VALID conv over an ``(h, w)`` input."""
    return (h - kernel) // stride + 1, (w - kernel) // stride + 1


@lru_cache(maxsize=_MAX_PLANS)
def conv_index_plan(kernel: int, stride: int, c: int, h: int, w: int) -> np.ndarray:
    """Flat indices into ``(C*H*W)`` selecting each im2col patch column.

    Returns an int64 array of shape ``(c*kernel*kernel, oh*ow)`` whose
    column ``oy*ow + ox`` lists the flat sample offsets of the receptive
    field at output position ``(oy, ox)``.  Cached process-wide; callers
    must treat the result as read-only.
    """
    oh, ow = conv_out_hw(kernel, stride, h, w)
    # patch skeleton at output (0, 0): channel-major, then kernel row/col
    patch = (
        np.arange(c)[:, None, None] * (h * w)
        + (np.arange(kernel)[:, None] * w)[None]
        + np.arange(kernel)[None, None, :]
    ).reshape(-1)
    # top-left corner offset of every output position
    corners = (
        np.arange(oh)[:, None] * (stride * w) + np.arange(ow)[None, :] * stride
    ).reshape(-1)
    idx = patch[:, None] + corners[None, :]
    idx.setflags(write=False)
    return idx


@lru_cache(maxsize=_MAX_PLANS)
def conv_zero_slot_plan(
    kernel: int, stride: int, padding: int, c: int, h: int, w: int
) -> np.ndarray:
    """Padded-conv gather plan over an unpadded sample with a zero slot.

    Derives the plan a padded conv would use over ``(c, h+2p, w+2p)``,
    then maps every in-bounds tap back to its unpadded flat index and
    every border tap to the sentinel ``c*h*w`` — the "zero slot" the
    executor appends to each sample row and pins to 0.  Gathering with
    this plan yields bit-identical im2col columns to pad-then-gather.
    """
    if padding == 0:
        return conv_index_plan(kernel, stride, c, h, w)
    hp, wp = h + 2 * padding, w + 2 * padding
    padded = conv_index_plan(kernel, stride, c, hp, wp)
    ch, rem = np.divmod(padded, hp * wp)
    y, x = np.divmod(rem, wp)
    inside = (
        (y >= padding) & (y < padding + h) & (x >= padding) & (x < padding + w)
    )
    idx = np.where(
        inside, ch * (h * w) + (y - padding) * w + (x - padding), c * h * w
    )
    idx.setflags(write=False)
    return idx


def plan_cache_info():
    """Combined ``lru_cache`` statistics for both plan flavours."""
    return {
        "index": conv_index_plan.cache_info(),
        "zero_slot": conv_zero_slot_plan.cache_info(),
    }
