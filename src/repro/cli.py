"""Command-line interface.

Subcommands map to the library's main entry points:

* ``repro campaign``  — run a scaled-down IMPECCABLE campaign
* ``repro dock``      — dock SMILES (arguments or a file) against a target
* ``repro screen``    — train a surrogate on docked data and rank a library
* ``repro costs``     — print the derived Table 2 cost model
* ``repro simulate``  — run the integrated workflow on the simulated cluster
* ``repro stream``    — streamed, checkpointed library screen (resumable)
* ``repro trace``     — traced demo run exporting a Chrome trace + summary
* ``repro serve``     — scripted multi-tenant campaign service scenario

Invoke as ``python -m repro <subcommand> --help``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IMPECCABLE reproduction: ML+physics drug-discovery campaign",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_campaign = sub.add_parser("campaign", help="run the integrated campaign loop")
    p_campaign.add_argument("--target", default="PLPro")
    p_campaign.add_argument("--pdb-id", default=None)
    p_campaign.add_argument("--library-size", type=int, default=60)
    p_campaign.add_argument("--iterations", type=int, default=2)
    p_campaign.add_argument("--seed", type=int, default=0)
    p_campaign.add_argument(
        "--no-enrichment", action="store_true",
        help="skip the ground-truth oracle (much faster)",
    )

    p_dock = sub.add_parser("dock", help="dock SMILES against a target")
    p_dock.add_argument("smiles", nargs="+", help="SMILES strings to dock")
    p_dock.add_argument("--target", default="PLPro")
    p_dock.add_argument("--pdb-id", default=None)
    p_dock.add_argument("--seed", type=int, default=0)
    p_dock.add_argument("--local-search", default="adadelta",
                        choices=["adadelta", "solis-wets"])

    p_screen = sub.add_parser(
        "screen", help="train a surrogate on docked data, rank a library"
    )
    p_screen.add_argument("--target", default="PLPro")
    p_screen.add_argument("--train-size", type=int, default=120)
    p_screen.add_argument("--library-size", type=int, default=200)
    p_screen.add_argument("--top", type=int, default=10)
    p_screen.add_argument("--seed", type=int, default=0)

    sub.add_parser("costs", help="print the derived Table 2 cost model")

    p_sim = sub.add_parser(
        "simulate", help="integrated (CG)-(S2)-(FG) run on the simulated cluster"
    )
    p_sim.add_argument("--nodes", type=int, default=120)
    p_sim.add_argument("--cg", type=int, default=96)
    p_sim.add_argument("--s2", type=int, default=12)
    p_sim.add_argument("--fg", type=int, default=24)
    p_sim.add_argument("--cohorts", type=int, default=6)

    p_stream = sub.add_parser(
        "stream",
        help="streamed ML1→S1 screen over on-disk shards, resumable "
        "from a checkpoint after a kill",
    )
    p_stream.add_argument("--target", default="PLPro")
    p_stream.add_argument("--library-size", type=int, default=64)
    p_stream.add_argument("--shard-size", type=int, default=16)
    p_stream.add_argument("--keep-top", type=int, default=8)
    p_stream.add_argument("--train-size", type=int, default=16,
                          help="compounds docked to bootstrap the surrogate")
    p_stream.add_argument("--dock-shard-size", type=int, default=8)
    p_stream.add_argument("--seed", type=int, default=0)
    p_stream.add_argument("--workdir", default="stream-run",
                          help="holds shards/ and checkpoints/")
    p_stream.add_argument("--out", default=None,
                          help="write the docked top compounds as CSV here")
    p_stream.add_argument("--fresh", action="store_true",
                          help="discard any existing checkpoints first")
    p_stream.add_argument("--kill-after", type=int, default=None, metavar="N",
                          help="abort (exit 3) after N completed shards — "
                          "exercises the kill/resume path")

    p_trace = sub.add_parser(
        "trace",
        help="traced demo run; exports a Chrome trace (chrome://tracing, Perfetto)",
    )
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--out", default="trace.json",
                         help="Chrome trace-event output path")
    p_trace.add_argument("--jsonl", default=None,
                         help="also write a flat JSONL span dump here")
    p_trace.add_argument("--check", action="store_true",
                         help="validate the exported trace; non-zero exit on errors")

    p_serve = sub.add_parser(
        "serve",
        help="run a scripted multi-tenant service scenario on a shared pilot",
    )
    p_serve.add_argument("--scenario", default="demo", choices=["demo"],
                         help="which scripted scenario to run")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--trace", default=None, metavar="PATH",
                         help="write the tenant-tagged span trace as JSONL here")
    p_serve.add_argument("--check", action="store_true",
                         help="run the scenario twice; non-zero exit unless the "
                         "traces are byte-identical and digests match")
    return parser


def _cmd_campaign(args) -> int:
    from repro.core import CampaignConfig, ImpeccableCampaign
    from repro.docking.receptor import TARGETS

    pdb = args.pdb_id or TARGETS[args.target][0]
    config = CampaignConfig(
        target=args.target,
        pdb_id=pdb,
        library_size=args.library_size,
        seed_train_size=max(10, args.library_size // 3),
        iterations=args.iterations,
        compute_enrichment=not args.no_enrichment,
        seed=args.seed,
    )
    result = ImpeccableCampaign(config).run()
    for it in result.iterations:
        print(it.metrics.summary())
    best = min(result.all_fg(), key=lambda r: r.binding_free_energy, default=None)
    if best is not None:
        print(f"\nbest FG ΔG: {best.binding_free_energy:.1f} ± {best.sem:.1f} "
              f"kcal/mol ({best.compound_id})")
    return 0


def _cmd_dock(args) -> int:
    from repro.docking import DockingEngine, make_receptor

    receptor = make_receptor(args.target, args.pdb_id)
    engine = DockingEngine(receptor, seed=args.seed, local_search=args.local_search)
    results = [engine.dock_smiles(s, f"CLI{i:04d}") for i, s in enumerate(args.smiles)]
    print(f"{'id':<8s} {'score':>9s}  smiles")
    for r in DockingEngine.rank(results):
        print(f"{r.compound_id:<8s} {r.score:9.2f}  {r.smiles}")
    return 0


def _cmd_screen(args) -> int:
    from repro.chem import generate_library
    from repro.docking import DockingEngine, LGAConfig, make_receptor
    from repro.surrogate import InferenceEngine, TrainConfig, train_surrogate

    receptor = make_receptor(args.target)
    train_lib = generate_library(args.train_size, seed=args.seed, name="train")
    engine = DockingEngine(
        receptor, seed=args.seed, config=LGAConfig(population=12, generations=5)
    )
    print(f"docking {args.train_size} training compounds ...", file=sys.stderr)
    scores = np.array([r.score for r in engine.dock_library(train_lib)])
    surrogate = train_surrogate(
        train_lib.smiles(), scores, TrainConfig(epochs=10), seed=args.seed
    )
    library = generate_library(args.library_size, seed=args.seed + 1, name="screen")
    scored = InferenceEngine(surrogate).score_smiles(
        library.smiles(), [e.compound_id for e in library]
    )
    print(f"{'rank':>4s} {'id':<12s} {'pred':>6s}  smiles")
    for i, s in enumerate(
        sorted(scored, key=lambda x: x.score, reverse=True)[: args.top]
    ):
        print(f"{i + 1:4d} {s.compound_id:<12s} {s.score:6.3f}  {s.smiles}")
    return 0


def _cmd_costs(_args) -> int:
    from repro.core import PAPER_TABLE2, CostModel

    cm = CostModel()
    print(f"{'stage':<7s} {'nodes/lig':>10s} {'node-h/lig':>12s} {'paper':>10s}")
    for stage, paper in PAPER_TABLE2.items():
        print(f"{stage:<7s} {cm.nodes_per_ligand(stage):10.3f} "
              f"{cm.node_hours_per_ligand(stage):12.5f} {paper:10.5f}")
    return 0


def _cmd_simulate(args) -> int:
    from repro.core import SimulatedCampaignConfig, simulate_integrated_run

    pilot = simulate_integrated_run(
        SimulatedCampaignConfig(
            n_nodes=args.nodes,
            cg_compounds=args.cg,
            s2_compounds=args.s2,
            fg_compounds=args.fg,
            cohorts=args.cohorts,
        )
    )
    series = pilot.utilization.series()
    print(series.ascii_plot(width=66, height=10))
    print(f"makespan {series.times[-1]:.0f}s, "
          f"mean GPU utilization {series.average_utilization():.2f}, "
          f"{len(pilot.records)} tasks")
    return 0


def _cmd_stream(args) -> int:
    import shutil
    from pathlib import Path

    from repro.chem import generate_library, write_library_shards
    from repro.core.streaming import run_streamed_screen
    from repro.docking import DockingEngine, LGAConfig, make_receptor
    from repro.surrogate import TrainConfig, train_surrogate

    workdir = Path(args.workdir)
    shard_dir = workdir / "shards"
    ckpt_dir = workdir / "checkpoints"
    if args.fresh and ckpt_dir.exists():
        shutil.rmtree(ckpt_dir)

    existing = sorted(shard_dir.glob("*.ndjson.gz"))
    if existing:
        paths = existing
        print(f"reusing {len(paths)} shards in {shard_dir}", file=sys.stderr)
    else:
        paths = write_library_shards(
            shard_dir, args.library_size, seed=args.seed,
            shard_size=args.shard_size,
        )
        print(f"wrote {len(paths)} NDJSON shards to {shard_dir}", file=sys.stderr)

    receptor = make_receptor(args.target)
    lga = LGAConfig(population=12, generations=5)
    print(f"bootstrapping surrogate on {args.train_size} docked compounds ...",
          file=sys.stderr)
    train_lib = generate_library(args.train_size, seed=args.seed + 1, name="boot")
    boot_engine = DockingEngine(receptor, seed=args.seed, config=lga)
    scores = np.array([r.score for r in boot_engine.dock_library(train_lib)])
    surrogate = train_surrogate(
        train_lib.smiles(), scores, TrainConfig(epochs=6), seed=args.seed
    )

    shards_done = 0

    def on_shard(stage: str, shard_id: str) -> None:
        nonlocal shards_done
        shards_done += 1
        print(f"  [{stage}] {shard_id} done ({shards_done} shards)",
              file=sys.stderr)
        if args.kill_after is not None and shards_done >= args.kill_after:
            print(f"--kill-after {args.kill_after}: aborting mid-run "
                  "(rerun to resume)", file=sys.stderr)
            raise SystemExit(3)

    engine = DockingEngine(receptor, seed=args.seed, config=lga)
    result = run_streamed_screen(
        engine, surrogate, paths,
        keep_top=args.keep_top,
        checkpoint_dir=ckpt_dir,
        dock_shard_size=args.dock_shard_size,
        on_shard=on_shard,
    )
    print(f"streamed {result.records_streamed} records "
          f"({result.shards_total} ML1 shards, {result.shards_resumed} resumed; "
          f"{result.dock_shards_total} S1 shards, "
          f"{result.dock_shards_resumed} resumed)", file=sys.stderr)
    ranked = DockingEngine.rank(result.docked)
    print(f"{'rank':>4s} {'id':<12s} {'dock':>8s} {'pred':>6s}  smiles")
    pred = {s.compound_id: s.score for s in result.selected}
    for i, r in enumerate(ranked):
        print(f"{i + 1:4d} {r.compound_id:<12s} {r.score:8.2f} "
              f"{pred[r.compound_id]:6.3f}  {r.smiles}")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write("compound_id,smiles,dock_score,pred_score\n")
            for r in ranked:
                fh.write(f"{r.compound_id},{r.smiles},{r.score!r},"
                         f"{pred[r.compound_id]!r}\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def _cmd_trace(args) -> int:
    from pathlib import Path

    from repro.core.tracedemo import run_traced_demo
    from repro.telemetry import (
        chrome_trace_json,
        summary_table,
        to_chrome_trace,
        to_jsonl,
        validate_chrome_trace,
    )

    tracer = run_traced_demo(seed=args.seed)
    trace = to_chrome_trace(tracer)
    Path(args.out).write_text(chrome_trace_json(tracer))
    print(f"wrote {args.out} ({len(trace['traceEvents'])} events)", file=sys.stderr)
    if args.jsonl:
        Path(args.jsonl).write_text(to_jsonl(tracer))
        print(f"wrote {args.jsonl}", file=sys.stderr)
    print(summary_table(tracer))
    if args.check:
        errors = validate_chrome_trace(trace)
        if errors:
            for err in errors:
                print(f"trace schema error: {err}", file=sys.stderr)
            return 1
        print("trace schema: OK", file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    from pathlib import Path

    from repro.service import demo_scenario, run_scenario

    scenario = demo_scenario(seed=args.seed)
    report = run_scenario(scenario)
    for tenant, subs in sorted(report.tenant_states().items()):
        tinfo = report.status["tenants"][tenant]
        print(f"{tenant:<10s} weight={tinfo['weight']} share={tinfo['share']:.3f} "
              f"node-s={tinfo['node_seconds']:.0f} tasks={tinfo['n_tasks_done']}")
        for name, state in sorted(subs.items()):
            print(f"  {name:<12s} {state}")
    print(f"makespan {report.makespan:.0f}s, "
          f"{len(report.trace_jsonl.splitlines())} spans", file=sys.stderr)
    if args.trace:
        Path(args.trace).write_text(report.trace_jsonl)
        print(f"wrote {args.trace}", file=sys.stderr)
    if args.check:
        again = run_scenario(demo_scenario(seed=args.seed))
        if again.trace_jsonl != report.trace_jsonl:
            print("replay check: traces differ", file=sys.stderr)
            return 1
        if again.digests != report.digests:
            print("replay check: result digests differ", file=sys.stderr)
            return 1
        print("replay check: byte-identical", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "campaign": _cmd_campaign,
        "dock": _cmd_dock,
        "screen": _cmd_screen,
        "costs": _cmd_costs,
        "simulate": _cmd_simulate,
        "stream": _cmd_stream,
        "trace": _cmd_trace,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
