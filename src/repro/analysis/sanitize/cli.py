"""``repro-sanitize``: run a Python script under the concurrency sanitizer.

The pytest plugin covers the test suite; this entry point covers
everything else — a campaign driver, a repro script for a suspected
deadlock::

    repro-sanitize path/to/script.py [script args...]

It installs the lock-order monitor, executes the script as ``__main__``
(argv rewritten, exactly like ``python script.py`` would see it),
then prints the acquisition summary and the cycle report.  Exit status:
0 when no cycle was observed, 1 on any lock-order cycle, 2 on usage
errors.  The script's own exception (if any) propagates after the
report so a crash never masks the concurrency verdict.
"""

from __future__ import annotations

import argparse
import runpy
import sys
from pathlib import Path

from repro.analysis.sanitize.monitor import install, uninstall

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sanitize",
        description=(
            "run a script with instrumented locks and fail on "
            "lock-order cycles (latent deadlocks)"
        ),
    )
    parser.add_argument("script", type=Path, help="Python script to run")
    parser.add_argument(
        "args", nargs=argparse.REMAINDER, help="arguments passed to the script"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.script.is_file():
        print(f"repro-sanitize: no such script: {args.script}", file=sys.stderr)
        return 2

    monitor = install()
    saved_argv = sys.argv
    sys.argv = [str(args.script), *args.args]
    error: BaseException | None = None
    try:
        runpy.run_path(str(args.script), run_name="__main__")
    except SystemExit as exc:  # script called exit(); keep the report
        if exc.code not in (None, 0):
            error = exc
    except BaseException as exc:
        error = exc
    finally:
        sys.argv = saved_argv
        uninstall()

    print(
        f"repro-sanitize: {monitor.n_acquisitions} acquisition(s) across "
        f"{len(monitor.locks)} instrumented lock(s), "
        f"{len(monitor.edges)} order edge(s)"
    )
    print(monitor.render_cycles())
    if error is not None:
        raise error
    return 1 if monitor.cycles() else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
