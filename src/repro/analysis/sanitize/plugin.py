"""pytest plugin: run the test session under the concurrency sanitizer.

``pytest --repro-sanitize`` installs the lock-order monitor before
collection (so every lock the tests create — dataloader queues, raptor
ledger locks, tracer internals — is instrumented), and at session end
prints the monitor's report and **fails the session** if any
lock-order cycle was observed, even when every test passed: a latent
deadlock is a bug whether or not this run happened to hit it.

Enabled from the repo root ``conftest.py`` via ``pytest_plugins``; the
flag is off by default so plain test runs pay zero overhead.
"""

from __future__ import annotations

from repro.analysis.sanitize.monitor import install, uninstall

__all__ = [
    "pytest_addoption",
    "pytest_configure",
    "pytest_sessionfinish",
    "pytest_terminal_summary",
    "pytest_unconfigure",
]

_MONITOR_KEY = "_repro_sanitize_monitor"


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--repro-sanitize",
        action="store_true",
        default=False,
        help=(
            "instrument threading.Lock/RLock, build the lock-order "
            "graph, and fail the session on any lock-order cycle"
        ),
    )


def pytest_configure(config) -> None:
    if config.getoption("--repro-sanitize"):
        setattr(config, _MONITOR_KEY, install())


def pytest_sessionfinish(session, exitstatus) -> None:
    monitor = getattr(session.config, _MONITOR_KEY, None)
    if monitor is None:
        return
    if monitor.cycles() and session.exitstatus == 0:
        session.exitstatus = 1


def pytest_terminal_summary(terminalreporter, exitstatus, config) -> None:
    monitor = getattr(config, _MONITOR_KEY, None)
    if monitor is None:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line(
        f"repro-sanitize: {monitor.n_acquisitions} acquisition(s) across "
        f"{len(monitor.locks)} instrumented lock(s), "
        f"{len(monitor.edges)} order edge(s)"
    )
    report = monitor.render_cycles()
    ok = not monitor.cycles()
    terminalreporter.write_line(report, red=not ok, green=ok)


def pytest_unconfigure(config) -> None:
    if getattr(config, _MONITOR_KEY, None) is not None:
        uninstall()
        setattr(config, _MONITOR_KEY, None)
