"""Runtime lock-order monitor: the sanitizer's core state machine.

TSan-lite for the concurrency idioms this codebase actually uses.
:func:`install` replaces ``threading.Lock``/``threading.RLock`` with
instrumented wrappers; every *new* lock created while the monitor is
active (the dataloader's queue mutexes, raptor's ledger lock, the
tracer's internal lock — all constructed at call time, not import time)
records two things per acquisition:

* a **lock-order edge** ``A → B`` whenever a thread acquires ``B``
  while holding ``A``, with the acquire site as witness.  A cycle in
  that graph is a latent deadlock: two threads taking the same pair of
  locks in opposite orders will eventually interleave badly, even if
  this particular run got lucky.
* the thread's **held set**, which :class:`AccessRecorder` (see
  :mod:`repro.analysis.sanitize.recorder`) consults to decide whether
  a shared-attribute access was guarded.

The monitor's own bookkeeping is guarded by a captured *original* lock
so instrumentation can never recurse into itself, and wrappers forward
``_is_owned`` / ``_release_save`` / ``_acquire_restore`` so
``threading.Condition`` keeps working (``Condition.wait`` releases and
reacquires through those hooks — the held-set stays accurate across a
wait).
"""

from __future__ import annotations

import itertools
import sys
import threading
from dataclasses import dataclass, field

__all__ = [
    "AcquireSite",
    "LockInfo",
    "LockOrderMonitor",
    "SanitizedLock",
    "SanitizedRLock",
    "current_monitor",
    "install",
    "uninstall",
]

#: the real factories, captured at import so wrappers and the monitor's
#: internal guard always use uninstrumented primitives
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

#: filenames whose frames are skipped when attributing an acquire site
_INTERNAL_FILES = (__file__, threading.__file__)


def _acquire_site() -> tuple[str, int]:
    """(filename, lineno) of the nearest caller outside the machinery."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not any(filename == f for f in _INTERNAL_FILES):
            return filename, frame.f_lineno
        frame = frame.f_back
    return "<unknown>", 0


def _thread_name() -> str:
    """Name of the calling thread, without ``current_thread()``.

    ``threading.current_thread()`` on a thread not yet in ``_active``
    (mid-bootstrap) constructs a ``_DummyThread``, whose ``__init__``
    itself takes instrumented locks — infinite recursion.  A raw ident
    lookup has no such side effects.
    """
    ident = threading.get_ident()
    thread = threading._active.get(ident)
    return thread.name if thread is not None else f"thread-{ident}"


@dataclass(frozen=True)
class AcquireSite:
    """Witness for one acquisition: where, on which thread."""

    filename: str
    line: int
    thread: str

    def render(self) -> str:
        return f"{self.filename}:{self.line} [{self.thread}]"


@dataclass
class LockInfo:
    """Identity and creation site of one instrumented lock."""

    lock_id: int
    kind: str  # "Lock" | "RLock"
    filename: str
    line: int

    @property
    def name(self) -> str:
        return f"{self.kind}#{self.lock_id}({self.filename}:{self.line})"


@dataclass
class _Edge:
    """First witness of ``held → acquired`` plus every thread that saw it."""

    held_site: AcquireSite
    acquired_site: AcquireSite
    threads: set[str] = field(default_factory=set)


class LockOrderMonitor:
    """Record acquisition order across every instrumented lock."""

    def __init__(self) -> None:
        self._guard = _REAL_LOCK()
        self._ids = itertools.count(1)
        self._tls = threading.local()
        self.locks: dict[int, LockInfo] = {}
        self.edges: dict[tuple[int, int], _Edge] = {}
        self.n_acquisitions = 0

    # ------------------------------------------------------------ held set
    def _held(self) -> list[tuple[int, AcquireSite]]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def held_lock_ids(self) -> frozenset[int]:
        """Lock ids the calling thread currently holds."""
        return frozenset(lock_id for lock_id, _ in self._held())

    # ---------------------------------------------------------- lifecycle
    def register(self, kind: str) -> LockInfo:
        filename, line = _acquire_site()
        with self._guard:
            info = LockInfo(next(self._ids), kind, filename, line)
            self.locks[info.lock_id] = info
        return info

    def note_acquire(self, lock_id: int, reentrant: bool) -> None:
        filename, line = _acquire_site()
        site = AcquireSite(filename, line, _thread_name())
        held = self._held()
        if reentrant and any(h == lock_id for h, _ in held):
            held.append((lock_id, site))  # re-entry: no new edges
            return
        with self._guard:
            self.n_acquisitions += 1
            for held_id, held_site in held:
                if held_id == lock_id:
                    continue
                edge = self.edges.get((held_id, lock_id))
                if edge is None:
                    edge = self.edges[(held_id, lock_id)] = _Edge(
                        held_site=held_site, acquired_site=site
                    )
                edge.threads.add(site.thread)
        held.append((lock_id, site))

    def note_release(self, lock_id: int) -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i][0] == lock_id:
                del held[i]
                return

    # ------------------------------------------------------------- cycles
    def cycles(self) -> list[list[int]]:
        """Elementary cycles in the lock-order graph (each reported once)."""
        with self._guard:
            graph: dict[int, list[int]] = {}
            for a, b in self.edges:
                graph.setdefault(a, []).append(b)
        found: list[list[int]] = []
        seen_keys: set[tuple[int, ...]] = set()

        def dfs(start: int, node: int, path: list[int], on_path: set[int]) -> None:
            for nxt in graph.get(node, ()):
                if nxt == start:
                    cycle = path[:]
                    # canonical rotation so A→B→A and B→A→B dedupe
                    pivot = cycle.index(min(cycle))
                    key = tuple(cycle[pivot:] + cycle[:pivot])
                    if key not in seen_keys:
                        seen_keys.add(key)
                        found.append(list(key))
                elif nxt > start and nxt not in on_path:
                    on_path.add(nxt)
                    path.append(nxt)
                    dfs(start, nxt, path, on_path)
                    path.pop()
                    on_path.discard(nxt)

        for start in sorted(graph):
            dfs(start, start, [start], {start})
        return found

    def render_cycles(self) -> str:
        """Human-readable deadlock report, one block per cycle."""
        cycles = self.cycles()
        if not cycles:
            return "repro-sanitize: no lock-order cycles"
        blocks = [
            f"repro-sanitize: {len(cycles)} lock-order cycle(s) — "
            "threads take these locks in opposite orders, which can "
            "deadlock under the right interleaving:"
        ]
        for cycle in cycles:
            names = [self.locks[i].name for i in cycle]
            blocks.append("  cycle: " + " -> ".join([*names, names[0]]))
            for a, b in zip(cycle, cycle[1:] + cycle[:1]):
                edge = self.edges[(a, b)]
                blocks.append(
                    f"    {self.locks[a].name} held at "
                    f"{edge.held_site.render()} while acquiring "
                    f"{self.locks[b].name} at {edge.acquired_site.render()}"
                )
        return "\n".join(blocks)


class SanitizedLock:
    """Drop-in ``threading.Lock`` that reports to the monitor."""

    _kind = "Lock"
    _reentrant = False

    def __init__(self, monitor: LockOrderMonitor) -> None:
        self._monitor = monitor
        self._inner = _REAL_LOCK() if self._kind == "Lock" else _REAL_RLOCK()
        self._info = monitor.register(self._kind)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._monitor.note_acquire(self._info.lock_id, self._reentrant)
        return ok

    def release(self) -> None:
        self._inner.release()
        self._monitor.note_release(self._info.lock_id)

    def locked(self) -> bool:
        return self._inner.locked()

    def _at_fork_reinit(self) -> None:
        self._inner._at_fork_reinit()

    def __getattr__(self, name: str):
        # stdlib internals poke other private lock APIs; forward them
        return getattr(self._inner, name)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self._info.name}>"


class SanitizedRLock(SanitizedLock):
    """Drop-in ``threading.RLock``, Condition-compatible."""

    _kind = "RLock"
    _reentrant = True

    # Condition.wait releases the lock fully and reacquires it through
    # these hooks; forwarding them keeps the held-set bookkeeping exact.
    def _is_owned(self) -> bool:
        return self._inner._is_owned()

    def _release_save(self):
        state = self._inner._release_save()
        self._monitor.note_release(self._info.lock_id)
        return state

    def _acquire_restore(self, state) -> None:
        self._inner._acquire_restore(state)
        self._monitor.note_acquire(self._info.lock_id, reentrant=False)


_active: LockOrderMonitor | None = None


def current_monitor() -> LockOrderMonitor | None:
    """The installed monitor, if any."""
    return _active


def install() -> LockOrderMonitor:
    """Patch ``threading.Lock``/``RLock``; every new lock is instrumented.

    Idempotent: a second install returns the already-active monitor.
    """
    global _active
    if _active is not None:
        return _active
    monitor = LockOrderMonitor()
    threading.Lock = lambda: SanitizedLock(monitor)  # type: ignore[misc]
    threading.RLock = lambda: SanitizedRLock(monitor)  # type: ignore[misc]
    _active = monitor
    return monitor


def uninstall() -> None:
    """Restore the real lock factories (existing wrappers keep working)."""
    global _active
    threading.Lock = _REAL_LOCK  # type: ignore[misc]
    threading.RLock = _REAL_RLOCK  # type: ignore[misc]
    _active = None
