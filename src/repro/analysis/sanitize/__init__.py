"""Runtime concurrency sanitizer (layer 2 of the correctness toolchain).

Static analysis (:mod:`repro.analysis.interprocedural`) proves what it
can from the call graph; this package watches the locks the program
*actually takes*:

* :mod:`~repro.analysis.sanitize.monitor` — instrumented
  ``Lock``/``RLock`` wrappers, the lock-order graph, deadlock-cycle
  detection;
* :mod:`~repro.analysis.sanitize.recorder` — the shared-attribute
  access recorder (Eraser lockset rule over a recorded log);
* :mod:`~repro.analysis.sanitize.plugin` — ``pytest --repro-sanitize``;
* :mod:`~repro.analysis.sanitize.cli` — the ``repro-sanitize`` script
  runner.
"""

from repro.analysis.sanitize.monitor import (
    LockOrderMonitor,
    SanitizedLock,
    SanitizedRLock,
    current_monitor,
    install,
    uninstall,
)
from repro.analysis.sanitize.recorder import (
    AccessRecorder,
    AttrAccess,
    AttrConflict,
)

__all__ = [
    "AccessRecorder",
    "AttrAccess",
    "AttrConflict",
    "LockOrderMonitor",
    "SanitizedLock",
    "SanitizedRLock",
    "current_monitor",
    "install",
    "uninstall",
]
