"""Shared-attribute access recorder: the sanitizer's race witness.

:class:`AccessRecorder` instruments chosen attributes of a class for
the duration of a ``with`` block and records every read/write with the
accessing thread and the lock set held at the moment of access (from
the active :class:`~repro.analysis.sanitize.monitor.LockOrderMonitor`,
when one is installed).  Afterwards :meth:`conflicts` replays the log
with the Eraser rule: an attribute touched by more than one thread,
with at least one write, whose accesses share **no** common lock, is an
unguarded shared access.

Instrumentation works by installing a data descriptor on the *class*
(descriptors shadow instance ``__dict__``), proxying storage through
the instance dict — so object behavior is unchanged, existing
instances included.  The original class attributes are restored on
exit even if the body raises.

Typical test usage::

    with AccessRecorder(PrefetchLoader, ["_batches_served"]) as rec:
        run_the_concurrent_workload()
    assert rec.conflicts() == []
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.analysis.sanitize.monitor import _thread_name, current_monitor

__all__ = ["AccessRecorder", "AttrAccess", "AttrConflict"]

_MISSING = object()


@dataclass(frozen=True)
class AttrAccess:
    """One recorded touch of an instrumented attribute."""

    attr: str
    write: bool
    thread: str
    locks: frozenset[int]  # ids of monitor locks held at access time


@dataclass(frozen=True)
class AttrConflict:
    """An attribute that failed the Eraser lockset rule."""

    attr: str
    threads: tuple[str, ...]
    writes: int

    def render(self) -> str:
        return (
            f"unguarded shared access: attribute '{self.attr}' touched by "
            f"threads {list(self.threads)} ({self.writes} write(s)) with no "
            "common lock held across all accesses"
        )


class AccessRecorder:
    """Record accesses to ``attrs`` of ``cls`` inside a ``with`` block."""

    def __init__(self, cls: type, attrs: list[str]) -> None:
        self._cls = cls
        self._attrs = list(attrs)
        self._saved: dict[str, object] = {}
        self._guard = threading.Lock()
        self.accesses: list[AttrAccess] = []

    # ------------------------------------------------------------ recording
    def _record(self, attr: str, write: bool) -> None:
        monitor = current_monitor()
        locks = monitor.held_lock_ids() if monitor is not None else frozenset()
        access = AttrAccess(
            attr=attr,
            write=write,
            thread=_thread_name(),
            locks=locks,
        )
        with self._guard:
            self.accesses.append(access)

    def _descriptor(self, attr: str) -> property:
        recorder = self

        def fget(obj):
            recorder._record(attr, write=False)
            try:
                return obj.__dict__[attr]
            except KeyError:
                raise AttributeError(attr) from None

        def fset(obj, value):
            recorder._record(attr, write=True)
            obj.__dict__[attr] = value

        def fdel(obj):
            recorder._record(attr, write=True)
            del obj.__dict__[attr]

        return property(fget, fset, fdel)

    # ----------------------------------------------------------- lifecycle
    def __enter__(self) -> "AccessRecorder":
        for attr in self._attrs:
            self._saved[attr] = self._cls.__dict__.get(attr, _MISSING)
            setattr(self._cls, attr, self._descriptor(attr))
        return self

    def __exit__(self, *exc) -> None:
        for attr, saved in self._saved.items():
            if saved is _MISSING:
                delattr(self._cls, attr)
            else:
                setattr(self._cls, attr, saved)
        self._saved.clear()

    # ------------------------------------------------------------- verdict
    def conflicts(self) -> list[AttrConflict]:
        """Attributes violating the Eraser rule over the recorded log."""
        by_attr: dict[str, list[AttrAccess]] = {}
        with self._guard:
            for access in self.accesses:
                by_attr.setdefault(access.attr, []).append(access)
        out: list[AttrConflict] = []
        for attr, log in sorted(by_attr.items()):
            threads = {a.thread for a in log}
            writes = sum(1 for a in log if a.write)
            if len(threads) < 2 or writes == 0:
                continue
            common = frozenset.intersection(*(a.locks for a in log))
            if common:
                continue
            out.append(
                AttrConflict(
                    attr=attr, threads=tuple(sorted(threads)), writes=writes
                )
            )
        return out
