"""repro.analysis — AST-based project lint engine with domain checkers.

Generic linters cannot express this codebase's correctness invariants:
simulated stages must advance only the executor clock, campaigns must
replay bit-identically from a seed, shared ledgers touched from worker
threads must be lock-guarded, hot kernels must stay vectorized, and
task/stage/pipeline literals must fit the cluster shape they target.
This package checks all of that statically — parse once, dispatch every
registered checker over a single AST walk — so the bug class PR 1 fixed
in production (`run_raptor` busy-accounting race, `validate_fits`
overcommit) is caught at lint time instead.

Run it as ``repro-lint`` or ``python -m repro.analysis``; configure via
``[tool.repro-lint]`` in pyproject.toml; suppress single findings with
``# repro: disable=<rule>``.
"""

from repro.analysis.config import AnalysisConfig, ConfigError
from repro.analysis.engine import (
    AnalysisResult,
    FileContext,
    analyze_file,
    analyze_source,
    run_analysis,
)
from repro.analysis.findings import Finding
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "ConfigError",
    "FileContext",
    "Finding",
    "analyze_file",
    "analyze_source",
    "render_json",
    "render_text",
    "run_analysis",
]
