"""atomic-write: durable files are written tmp-first, then replaced.

The resume contract (ROADMAP: a campaign killed mid-shard resumes
without rescoring) survives crashes only because every durable file is
produced by the tmp+``os.replace`` idiom — a reader never observes a
half-written artifact.  This checker walks every function in the
``durable-modules`` config *plus everything reachable from them* and
flags:

* a write-mode ``open`` / ``gzip.open`` / ``np.save*`` /
  ``Path.write_text`` whose target never feeds ``os.replace`` in the
  same function (a torn write: a crash mid-write leaves a corrupt
  final path);
* a write aimed directly at ``os.replace``'s *destination* (the tmp
  dance is present but bypassed);
* an append-mode open (the manifest journal pattern) with no
  ``os.fsync`` in the same function — an un-fsynced append can be lost
  on power failure even though ``mark_done`` already returned.

Read modes never flag, and functions outside the durable cone are not
examined — scratch files elsewhere may legitimately be torn.
"""

from __future__ import annotations

import ast

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.interprocedural.base import ProjectChecker
from repro.analysis.project import FunctionInfo, Project

__all__ = ["AtomicWriteChecker"]

#: callees (suffix match on the dotted name) that write their first arg
_WRITER_CALLEES = {
    "numpy.save",
    "numpy.savez",
    "numpy.savez_compressed",
    "pickle.dump",  # first arg is the object; handled via handle mode
}

#: open-like callees whose mode argument decides read vs write
_OPEN_CALLEES = {"open", "gzip.open", "bz2.open", "lzma.open", "io.open"}

#: method suffixes that write to their receiver path
_PATH_WRITE_ATTRS = {"write_text", "write_bytes"}


def _root_name(expr: ast.AST | None) -> str | None:
    """The variable at the root of an expression (``tmp`` in ``str(tmp)``)."""
    while expr is not None:
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Attribute):
            expr = expr.value
        elif isinstance(expr, ast.Call):
            # Path(...).with_suffix(...), str(tmp): look through the
            # callee's receiver or the sole argument
            if isinstance(expr.func, ast.Attribute):
                expr = expr.func.value
            elif expr.args:
                expr = expr.args[0]
            else:
                return None
        elif isinstance(expr, ast.Subscript):
            expr = expr.value
        else:
            return None
    return None


def _open_mode(call: ast.Call) -> str:
    """The constant mode string of an open-like call (default ``"r"``)."""
    mode: ast.AST | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return "r"


class AtomicWriteChecker(ProjectChecker):
    """Enforce tmp+``os.replace`` (and fsync'd appends) in durable code."""

    rule = "atomic-write"
    description = (
        "file writes reachable from durable modules must flow through "
        "tmp+os.replace; append-mode journal writes must fsync"
    )

    def check(self, project: Project, config: AnalysisConfig) -> list[Finding]:
        roots = project.functions_in(config.durable_modules)
        cone = project.reachable(roots)
        findings: list[Finding] = []
        for fq in sorted(cone):
            findings.extend(self._check_function(project, project.functions[fq]))
        return findings

    # ------------------------------------------------------- per function
    def _check_function(
        self, project: Project, info: FunctionInfo
    ) -> list[Finding]:
        replace_src: set[str] = set()
        replace_dst: set[str] = set()
        has_replace = False
        has_fsync = False
        writes: list[tuple[ast.Call, str | None, str]] = []  # node, root, kind

        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            callee = project.callee_of(node)
            if callee in ("os.replace", "os.rename"):
                has_replace = True
                if node.args:
                    src = _root_name(node.args[0])
                    if src is not None:
                        replace_src.add(src)
                if len(node.args) >= 2:
                    dst = _root_name(node.args[1])
                    if dst is not None:
                        replace_dst.add(dst)
                continue
            if callee == "os.fsync":
                has_fsync = True
                continue
            if callee in _OPEN_CALLEES:
                mode = _open_mode(node)
                if any(c in mode for c in "wx"):
                    writes.append((node, _root_name(node.args[0]) if node.args else None, "write"))
                elif "a" in mode:
                    writes.append((node, _root_name(node.args[0]) if node.args else None, "append"))
                continue
            if callee in _WRITER_CALLEES and callee != "pickle.dump":
                writes.append(
                    (node, _root_name(node.args[0]) if node.args else None, "write")
                )
                continue
            if callee is not None and callee.rsplit(".", 1)[-1] in _PATH_WRITE_ATTRS:
                target = (
                    node.func.value
                    if isinstance(node.func, ast.Attribute)
                    else None
                )
                writes.append((node, _root_name(target), "write"))

        findings: list[Finding] = []
        for node, root, kind in writes:
            line = getattr(node, "lineno", 0)
            col = getattr(node, "col_offset", 0)
            if kind == "append":
                if not has_fsync:
                    findings.append(
                        self.finding(
                            f"append-mode write in durable function "
                            f"{info.qualname} has no os.fsync in the same "
                            "function; a journal append that is not fsync'd "
                            "can be lost on power failure after returning",
                            path=info.path,
                            line=line,
                            col=col,
                        )
                    )
                continue
            if not has_replace:
                findings.append(
                    self.finding(
                        f"bare write in durable function {info.qualname} "
                        "never feeds os.replace; a crash mid-write leaves "
                        "a torn file at the final path — write to a tmp "
                        "sibling and os.replace it into place",
                        path=info.path,
                        line=line,
                        col=col,
                    )
                )
                continue
            if root is not None and root in replace_dst and root not in replace_src:
                findings.append(
                    self.finding(
                        f"write in {info.qualname} targets os.replace's "
                        "destination directly, bypassing the tmp file; "
                        "write to the tmp path instead",
                        path=info.path,
                        line=line,
                        col=col,
                    )
                )
        return findings
