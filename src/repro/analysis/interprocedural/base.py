"""Base protocol for whole-program checkers.

Unlike per-file checkers (which see one :class:`FileContext` at a
time), a project checker receives the entire built
:class:`~repro.analysis.project.Project` — symbol table, call graph,
receiver types — and returns findings for the whole tree in one call.
The runner applies inline suppressions and config disables afterwards,
exactly as the per-file engine does.
"""

from __future__ import annotations

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.project import Project

__all__ = ["ProjectChecker"]


class ProjectChecker:
    """One whole-program rule.

    Subclasses set ``rule``/``description`` and implement
    :meth:`check`; ``severity`` defaults to error.
    """

    rule: str = ""
    description: str = ""
    severity: str = "error"

    def check(self, project: Project, config: AnalysisConfig) -> list[Finding]:
        """Analyze the project and return findings (unsuppressed)."""
        raise NotImplementedError

    def finding(
        self, message: str, path: str, line: int, col: int = 0
    ) -> Finding:
        """Build one finding under this checker's rule."""
        return Finding(
            rule=self.rule,
            message=message,
            path=path,
            line=line,
            col=col,
            severity=self.severity,
        )
