"""lockset: thread-shared attributes need a consistent lock.

Eraser-style lockset inference, scoped to where it is sound and quiet:
classes that actually hand one of their bound methods to a thread
(``threading.Thread(target=self._producer)``, ``pool.submit(self.run)``).
For each such class the checker splits its methods into *thread context*
(the thread entry plus every class method it transitively calls) and
*caller context* (everything else), then tracks every ``self.<attr>``
access in both, with the set of ``with self.<lock>:`` guards held at
the access.

An attribute is reported when all of these hold:

* it is accessed in both contexts (that is what makes it shared — a
  producer-only buffer is fine);
* at least one access outside ``__init__`` is a write (init-only
  configuration published before ``Thread.start()`` is ordered by the
  start's happens-before edge);
* the intersection of locksets over all non-init accesses is empty
  (no single lock consistently guards it);
* it is not itself a synchronization object (``Lock``/``Queue``/
  ``Event``/``deque`` constructors, lock-ish names) or thread-local.

This supersedes the per-file ``lock-discipline`` pattern for
instance-attribute state: it sees method calls across the class, not
just augmented assignments inside one function.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import iter_parents
from repro.analysis.checkers.locks import (
    _LOCK_NAME,
    _SUBMIT_METHODS,
    _THREAD_LOCAL_NAME,
)
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.interprocedural.base import ProjectChecker
from repro.analysis.project import (
    THREAD_SAFE_CTORS,
    ClassInfo,
    FunctionInfo,
    Project,
)

__all__ = ["LocksetChecker"]

#: container methods that mutate their receiver — ``self.items.append(x)``
#: is a write to ``items`` for lockset purposes, not a read
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popleft",
        "appendleft",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "sort",
        "reverse",
    }
)


def _self_param(info: FunctionInfo) -> str | None:
    params = info.positional_params()
    return params[0] if info.is_method and params else None


class _Access:
    """One ``self.<attr>`` touch: where, read/write, locks held."""

    __slots__ = ("attr", "write", "locks", "path", "line", "col", "function")

    def __init__(self, attr, write, locks, path, line, col, function):
        self.attr = attr
        self.write = write
        self.locks = locks
        self.path = path
        self.line = line
        self.col = col
        self.function = function


class LocksetChecker(ProjectChecker):
    """Infer per-attribute locksets for thread-target classes."""

    rule = "lockset"
    description = (
        "attributes shared between a thread-target method and its class "
        "must be guarded by one consistent lock or be thread-local"
    )

    def check(self, project: Project, config: AnalysisConfig) -> list[Finding]:
        findings: list[Finding] = []
        for cls_q, entries in sorted(self._thread_entries(project).items()):
            cls = project.classes.get(cls_q)
            if cls is None:
                continue
            findings.extend(self._check_class(project, cls, entries))
        return findings

    # ------------------------------------------------------ thread entries
    def _thread_entries(self, project: Project) -> dict[str, set[str]]:
        """Class qualname → method qualnames handed to threads."""
        entries: dict[str, set[str]] = {}
        for fq, info in project.functions.items():
            for edge in project.calls_from(fq):
                if edge.callee == "threading.Thread" or (
                    edge.external
                    and edge.callee.rsplit(".", 1)[-1] in _SUBMIT_METHODS
                ):
                    call = self._call_node(project, info, edge.line)
                    if call is None:
                        continue
                    for target in self._thread_targets(edge.callee, call):
                        resolved = self._resolve_bound_method(
                            project, info, target
                        )
                        if resolved is not None:
                            cls_q, method_q = resolved
                            entries.setdefault(cls_q, set()).add(method_q)
        return entries

    @staticmethod
    def _call_node(
        project: Project, info: FunctionInfo, line: int
    ) -> ast.Call | None:
        for node in ast.walk(info.node):
            if (
                isinstance(node, ast.Call)
                and getattr(node, "lineno", None) == line
            ):
                edge = project.edge_of(node)
                if edge is not None and edge.line == line:
                    return node
        return None

    @staticmethod
    def _thread_targets(callee: str, call: ast.Call) -> list[ast.AST]:
        targets: list[ast.AST] = []
        if callee == "threading.Thread":
            for kw in call.keywords:
                if kw.arg == "target":
                    targets.append(kw.value)
        else:  # pool.submit(fn, ...) / pool.map(fn, ...)
            if call.args:
                targets.append(call.args[0])
        return targets

    def _resolve_bound_method(
        self, project: Project, caller: FunctionInfo, target: ast.AST
    ) -> tuple[str, str] | None:
        """``self.m`` (or ``obj.m`` with an inferable class) → (class, method)."""
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
        ):
            return None
        root = target.value.id
        cls_q: str | None = None
        if root == _self_param(caller):
            cls_q = caller.class_qualname
        else:
            # `worker = Worker(...); Thread(target=worker.run)`
            for node in ast.walk(caller.node):
                if (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and any(
                        isinstance(t, ast.Name) and t.id == root
                        for t in node.targets
                    )
                ):
                    ctor = project.edge_of(node.value)
                    if ctor is not None and not ctor.external:
                        fn = project.functions.get(ctor.callee)
                        if fn is not None and fn.name == "__init__":
                            cls_q = fn.class_qualname
        if cls_q is None:
            return None
        method_q = project.method_resolution(cls_q, target.attr)
        if method_q is None:
            return None
        return cls_q, method_q

    # ------------------------------------------------------ class analysis
    def _check_class(
        self, project: Project, cls: ClassInfo, entries: set[str]
    ) -> list[Finding]:
        methods = set(cls.methods.values())
        # thread context: entries plus class methods they transitively call
        thread_ctx = {
            fq for fq in project.reachable(entries) if fq in methods
        }
        init_q = cls.methods.get("__init__")
        caller_ctx = methods - thread_ctx - ({init_q} if init_q else set())

        accesses: dict[str, list[_Access]] = {}
        for fq in sorted(methods):
            info = project.functions.get(fq)
            if info is None:
                continue
            for access in self._collect_accesses(info):
                accesses.setdefault(access.attr, []).append(access)

        findings: list[Finding] = []
        for attr, acc in sorted(accesses.items()):
            if self._exempt_attr(cls, attr):
                continue
            in_thread = [a for a in acc if a.function in thread_ctx]
            in_caller = [a for a in acc if a.function in caller_ctx]
            if not in_thread or not in_caller:
                continue  # not shared across the thread boundary
            non_init = in_thread + in_caller
            if not any(a.write for a in non_init):
                continue  # read-only after construction
            common = set.intersection(*(a.locks for a in non_init))
            if common:
                continue  # one lock consistently guards every access
            witness = next(
                (a for a in non_init if a.write and not a.locks),
                non_init[0],
            )
            held = sorted({lock for a in non_init for lock in a.locks})
            hint = (
                f"some accesses hold {held} but not all do"
                if held
                else "no access holds any lock"
            )
            findings.append(
                self.finding(
                    f"attribute self.{attr} of {cls.qualname} is shared "
                    f"between thread-target method(s) "
                    f"{sorted(m.rsplit('.', 1)[-1] for m in thread_ctx)} and "
                    "other methods without a consistent lock "
                    f"({hint}); guard every access with one `with "
                    "self.<lock>:` or make it thread-local",
                    path=witness.path,
                    line=witness.line,
                    col=witness.col,
                )
            )
        return findings

    @staticmethod
    def _exempt_attr(cls: ClassInfo, attr: str) -> bool:
        if _LOCK_NAME.search(attr) or _THREAD_LOCAL_NAME.search(attr):
            return True
        ctor = cls.attr_ctors.get(attr)
        if ctor in THREAD_SAFE_CTORS or ctor == "threading.local":
            return True
        return False

    def _collect_accesses(self, info: FunctionInfo) -> list[_Access]:
        self_name = _self_param(info)
        if self_name is None:
            return []
        out: list[_Access] = []
        for node in ast.walk(info.node):
            if not (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == self_name
            ):
                continue
            write = isinstance(node.ctx, (ast.Store, ast.Del))
            parent = getattr(node, "_repro_parent", None)
            if not write:
                # self.items.append(x) / self.items[k] = v mutate the attr
                if (
                    isinstance(parent, ast.Attribute)
                    and parent.value is node
                    and parent.attr in _MUTATOR_METHODS
                ):
                    write = True
                elif (
                    isinstance(parent, ast.Subscript)
                    and parent.value is node
                    and isinstance(parent.ctx, (ast.Store, ast.Del))
                ):
                    write = True
            out.append(
                _Access(
                    attr=node.attr,
                    write=write,
                    locks=self._held_locks(node, info),
                    path=info.path,
                    line=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", 0),
                    function=info.qualname,
                )
            )
        return out

    @staticmethod
    def _held_locks(node: ast.AST, info: FunctionInfo) -> set[str]:
        """Names of ``with self.<lock>:`` guards enclosing ``node``."""
        self_name = _self_param(info)
        held: set[str] = set()
        for parent in iter_parents(node):
            if isinstance(parent, (ast.With, ast.AsyncWith)):
                for item in parent.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        expr = expr.func
                    if (
                        isinstance(expr, ast.Attribute)
                        and isinstance(expr.value, ast.Name)
                        and expr.value.id == self_name
                    ):
                        held.add(expr.attr)
            if parent is info.node:
                break
        return held
