"""rng-taint: unseeded randomness must never reach a hot path.

Two interprocedural flows break the bit-identical-replay contract, and
both are invisible to the per-file determinism rule once a helper
function sits between source and use:

* a value drawn from global RNG state (``random.random()``, legacy
  ``np.random.rand()``) flowing — through any number of calls, returns
  and attribute writes — into a campaign/docking/nn/streaming function
  (the ``taint-sink-modules`` config);
* a wall-clock reading (``time.time()``, ``datetime.now()``) flowing
  into a *seeding* position (``random.seed``, ``np.random.default_rng``,
  ``repro.util.rng.rng_stream`` / ``RngFactory``), which makes every
  stream derived from it unreplayable no matter how disciplined the
  downstream code is.

``determinism-allow`` modules are exempt as sources (their RNG use is
already accepted); seeded-generator construction is never a source.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.determinism import (
    _NP_RANDOM_SAFE,
    _STDLIB_RANDOM_GLOBALS,
)
from repro.analysis.config import AnalysisConfig, module_matches
from repro.analysis.dataflow import TaintAnalysis
from repro.analysis.findings import Finding
from repro.analysis.interprocedural.base import ProjectChecker
from repro.analysis.project import Project

__all__ = ["RngTaintChecker"]

#: wall-clock reads whose values are nondeterministic across runs
_TIME_SOURCES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "os.urandom",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
    }
)

#: callees whose arguments seed a generator / stream family
_SEED_SINKS = frozenset(
    {
        "random.seed",
        "random.Random",
        "numpy.random.seed",
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.RandomState",
        "repro.util.rng.rng_stream",
        "repro.util.rng.RngFactory",
        "repro.util.rng.RngFactory.__init__",
    }
)


def _unseeded_rng_label(callee: str | None) -> str | None:
    """Label when ``callee`` draws from hidden global RNG state."""
    if callee is None:
        return None
    parts = callee.split(".")
    if parts[:2] == ["numpy", "random"] and len(parts) == 3:
        if parts[2] not in _NP_RANDOM_SAFE:
            return f"{callee}()"
    if parts[0] == "random" and len(parts) == 2:
        if parts[1] in _STDLIB_RANDOM_GLOBALS:
            return f"{callee}()"
    return None


class RngTaintChecker(ProjectChecker):
    """Trace unseeded-RNG and time-derived values across function calls."""

    rule = "rng-taint"
    description = (
        "values from unseeded RNG sources must not reach hot-path "
        "modules, and time-derived values must not seed generators"
    )

    def check(self, project: Project, config: AnalysisConfig) -> list[Finding]:
        findings = self._rng_to_hot_path(project, config)
        findings.extend(self._time_to_seed(project, config))
        return findings

    # ----------------------------------------------- unseeded RNG → sink
    def _rng_to_hot_path(
        self, project: Project, config: AnalysisConfig
    ) -> list[Finding]:
        allowed = config.determinism_allow

        def source(callee: str | None, call: ast.Call) -> str | None:
            return _unseeded_rng_label(callee)

        def is_sink(fq: str) -> bool:
            info = project.functions[fq]
            return module_matches(info.module, config.taint_sink_modules)

        analysis = TaintAnalysis(project, source, is_sink).run()
        findings = []
        for use in analysis.uses:
            # sources born inside determinism-allow modules are accepted
            src_fn = use.taint.chain[0] if use.taint.chain else None
            if src_fn is not None and src_fn in project.functions:
                if module_matches(
                    project.functions[src_fn].module, allowed
                ):
                    continue
            info = project.functions[use.function]
            findings.append(
                self.finding(
                    f"value derived from unseeded RNG {use.taint.describe()} "
                    f"reaches hot-path function {use.function}; derive the "
                    "stream from repro.util.rng so campaigns replay "
                    "bit-identically",
                    path=info.path,
                    line=getattr(use.node, "lineno", 0),
                    col=getattr(use.node, "col_offset", 0),
                )
            )
        return findings

    # --------------------------------------------------- time → seed arg
    def _time_to_seed(
        self, project: Project, config: AnalysisConfig
    ) -> list[Finding]:
        def source(callee: str | None, call: ast.Call) -> str | None:
            if callee in _TIME_SOURCES:
                return f"{callee}()"
            return None

        # sink functions: any project function — the check is on the
        # argument position, not the containing module
        analysis = TaintAnalysis(project, source, lambda fq: False).run()
        findings = []
        seen: set[tuple[str, int]] = set()
        for fq, info in project.functions.items():
            env = analysis.env.get(fq, {})
            if not env:
                continue
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = project.callee_of(node)
                if callee not in _SEED_SINKS:
                    continue
                for arg in (*node.args, *(kw.value for kw in node.keywords)):
                    taint = analysis._expr_taint(arg, info, env)
                    if taint is None:
                        continue
                    key = (info.path, getattr(node, "lineno", 0))
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(
                        self.finding(
                            f"seeding {callee} with a value derived from "
                            f"{taint.describe()} makes every stream below "
                            "it unreplayable; seeds must come from the "
                            "campaign's root seed",
                            path=info.path,
                            line=getattr(node, "lineno", 0),
                            col=getattr(node, "col_offset", 0),
                        )
                    )
                    break
        return findings
