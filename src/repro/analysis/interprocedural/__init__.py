"""Whole-program checkers and their runner.

``run_interprocedural`` is the engine behind ``repro-lint
--interprocedural``: it parses the tree **once** into a
:class:`~repro.analysis.project.Project`, replays the per-file checkers
over those same ASTs (so one invocation covers everything the plain
run covers), then executes every registered
:class:`~repro.analysis.interprocedural.base.ProjectChecker` against
the project.  Inline suppressions and config disables apply to project
findings the same way they do per-file.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import AnalysisResult, analyze_tree
from repro.analysis.interprocedural.atomic_write import AtomicWriteChecker
from repro.analysis.interprocedural.base import ProjectChecker
from repro.analysis.interprocedural.lockset import LocksetChecker
from repro.analysis.interprocedural.rng_taint import RngTaintChecker
from repro.analysis.project import Project, build_project

__all__ = [
    "PROJECT_CHECKER_CLASSES",
    "AtomicWriteChecker",
    "LocksetChecker",
    "ProjectChecker",
    "RngTaintChecker",
    "all_project_checkers",
    "project_rule_names",
    "run_interprocedural",
    "run_project_checkers",
]

PROJECT_CHECKER_CLASSES = (
    RngTaintChecker,
    AtomicWriteChecker,
    LocksetChecker,
)


def all_project_checkers() -> list[ProjectChecker]:
    """Fresh instances of every registered whole-program checker."""
    return [cls() for cls in PROJECT_CHECKER_CLASSES]


def project_rule_names() -> list[str]:
    """Sorted rule names of the whole-program checkers."""
    return sorted(cls.rule for cls in PROJECT_CHECKER_CLASSES)


def run_project_checkers(
    project: Project,
    config: AnalysisConfig | None = None,
    checkers: list[ProjectChecker] | None = None,
) -> AnalysisResult:
    """Run whole-program checkers on a built project, with suppression."""
    config = config or AnalysisConfig()
    checkers = all_project_checkers() if checkers is None else checkers
    disabled = set(config.disable)
    by_path = {pf.path: pf.suppressions for pf in project.files.values()}
    result = AnalysisResult(n_files=len(project.files))
    for checker in checkers:
        if checker.rule in disabled:
            continue
        for finding in checker.check(project, config):
            supp = by_path.get(finding.path)
            if supp is not None and supp.covers(finding):
                result.n_suppressed += 1
            else:
                result.findings.append(finding)
    return result


def run_interprocedural(
    paths: list[Path],
    config: AnalysisConfig | None = None,
    checker_factory=None,
    project_checkers: list[ProjectChecker] | None = None,
) -> AnalysisResult:
    """Full two-layer run: per-file checkers + whole-program checkers.

    The project's trees are parsed once and shared by both layers;
    files that fail to parse report ``parse-error`` and are skipped by
    the project checkers (same contract as :func:`run_analysis`).
    """
    config = config or AnalysisConfig()
    if checker_factory is None:
        from repro.analysis.checkers import all_checkers

        checker_factory = all_checkers
    project = build_project(paths, root=config.root)
    result = AnalysisResult()
    result.findings.extend(project.parse_findings)
    result.n_files = len(project.parse_findings)
    for pf in project.files.values():
        result.merge(
            analyze_tree(
                pf.source,
                pf.tree,
                checker_factory(),
                config,
                module=pf.module,
                path=pf.path,
            )
        )
    result.merge(run_project_checkers(project, config, project_checkers))
    result.n_files = len(project.files) + len(project.parse_findings)
    result.findings.sort(key=lambda f: f.sort_key)
    return result
