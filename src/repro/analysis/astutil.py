"""Shared AST helpers: import resolution, literals, lexical context.

Checkers reason about *qualified names* (``time.sleep``,
``numpy.random.rand``) rather than surface spellings, so aliased
imports (``import numpy as np``, ``from time import sleep as snooze``)
cannot dodge a rule.
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "collect_imports",
    "qualified_name",
    "literal_number",
    "iter_parents",
    "enclosing_function",
    "function_locals",
]


def collect_imports(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted origin they were imported as.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from time import sleep`` → ``{"sleep": "time.sleep"}``.
    Relative imports keep their leading dots stripped (module-local
    names are not resolvable without package context, and no rule
    targets them).
    """
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname is None and "." in alias.name:
                    # `import a.b.c` binds `a`; record the full path too
                    imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                origin = f"{base}.{alias.name}" if base else alias.name
                imports[alias.asname or alias.name] = origin
    return imports


def qualified_name(node: ast.AST, imports: dict[str, str]) -> str | None:
    """Resolve a Name/Attribute chain to a dotted name, or ``None``.

    The chain root is looked up in ``imports``; an unimported root
    keeps its surface name (so ``run_raptor(...)`` resolves to
    ``run_raptor`` even when defined in-file).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(imports.get(node.id, node.id))
    return ".".join(reversed(parts))


def literal_number(node: ast.AST | None) -> float | None:
    """Evaluate an int/float literal (including unary minus), else ``None``."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = literal_number(node.operand)
        return None if inner is None else -inner
    return None


def iter_parents(node: ast.AST) -> Iterator[ast.AST]:
    """Walk the parent chain set by the engine (innermost first)."""
    current = getattr(node, "_repro_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "_repro_parent", None)


def enclosing_function(node: ast.AST) -> ast.AST | None:
    """The innermost function/lambda lexically containing ``node``."""
    for parent in iter_parents(node):
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return parent
    return None


def function_locals(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names local to ``fn``: parameters plus names it binds.

    Names declared ``nonlocal``/``global`` are excluded — they are
    shared state even though assigned here.  Bindings inside *nested*
    functions are not credited to ``fn``.
    """
    args = fn.args
    names = {
        a.arg
        for a in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *((args.vararg,) if args.vararg else ()),
            *((args.kwarg,) if args.kwarg else ()),
        )
    }
    shared: set[str] = set()

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(child.name)  # the def binds its name locally
                continue  # but its body is another scope
            if isinstance(child, ast.Lambda):
                continue
            if isinstance(child, (ast.Nonlocal, ast.Global)):
                shared.update(child.names)
            elif isinstance(child, ast.Name) and isinstance(
                child.ctx, ast.Store
            ):
                names.add(child.id)
            elif isinstance(child, ast.ExceptHandler) and child.name:
                names.add(child.name)
            visit(child)

    visit(fn)
    return names - shared
