"""The analysis engine: parse once, dispatch to every checker.

Each file is read and parsed into an AST exactly once; every checker
registers interest in node types through its ``visit_<NodeType>``
methods and the engine drives them all during a single walk (the
pylint/ruff architecture, scaled to domain rules).  Checkers never
re-parse, never re-read, and never see suppressed findings — inline
``# repro: disable=<rule>`` comments and the config's global disables
are filtered here, after collection, so suppression counts stay
observable.

Suppression syntax (comma-separated rule names, or ``all``), with a
mandatory trailing reason (``--`` or ``—`` separated) — a suppression
that does not say *why* is itself a finding (``suppression-reason``):

* ``some_code()  # repro: disable=clock-purity -- real-time UI path`` —
  suppress on this line;
* ``# repro: disable-file=vectorization -- ragged shapes`` — anywhere
  in the file, suppress for the whole file.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.config import AnalysisConfig, module_matches
from repro.analysis.findings import Finding

__all__ = [
    "AnalysisResult",
    "FileContext",
    "Suppressions",
    "analyze_file",
    "analyze_source",
    "analyze_tree",
    "run_analysis",
]

#: rules group (lazy) plus an optional `-- reason` / `— reason` tail
_SUPPRESS_LINE = re.compile(
    r"#\s*repro:\s*disable=([\w, -]+?)(?:\s*(?:--|[—–])\s*(\S.*))?$"
)
_SUPPRESS_FILE = re.compile(
    r"#\s*repro:\s*disable-file=([\w, -]+?)(?:\s*(?:--|[—–])\s*(\S.*))?$"
)

#: rule name reserved for files the engine cannot parse
PARSE_ERROR_RULE = "parse-error"

#: rule name for suppressions carrying no reason
SUPPRESSION_REASON_RULE = "suppression-reason"


def _split_rules(spec: str) -> set[str]:
    return {part.strip(" -") for part in spec.split(",") if part.strip(" -")}


@dataclass
class Suppressions:
    """Inline-suppression tables for one file.

    ``reasonless`` holds ``(lineno, rules)`` for every suppression
    comment missing its ``-- <reason>`` tail; the engine (and the
    interprocedural runner) turn those into findings so a suppression
    can never silently drop a rule without justification.
    """

    line: dict[int, set[str]] = field(default_factory=dict)
    file: set[str] = field(default_factory=set)
    reasonless: list[tuple[int, set[str]]] = field(default_factory=list)

    @classmethod
    def parse(cls, lines: list[str]) -> "Suppressions":
        supp = cls()
        for lineno, text in enumerate(lines, start=1):
            m = _SUPPRESS_FILE.search(text)
            if m:
                rules = _split_rules(m.group(1))
                supp.file |= rules
                if not m.group(2):
                    supp.reasonless.append((lineno, rules))
                continue
            m = _SUPPRESS_LINE.search(text)
            if m:
                rules = _split_rules(m.group(1))
                supp.line.setdefault(lineno, set()).update(rules)
                if not m.group(2):
                    supp.reasonless.append((lineno, rules))
        return supp

    def covers(self, finding: Finding) -> bool:
        """Whether an inline comment suppresses this finding."""
        for rules in (self.file, self.line.get(finding.line, ())):
            if finding.rule in rules or "all" in rules:
                return True
        return False

    def reason_findings(self, path: str) -> list[Finding]:
        """One ``suppression-reason`` finding per reasonless comment."""
        return [
            Finding(
                rule=SUPPRESSION_REASON_RULE,
                message=(
                    f"suppression of {sorted(rules)} has no reason; append "
                    "`-- <why this is safe>` so the next reader does not "
                    "have to re-derive the justification"
                ),
                path=path,
                line=lineno,
            )
            for lineno, rules in self.reasonless
        ]


@dataclass
class FileContext:
    """Everything checkers may know about the file being analyzed."""

    path: str
    module: str
    source: str
    tree: ast.Module
    config: AnalysisConfig
    lines: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    suppressions: Suppressions = field(default_factory=Suppressions)

    def __post_init__(self) -> None:
        self.lines = self.source.splitlines()
        self.suppressions = Suppressions.parse(self.lines)

    # ------------------------------------------------------------- reporting
    def report(
        self,
        rule: str,
        node: ast.AST,
        message: str,
        severity: str = "error",
    ) -> None:
        """Record one finding anchored at ``node``."""
        self.findings.append(
            Finding(
                rule=rule,
                message=message,
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                severity=severity,
            )
        )

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether an inline comment suppresses this finding."""
        return self.suppressions.covers(finding)

    def module_in(self, prefixes: list[str]) -> bool:
        """Whether this file's module falls under any prefix."""
        return module_matches(self.module, prefixes)


@dataclass
class AnalysisResult:
    """Outcome of one engine run."""

    findings: list[Finding] = field(default_factory=list)
    n_files: int = 0
    n_suppressed: int = 0

    @property
    def ok(self) -> bool:
        """Whether the run is clean."""
        return not self.findings

    def merge(self, other: "AnalysisResult") -> None:
        """Fold another result into this one."""
        self.findings.extend(other.findings)
        self.n_files += other.n_files
        self.n_suppressed += other.n_suppressed


def _set_parents(tree: ast.Module) -> None:
    """Annotate every node with its parent (checkers walk upward freely)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node  # type: ignore[attr-defined]


def module_name_for(path: Path) -> str:
    """Derive a dotted module name from a file path.

    The component after the last ``src`` directory starts the module
    (``src/repro/md/system.py`` → ``repro.md.system``); without a
    ``src`` anchor the whole relative path is used.  ``__init__.py``
    maps to its package.
    """
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    parts = [p for p in parts if p not in (".", "..", "/")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def analyze_tree(
    source: str,
    tree: ast.Module,
    checkers: list,
    config: AnalysisConfig | None = None,
    module: str = "<module>",
    path: str = "<string>",
) -> AnalysisResult:
    """Analyze one already-parsed module (parent links must be set).

    This is the shared core of :func:`analyze_source` and the
    interprocedural runner — the project builder parses each file once
    and both the per-file checkers and the whole-program checkers walk
    the same trees.
    """
    config = config or AnalysisConfig()
    result = AnalysisResult(n_files=1)
    ctx = FileContext(
        path=path, module=module, source=source, tree=tree, config=config
    )

    # dispatch table: node type name → bound visit methods, built once
    handlers: dict[str, list] = {}
    for checker in checkers:
        for attr in dir(checker):
            if attr.startswith("visit_"):
                handlers.setdefault(attr[len("visit_"):], []).append(
                    getattr(checker, attr)
                )

    for checker in checkers:
        begin = getattr(checker, "begin_file", None)
        if begin is not None:
            begin(ctx)
    for node in ast.walk(tree):
        for handler in handlers.get(type(node).__name__, ()):
            handler(node, ctx)
    for checker in checkers:
        end = getattr(checker, "end_file", None)
        if end is not None:
            end(ctx)

    disabled = set(config.disable)
    for finding in ctx.findings:
        if finding.rule in disabled or ctx.is_suppressed(finding):
            result.n_suppressed += 1
        else:
            result.findings.append(finding)
    # reasonless suppressions surface after filtering, so a wildcard
    # `disable=all` cannot suppress the very finding that polices it
    if SUPPRESSION_REASON_RULE not in disabled:
        result.findings.extend(ctx.suppressions.reason_findings(path))
    return result


def analyze_source(
    source: str,
    checkers: list,
    config: AnalysisConfig | None = None,
    module: str = "<module>",
    path: str = "<string>",
) -> AnalysisResult:
    """Analyze one source string with the given checker instances."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return AnalysisResult(
            n_files=1,
            findings=[
                Finding(
                    rule=PARSE_ERROR_RULE,
                    message=f"cannot parse: {exc.msg}",
                    path=path,
                    line=exc.lineno or 0,
                    col=(exc.offset or 1) - 1,
                )
            ],
        )
    _set_parents(tree)
    return analyze_tree(
        source, tree, checkers, config, module=module, path=path
    )


def analyze_file(
    path: Path,
    checkers: list,
    config: AnalysisConfig | None = None,
    display_root: Path | None = None,
) -> AnalysisResult:
    """Analyze one file (fresh checker state per file is the caller's job)."""
    display = path
    if display_root is not None:
        try:
            display = path.resolve().relative_to(display_root.resolve())
        except ValueError:
            display = path
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return AnalysisResult(
            findings=[
                Finding(
                    rule=PARSE_ERROR_RULE,
                    message=f"cannot read: {exc}",
                    path=str(display),
                    line=0,
                )
            ],
            n_files=1,
        )
    return analyze_source(
        source,
        checkers,
        config,
        module=module_name_for(display),
        path=str(display),
    )


def discover(paths: list[Path]) -> list[Path]:
    """Expand directories into sorted ``*.py`` files; keep explicit files."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        else:
            files.append(path)
    return files


def run_analysis(
    paths: list[Path],
    config: AnalysisConfig | None = None,
    checker_factory=None,
) -> AnalysisResult:
    """Analyze every Python file under ``paths``; findings come sorted.

    ``checker_factory`` returns fresh checker instances per file (the
    default is the full registry from :mod:`repro.analysis.checkers`);
    checkers carry per-file state, so instances are never reused across
    files.
    """
    if checker_factory is None:
        from repro.analysis.checkers import all_checkers

        checker_factory = all_checkers
    config = config or AnalysisConfig()
    result = AnalysisResult()
    for path in discover(paths):
        result.merge(
            analyze_file(
                path, checker_factory(), config, display_root=config.root
            )
        )
    result.findings.sort(key=lambda f: f.sort_key)
    return result
