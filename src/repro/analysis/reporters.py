"""Reporters: render an :class:`AnalysisResult` for humans or machines.

The JSON shape is stable (``{"findings": [...], "summary": {...}}``) so
CI can diff runs and a checked-in baseline stays reviewable.
"""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisResult

__all__ = ["render_text", "render_json", "REPORTERS"]


def render_text(result: AnalysisResult) -> str:
    """``path:line:col: [rule] message`` lines plus a summary line."""
    lines = [finding.render() for finding in result.findings]
    n_err = sum(1 for f in result.findings if f.severity == "error")
    n_warn = len(result.findings) - n_err
    lines.append(
        f"{len(result.findings)} finding(s) "
        f"({n_err} error, {n_warn} warning) in {result.n_files} file(s); "
        f"{result.n_suppressed} suppressed"
    )
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Stable machine-readable rendering."""
    payload = {
        "findings": [f.to_dict() for f in result.findings],
        "summary": {
            "n_findings": len(result.findings),
            "n_errors": sum(
                1 for f in result.findings if f.severity == "error"
            ),
            "n_warnings": sum(
                1 for f in result.findings if f.severity == "warning"
            ),
            "n_files": result.n_files,
            "n_suppressed": result.n_suppressed,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


REPORTERS = {"text": render_text, "json": render_json}
