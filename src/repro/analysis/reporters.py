"""Reporters: render an :class:`AnalysisResult` for humans or machines.

The JSON shape is stable (``{"findings": [...], "summary": {...}}``) so
CI can diff runs and a checked-in baseline stays reviewable.  The SARIF
reporter emits SARIF 2.1.0, the interchange format GitHub code scanning
ingests — uploading it as a CI artifact lets findings annotate PRs
inline instead of living in a job log.
"""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisResult

__all__ = ["render_text", "render_json", "render_sarif", "REPORTERS"]


def render_text(result: AnalysisResult) -> str:
    """``path:line:col: [rule] message`` lines plus a summary line."""
    lines = [finding.render() for finding in result.findings]
    n_err = sum(1 for f in result.findings if f.severity == "error")
    n_warn = len(result.findings) - n_err
    lines.append(
        f"{len(result.findings)} finding(s) "
        f"({n_err} error, {n_warn} warning) in {result.n_files} file(s); "
        f"{result.n_suppressed} suppressed"
    )
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Stable machine-readable rendering."""
    payload = {
        "findings": [f.to_dict() for f in result.findings],
        "summary": {
            "n_findings": len(result.findings),
            "n_errors": sum(
                1 for f in result.findings if f.severity == "error"
            ),
            "n_warnings": sum(
                1 for f in result.findings if f.severity == "warning"
            ),
            "n_files": result.n_files,
            "n_suppressed": result.n_suppressed,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


#: SARIF severity for each finding severity
_SARIF_LEVEL = {"error": "error", "warning": "warning"}


def render_sarif(result: AnalysisResult) -> str:
    """SARIF 2.1.0 for GitHub code scanning (one run, one rule per id)."""
    rules: dict[str, dict] = {}
    results = []
    for f in result.findings:
        rules.setdefault(
            f.rule,
            {
                "id": f.rule,
                "shortDescription": {"text": f.rule},
                "defaultConfiguration": {
                    "level": _SARIF_LEVEL.get(f.severity, "error")
                },
            },
        )
        results.append(
            {
                "ruleId": f.rule,
                "level": _SARIF_LEVEL.get(f.severity, "error"),
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": str(f.path).replace("\\", "/"),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": max(f.line, 1),
                                "startColumn": f.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "rules": sorted(
                            rules.values(), key=lambda r: r["id"]
                        ),
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


REPORTERS = {"text": render_text, "json": render_json, "sarif": render_sarif}
