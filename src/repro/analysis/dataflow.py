"""Forward interprocedural taint analysis over the project call graph.

The framework answers one question for whole-program checkers: *can a
value produced by this source expression reach that program point?* —
across assignments, arithmetic, containers, function calls, returns and
instance attributes.  It is deliberately engineered for the properties
that matter to a lint gate rather than a verifier:

* **context-insensitive, first-wins**: every variable / parameter /
  return slot / class attribute holds at most one taint witness, and a
  witness is never replaced once set.  The abstract domain is finite and
  updates are monotone, so the fixpoint terminates without widening.
* **flow-insensitive within a function**: statements are re-walked until
  the local environment stops changing, which soundly covers loops and
  use-before-def orderings at the cost of some precision.
* **conservative pass-through for unknown callees**: ``int(time.time())``
  stays tainted because ``int`` is external and receives a tainted
  argument; resolved project callees use their computed summaries
  instead.

A :class:`Taint` carries provenance — source label, origin location and
the chain of functions it travelled through — so findings read as a
story ("seeded at util/seeds.py:4, via make_seed → configure") instead
of a bare line number.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable

from repro.analysis.project import FunctionInfo, Project

__all__ = ["Taint", "TaintAnalysis", "TaintedUse"]

#: provenance chains are capped so cyclic call graphs cannot grow them
_MAX_CHAIN = 10


@dataclass(frozen=True)
class Taint:
    """One taint witness: what the value derives from, and how it got here."""

    label: str  # human description of the source, e.g. "time.time()"
    path: str  # file of the source expression
    line: int
    chain: tuple[str, ...] = ()  # function qualnames traversed, source first

    def via(self, qualname: str) -> "Taint":
        """Extend the provenance chain into ``qualname``."""
        if self.chain and self.chain[-1] == qualname:
            return self
        if len(self.chain) >= _MAX_CHAIN:
            return self
        return Taint(self.label, self.path, self.line, (*self.chain, qualname))

    def describe(self) -> str:
        """Readable provenance: source, origin, route."""
        route = " → ".join(q.rsplit(".", 1)[-1] for q in self.chain)
        text = f"{self.label} (origin {self.path}:{self.line}"
        if len(self.chain) > 1:
            text += f", via {route}"
        return text + ")"


@dataclass(frozen=True)
class TaintedUse:
    """A tainted value observed at a program point in a sink function."""

    function: str  # qualname of the function containing the use
    node: ast.AST
    taint: Taint


class TaintAnalysis:
    """Run forward taint from ``source`` matches to uses in sink functions.

    Parameters
    ----------
    project:
        The built :class:`~repro.analysis.project.Project`.
    source:
        ``source(callee_qualname, call_node) -> label | None``.  Called
        for every call site with the canonical callee name (``None``
        when unresolved); a non-``None`` label marks the call's result
        tainted.
    is_sink_function:
        Predicate over function qualnames; tainted-value uses are
        recorded only inside functions it accepts.
    """

    def __init__(
        self,
        project: Project,
        source: Callable[[str | None, ast.Call], str | None],
        is_sink_function: Callable[[str], bool],
    ) -> None:
        self.project = project
        self.source = source
        self.is_sink = is_sink_function
        #: function qualname -> local name (or "self.attr") -> Taint
        self.env: dict[str, dict[str, Taint]] = {}
        #: function qualname -> Taint of its return value
        self.returns: dict[str, Taint] = {}
        #: (class qualname, attr) -> Taint
        self.attr_taints: dict[tuple[str, str], Taint] = {}
        self.uses: list[TaintedUse] = []

    # ------------------------------------------------------------- fixpoint
    def run(self) -> "TaintAnalysis":
        """Iterate to a fixpoint, then collect sink uses."""
        worklist = list(self.project.functions)
        queued = set(worklist)
        rounds = 0
        budget = max(1, len(worklist)) * 25
        while worklist and rounds < budget:
            rounds += 1
            fq = worklist.pop(0)
            queued.discard(fq)
            info = self.project.functions[fq]
            changed = self._analyze_function(info)
            for dep in changed:
                if dep not in queued and dep in self.project.functions:
                    queued.add(dep)
                    worklist.append(dep)
        for fq, info in self.project.functions.items():
            if self.is_sink(fq):
                self._collect_uses(info)
        return self

    # -------------------------------------------------------- per function
    def _fn_env(self, fq: str) -> dict[str, Taint]:
        return self.env.setdefault(fq, {})

    def _bind(self, env: dict[str, Taint], key: str, taint: Taint) -> bool:
        """First-wins binding; returns True when something new was learned."""
        if key in env:
            return False
        env[key] = taint
        return True

    def _analyze_function(self, info: FunctionInfo) -> set[str]:
        """One pass over ``info``; returns qualnames needing re-analysis."""
        fq = info.qualname
        env = self._fn_env(fq)
        dirty: set[str] = set()
        self_name = (
            info.positional_params()[0]
            if info.is_method and info.positional_params()
            else None
        )

        # seed: class-attribute taints visible through self
        if info.class_qualname is not None:
            for (cls, attr), taint in list(self.attr_taints.items()):
                if cls == info.class_qualname and self_name is not None:
                    self._bind(env, f"{self_name}.{attr}", taint)

        changed_local = True
        passes = 0
        while changed_local and passes < 6:
            changed_local = False
            passes += 1
            for node in ast.walk(info.node):
                changed_local |= self._transfer(node, info, env, dirty)
        return dirty

    # ------------------------------------------------------- transfer rules
    def _transfer(
        self,
        node: ast.AST,
        info: FunctionInfo,
        env: dict[str, Taint],
        dirty: set[str],
    ) -> bool:
        fq = info.qualname
        changed = False
        if isinstance(node, ast.Assign):
            taint = self._expr_taint(node.value, info, env)
            if taint is not None:
                for target in node.targets:
                    changed |= self._bind_target(target, taint, info, env, dirty)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            taint = self._expr_taint(node.value, info, env)
            if taint is not None:
                changed |= self._bind_target(node.target, taint, info, env, dirty)
        elif isinstance(node, ast.AugAssign):
            taint = self._expr_taint(node.value, info, env) or self._expr_taint(
                node.target, info, env
            )
            if taint is not None:
                changed |= self._bind_target(node.target, taint, info, env, dirty)
        elif isinstance(node, ast.For):
            taint = self._expr_taint(node.iter, info, env)
            if taint is not None:
                changed |= self._bind_target(node.target, taint, info, env, dirty)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            taint = self._expr_taint(node.context_expr, info, env)
            if taint is not None:
                changed |= self._bind_target(
                    node.optional_vars, taint, info, env, dirty
                )
        elif isinstance(node, ast.Return) and node.value is not None:
            taint = self._expr_taint(node.value, info, env)
            if taint is not None and fq not in self.returns:
                self.returns[fq] = taint.via(fq)
                changed = True
                dirty.update(e.caller for e in self.project.calls_to(fq))
        elif isinstance(node, ast.Call):
            changed |= self._propagate_call_args(node, info, env, dirty)
        return changed

    def _bind_target(
        self,
        target: ast.AST,
        taint: Taint,
        info: FunctionInfo,
        env: dict[str, Taint],
        dirty: set[str],
    ) -> bool:
        changed = False
        if isinstance(target, ast.Name):
            changed |= self._bind(env, target.id, taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                changed |= self._bind_target(elt, taint, info, env, dirty)
        elif isinstance(target, ast.Starred):
            changed |= self._bind_target(target.value, taint, info, env, dirty)
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            changed |= self._bind(env, f"{target.value.id}.{target.attr}", taint)
            # a write through self publishes to every method of the class
            if info.class_qualname is not None:
                params = info.positional_params()
                if params and target.value.id == params[0]:
                    key = (info.class_qualname, target.attr)
                    if key not in self.attr_taints:
                        self.attr_taints[key] = taint
                        changed = True
                        cls = self.project.classes.get(info.class_qualname)
                        if cls is not None:
                            dirty.update(cls.methods.values())
        elif isinstance(target, ast.Subscript):
            changed |= self._bind_target(target.value, taint, info, env, dirty)
        return changed

    def _propagate_call_args(
        self,
        call: ast.Call,
        info: FunctionInfo,
        env: dict[str, Taint],
        dirty: set[str],
    ) -> bool:
        """Tainted arguments flow into resolved project callees' params."""
        edge = self.project.edge_of(call)
        if edge is None or edge.external:
            return False
        callee = self.project.functions.get(edge.callee)
        if callee is None:
            return False
        params = callee.positional_params()
        # calling a method through a receiver binds args from params[1:]
        offset = 0
        if callee.is_method and isinstance(call.func, ast.Attribute):
            offset = 1
        changed = False
        callee_env = self._fn_env(edge.callee)
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            taint = self._expr_taint(arg, info, env)
            if taint is None:
                continue
            slot = i + offset
            if slot < len(params):
                if self._bind(callee_env, params[slot], taint.via(edge.callee)):
                    dirty.add(edge.callee)
                    changed = True
        names = set(callee.param_names())
        for kw in call.keywords:
            if kw.arg is None or kw.arg not in names:
                continue
            taint = self._expr_taint(kw.value, info, env)
            if taint is not None:
                if self._bind(callee_env, kw.arg, taint.via(edge.callee)):
                    dirty.add(edge.callee)
                    changed = True
        return changed

    # ---------------------------------------------------- expression taint
    def _expr_taint(
        self,
        expr: ast.AST | None,
        info: FunctionInfo,
        env: dict[str, Taint],
    ) -> Taint | None:
        if expr is None:
            return None
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name):
                dotted = f"{expr.value.id}.{expr.attr}"
                if dotted in env:
                    return env[dotted]
            return self._expr_taint(expr.value, info, env)
        if isinstance(expr, ast.Call):
            callee = self.project.callee_of(expr)
            label = self.source(callee, expr)
            if label is not None:
                return Taint(
                    label,
                    info.path,
                    getattr(expr, "lineno", 0),
                    (info.qualname,),
                )
            if callee is not None and callee in self.returns:
                return self.returns[callee].via(info.qualname)
            edge = self.project.edge_of(expr)
            if edge is not None and not edge.external:
                # resolved project callee with an untainted return:
                # trust the summary, do not pass taint through
                return None
            # unknown/external callee: conservative pass-through from
            # arguments and the receiver object
            for arg in (*expr.args, *(kw.value for kw in expr.keywords)):
                taint = self._expr_taint(arg, info, env)
                if taint is not None:
                    return taint
            if isinstance(expr.func, ast.Attribute):
                return self._expr_taint(expr.func.value, info, env)
            return None
        if isinstance(
            expr,
            (
                ast.BinOp,
                ast.UnaryOp,
                ast.BoolOp,
                ast.Compare,
                ast.IfExp,
                ast.Tuple,
                ast.List,
                ast.Set,
                ast.Dict,
                ast.Subscript,
                ast.Starred,
                ast.JoinedStr,
                ast.FormattedValue,
                ast.Slice,
                ast.ListComp,
                ast.SetComp,
                ast.GeneratorExp,
                ast.DictComp,
                ast.Await,
                ast.NamedExpr,
            ),
        ):
            for child in ast.iter_child_nodes(expr):
                taint = self._expr_taint(child, info, env)
                if taint is not None:
                    return taint
            return None
        if isinstance(expr, ast.comprehension):
            return self._expr_taint(expr.iter, info, env)
        return None

    # ------------------------------------------------------------ sink uses
    def _collect_uses(self, info: FunctionInfo) -> None:
        """Record tainted loads and tainted source calls inside a sink fn."""
        env = self._fn_env(info.qualname)
        seen_origins: set[tuple[str, int, str]] = set()

        def record(node: ast.AST, taint: Taint) -> None:
            origin = (taint.path, taint.line, taint.label)
            if origin in seen_origins:
                return
            seen_origins.add(origin)
            self.uses.append(TaintedUse(info.qualname, node, taint))

        for node in ast.walk(info.node):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                taint = env.get(node.id)
                if taint is not None:
                    record(node, taint)
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                if isinstance(node.value, ast.Name):
                    taint = env.get(f"{node.value.id}.{node.attr}")
                    if taint is not None:
                        record(node, taint)
            elif isinstance(node, ast.Call):
                callee = self.project.callee_of(node)
                label = self.source(callee, node)
                if label is not None:
                    record(
                        node,
                        Taint(
                            label,
                            info.path,
                            getattr(node, "lineno", 0),
                            (info.qualname,),
                        ),
                    )
