"""Project model: whole-program symbol table and call graph.

The per-file engine (:mod:`repro.analysis.engine`) sees one AST at a
time; the invariants PR 7 targets — seeded RNG flowing from
``repro.util.rng`` through campaign → surrogate → docking, the
tmp+``os.replace`` durability idiom scattered across ``util.shardio`` /
``util.checkpoint``, locks guarding state shared between producer and
consumer threads — all span module boundaries.  This module parses the
whole tree **once** and builds what interprocedural checkers need:

* a symbol table of every module, class, function and method, with
  qualified names (``repro.nn.dataloader.PrefetchLoader._producer``);
* import resolution that follows aliases, relative imports *and*
  re-exports (``from .a import fn`` in a package ``__init__`` resolves
  callers of ``pkg.fn`` to ``pkg.a.fn``), so diamond import graphs
  collapse onto one canonical symbol;
* lightweight receiver-type inference (annotations, ``x = Cls(...)``
  locals, ``self.attr`` types recorded from ``__init__``) so method
  calls resolve to definitions;
* a call graph whose edges carry the call site, including *external*
  edges (``os.replace``, ``numpy.savez_compressed``) — checkers match
  on qualified callee names without re-walking ASTs.

Decorated functions register under their plain name: calling a wrapped
function still reaches the wrapped body, which is the sound
approximation for every decorator in this codebase.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.astutil import qualified_name
from repro.analysis.engine import (
    Suppressions,
    discover,
    module_name_for,
    _set_parents,
)
from repro.analysis.findings import Finding

__all__ = [
    "CallEdge",
    "ClassInfo",
    "FunctionInfo",
    "Project",
    "ProjectFile",
    "build_project",
]

_FUNC = (ast.FunctionDef, ast.AsyncFunctionDef)

#: constructors whose instances are safe to share across threads
THREAD_SAFE_CTORS = frozenset(
    {
        "queue.Queue",
        "queue.LifoQueue",
        "queue.PriorityQueue",
        "queue.SimpleQueue",
        "threading.Event",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Barrier",
        "threading.local",
        "collections.deque",
    }
)

#: constructors that create lock-like guards
LOCK_CTORS = frozenset(
    {"threading.Lock", "threading.RLock", "threading.Condition"}
)


@dataclass
class ProjectFile:
    """One parsed source file plus the tables derived from it."""

    path: str  # display path (relative to the project root when possible)
    module: str
    source: str
    tree: ast.Module
    is_package: bool
    imports: dict[str, str] = field(default_factory=dict)
    suppressions: Suppressions | None = None


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_qualname: str | None = None
    decorators: list[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_method(self) -> bool:
        return self.class_qualname is not None

    def param_names(self) -> list[str]:
        a = self.node.args
        names = [p.arg for p in (*a.posonlyargs, *a.args)]
        if a.vararg:
            names.append(a.vararg.arg)
        names.extend(p.arg for p in a.kwonlyargs)
        if a.kwarg:
            names.append(a.kwarg.arg)
        return names

    def positional_params(self) -> list[str]:
        """Names bindable by position (methods include ``self``)."""
        a = self.node.args
        return [p.arg for p in (*a.posonlyargs, *a.args)]


@dataclass
class ClassInfo:
    """One class definition with resolved bases and attribute types."""

    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)  # name -> fn qualname
    #: ``self.attr`` → project class qualname (inferred in ``__init__``)
    attr_types: dict[str, str] = field(default_factory=dict)
    #: ``self.attr`` → qualified constructor called to produce it
    #: (``threading.Lock``, ``queue.Queue`` …), project or external
    attr_ctors: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallEdge:
    """One call site: ``caller`` invokes ``callee``."""

    caller: str  # function qualname ("<module:m>" for module-level code)
    callee: str  # canonical qualname (project symbol or external dotted)
    external: bool  # callee is not defined in the project
    path: str
    line: int
    node_id: int  # id() of the ast.Call, for node→edge lookups


class Project:
    """Whole-program view: files, symbols, call graph."""

    def __init__(self) -> None:
        self.files: dict[str, ProjectFile] = {}  # module -> file
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.edges: list[CallEdge] = []
        self._out: dict[str, list[CallEdge]] = {}
        self._in: dict[str, list[CallEdge]] = {}
        self._by_call_node: dict[int, CallEdge] = {}
        self.parse_findings: list[Finding] = []

    # ------------------------------------------------------------ queries
    def calls_from(self, qualname: str) -> list[CallEdge]:
        """Call edges leaving ``qualname``."""
        return self._out.get(qualname, [])

    def calls_to(self, qualname: str) -> list[CallEdge]:
        """Call edges arriving at ``qualname``."""
        return self._in.get(qualname, [])

    def callee_of(self, call_node: ast.Call) -> str | None:
        """Canonical callee of a specific ``ast.Call``, if resolved."""
        edge = self._by_call_node.get(id(call_node))
        return edge.callee if edge is not None else None

    def edge_of(self, call_node: ast.Call) -> CallEdge | None:
        """The edge recorded for a specific ``ast.Call`` node."""
        return self._by_call_node.get(id(call_node))

    def reachable(self, roots) -> set[str]:
        """Project functions reachable from ``roots`` (roots included)."""
        seen: set[str] = set()
        frontier = [r for r in roots if r in self.functions]
        while frontier:
            fq = frontier.pop()
            if fq in seen:
                continue
            seen.add(fq)
            for edge in self.calls_from(fq):
                if not edge.external and edge.callee in self.functions:
                    frontier.append(edge.callee)
        return seen

    def functions_in(self, module_prefixes: list[str]) -> list[str]:
        """Qualnames of functions whose module falls under any prefix."""
        from repro.analysis.config import module_matches

        return [
            fq
            for fq, info in self.functions.items()
            if module_matches(info.module, module_prefixes)
        ]

    def method_resolution(self, class_qualname: str, method: str) -> str | None:
        """Resolve ``method`` on a class, walking project base classes."""
        seen: set[str] = set()
        frontier = [class_qualname]
        while frontier:
            cq = frontier.pop(0)
            if cq in seen:
                continue
            seen.add(cq)
            cls = self.classes.get(cq)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            frontier.extend(cls.bases)
        return None

    # ------------------------------------------------------- resolution
    def canonical(self, dotted: str | None) -> str | None:
        """Follow re-exports until ``dotted`` names a project definition.

        ``pkg.fn`` where ``pkg/__init__.py`` does ``from .a import fn``
        canonicalizes to ``pkg.a.fn``; unknown names come back unchanged
        (they are external).
        """
        if dotted is None:
            return None
        seen: set[str] = set()
        while (
            dotted not in self.functions
            and dotted not in self.classes
            and dotted not in seen
        ):
            seen.add(dotted)
            head, _, sym = dotted.rpartition(".")
            if not head:
                break
            # `a.b.c.sym`: if `a.b.c` is a project module re-exporting
            # sym, follow; otherwise try canonicalizing the head (so
            # `pkg.Cls.method` resolves through a re-exported Cls)
            pf = self.files.get(head)
            if pf is not None and sym in pf.imports:
                nxt = pf.imports[sym]
                if nxt != dotted:
                    dotted = nxt
                    continue
            new_head = None
            if head not in self.files:
                new_head = self.canonical(head)
            if new_head is not None and new_head != head:
                dotted = f"{new_head}.{sym}"
                continue
            break
        return dotted

    def resolve(self, module: str, name_expr: ast.AST) -> str | None:
        """Resolve a Name/Attribute chain seen in ``module`` to a symbol."""
        pf = self.files.get(module)
        if pf is None:
            return None
        dotted = qualified_name(name_expr, pf.imports)
        if dotted is None:
            return None
        # an unimported bare root may be module-level in this module
        root = dotted.split(".", 1)[0]
        if root not in pf.imports:
            local = f"{module}.{dotted}"
            resolved = self.canonical(local)
            if resolved in self.functions or resolved in self.classes:
                return resolved
        return self.canonical(dotted)


def _resolved_imports(tree: ast.Module, module: str, is_package: bool) -> dict[str, str]:
    """Local name → dotted origin, with relative imports resolved.

    Unlike :func:`repro.analysis.astutil.collect_imports`, this knows the
    importing module's own dotted path, so ``from .shardio import x`` in
    ``repro.util.checkpoint`` maps ``x`` → ``repro.util.shardio.x``.
    """
    package_parts = module.split(".") if module else []
    if not is_package and package_parts:
        package_parts = package_parts[:-1]
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                anchor = package_parts[: len(package_parts) - (node.level - 1)]
                base_parts = anchor + (node.module.split(".") if node.module else [])
                base = ".".join(base_parts)
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                origin = f"{base}.{alias.name}" if base else alias.name
                imports[alias.asname or alias.name] = origin
    return imports


def _annotation_class(ann: ast.AST | None, project: Project, module: str) -> str | None:
    """Project class named by an annotation (unwraps Optional/unions/strings)."""
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        return _annotation_class(ann.left, project, module) or _annotation_class(
            ann.right, project, module
        )
    if isinstance(ann, ast.Subscript):  # Optional[X], list[X] → try X
        return _annotation_class(ann.slice, project, module)
    if isinstance(ann, (ast.Name, ast.Attribute)):
        resolved = project.resolve(module, ann)
        if resolved in project.classes:
            return resolved
    return None


def _collect_symbols(project: Project, pf: ProjectFile) -> None:
    """Register every function/class in one file under qualified names."""

    def visit(body, prefix: str, class_qualname: str | None) -> None:
        for node in body:
            if isinstance(node, _FUNC):
                qual = f"{prefix}.{node.name}"
                decorators = []
                for dec in node.decorator_list:
                    target = dec.func if isinstance(dec, ast.Call) else dec
                    dotted = qualified_name(target, pf.imports)
                    if dotted:
                        decorators.append(dotted)
                info = FunctionInfo(
                    qualname=qual,
                    module=pf.module,
                    path=pf.path,
                    node=node,
                    class_qualname=class_qualname,
                    decorators=decorators,
                )
                project.functions.setdefault(qual, info)
                if class_qualname is not None:
                    project.classes[class_qualname].methods.setdefault(
                        node.name, qual
                    )
                # nested defs are their own symbols (not methods)
                visit(node.body, qual, None)
            elif isinstance(node, ast.ClassDef):
                qual = f"{prefix}.{node.name}"
                cls = ClassInfo(
                    qualname=qual, module=pf.module, path=pf.path, node=node
                )
                project.classes.setdefault(qual, cls)
                visit(node.body, qual, qual)

    visit(pf.tree.body, pf.module, None)


def _resolve_class_tables(project: Project) -> None:
    """Second pass: resolve base classes and infer ``self.attr`` types."""
    for cls in project.classes.values():
        for base in cls.node.bases:
            resolved = project.resolve(cls.module, base)
            if resolved in project.classes:
                cls.bases.append(resolved)
        # class-level annotations (dataclass fields)
        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                t = _annotation_class(stmt.annotation, project, cls.module)
                if t is not None:
                    cls.attr_types.setdefault(stmt.target.id, t)
        init_q = cls.methods.get("__init__")
        init = project.functions.get(init_q) if init_q else None
        if init is None:
            continue
        params = {
            p.arg: _annotation_class(p.annotation, project, cls.module)
            for p in (*init.node.args.posonlyargs, *init.node.args.args)
        }
        self_name = init.positional_params()[0] if init.positional_params() else "self"
        for stmt in ast.walk(init.node):
            targets: list[ast.expr] = []
            value: ast.AST | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == self_name
                ):
                    continue
                attr = target.attr
                if isinstance(stmt, ast.AnnAssign):
                    t = _annotation_class(stmt.annotation, project, cls.module)
                    if t is not None:
                        cls.attr_types.setdefault(attr, t)
                if isinstance(value, ast.Call):
                    ctor = project.resolve(cls.module, value.func)
                    if ctor is None:
                        pf = project.files.get(cls.module)
                        ctor = qualified_name(
                            value.func, pf.imports if pf else {}
                        )
                    if ctor is not None:
                        cls.attr_ctors.setdefault(attr, ctor)
                        if ctor in project.classes:
                            cls.attr_types.setdefault(attr, ctor)
                elif isinstance(value, ast.Name) and value.id in params:
                    t = params[value.id]
                    if t is not None:
                        cls.attr_types.setdefault(attr, t)


class _LocalTypes:
    """Receiver types inside one function: annotations + constructor calls."""

    def __init__(self, project: Project, info: FunctionInfo) -> None:
        self.project = project
        self.info = info
        self.types: dict[str, str] = {}
        args = info.node.args
        for p in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            t = _annotation_class(p.annotation, project, info.module)
            if t is not None:
                self.types[p.arg] = t
        if info.is_method and info.positional_params():
            self.types[info.positional_params()[0]] = info.class_qualname

    def note_assign(self, stmt: ast.stmt) -> None:
        targets: list[ast.expr] = []
        value: ast.AST | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
            t = _annotation_class(stmt.annotation, self.project, self.info.module)
            if t is not None and isinstance(stmt.target, ast.Name):
                self.types[stmt.target.id] = t
            value = stmt.value
        if isinstance(value, ast.Call):
            ctor = self.project.resolve(self.info.module, value.func)
            if ctor in self.project.classes:
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.types[target.id] = ctor

    def type_of(self, expr: ast.AST) -> str | None:
        """Class qualname of an expression, when inferable."""
        if isinstance(expr, ast.Name):
            return self.types.get(expr.id)
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            recv_type = self.types.get(expr.value.id)
            if recv_type is not None:
                cls = self.project.classes.get(recv_type)
                while cls is not None:
                    if expr.attr in cls.attr_types:
                        return cls.attr_types[expr.attr]
                    cls = (
                        self.project.classes.get(cls.bases[0])
                        if cls.bases
                        else None
                    )
        return None


def _function_body_nodes(fn: ast.AST):
    """Walk a function body, *excluding* nested function/class bodies."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (*_FUNC, ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _resolve_call(
    project: Project,
    info: FunctionInfo,
    types: _LocalTypes,
    local_defs: dict[str, str],
    call: ast.Call,
) -> tuple[str, bool] | None:
    """(canonical callee, external?) for one call site, or None."""
    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
        if name in local_defs:
            return local_defs[name], False
        resolved = project.resolve(info.module, func)
        if resolved in project.functions:
            return resolved, False
        if resolved in project.classes:
            init = project.method_resolution(resolved, "__init__")
            return (init, False) if init else (resolved, False)
        if resolved is not None and resolved != name:
            return resolved, True
        return name, True
    if isinstance(func, ast.Attribute):
        # method call on an inferable receiver
        recv_type = types.type_of(func.value)
        if recv_type is not None:
            target = project.method_resolution(recv_type, func.attr)
            if target is not None:
                return target, False
            return f"{recv_type}.{func.attr}", True
        resolved = project.resolve(info.module, func)
        if resolved in project.functions:
            return resolved, False
        if resolved in project.classes:
            init = project.method_resolution(resolved, "__init__")
            return (init, False) if init else (resolved, False)
        if resolved is not None:
            return resolved, True
    return None


def _build_call_graph(project: Project) -> None:
    for fq, info in project.functions.items():
        # local nested defs shadow module/global names
        local_defs = {
            node.name: f"{fq}.{node.name}"
            for node in ast.walk(info.node)
            if isinstance(node, _FUNC) and node is not info.node
            and f"{fq}.{node.name}" in project.functions
        }
        types = _LocalTypes(project, info)
        for node in ast.walk(info.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                types.note_assign(node)
        for node in _function_body_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = _resolve_call(project, info, types, local_defs, node)
            if resolved is None:
                continue
            callee, external = resolved
            edge = CallEdge(
                caller=fq,
                callee=callee,
                external=external,
                path=info.path,
                line=getattr(node, "lineno", 0),
                node_id=id(node),
            )
            project.edges.append(edge)
            project._out.setdefault(fq, []).append(edge)
            project._in.setdefault(callee, []).append(edge)
            project._by_call_node[id(node)] = edge


def _canonical_decorator(project: Project, module: str, dotted: str) -> str:
    """Canonical qualname of a decorator (module-local names included)."""
    local = project.canonical(f"{module}.{dotted}")
    if local in project.functions or local in project.classes:
        return local
    return project.canonical(dotted) or dotted


def build_project(paths: list[Path], root: Path | None = None) -> Project:
    """Parse every file under ``paths`` once and assemble the project.

    Files that fail to parse contribute a ``parse-error`` finding (same
    rule the per-file engine uses) and are skipped; everything else joins
    the symbol table and call graph.
    """
    project = Project()
    for path in discover(paths):
        display = path
        if root is not None:
            try:
                display = path.resolve().relative_to(Path(root).resolve())
            except ValueError:
                display = path
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source)
        except (OSError, SyntaxError) as exc:
            msg = getattr(exc, "msg", str(exc))
            project.parse_findings.append(
                Finding(
                    rule="parse-error",
                    message=f"cannot parse: {msg}",
                    path=str(display),
                    line=getattr(exc, "lineno", 0) or 0,
                )
            )
            continue
        _set_parents(tree)
        module = module_name_for(display)
        pf = ProjectFile(
            path=str(display),
            module=module,
            source=source,
            tree=tree,
            is_package=path.name == "__init__.py",
            suppressions=Suppressions.parse(source.splitlines()),
        )
        pf.imports = _resolved_imports(tree, module, pf.is_package)
        project.files[module] = pf
    for pf in project.files.values():
        _collect_symbols(project, pf)
    for info in project.functions.values():
        info.decorators = [
            _canonical_decorator(project, info.module, dec)
            for dec in info.decorators
        ]
    _resolve_class_tables(project)
    _build_call_graph(project)
    return project
