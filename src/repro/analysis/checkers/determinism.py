"""determinism: all randomness flows through seeded generators.

A campaign must replay bit-identically from one root seed
(``repro.util.rng`` hands out hierarchical, key-addressed streams).
Two API families break that contract:

* the stdlib's module-level functions (``random.random()``,
  ``random.shuffle()``, …) draw from one hidden global state that any
  import order or thread interleaving perturbs;
* NumPy's legacy global namespace (``np.random.rand()``,
  ``np.random.seed()``, …) has the same problem and is soft-deprecated
  upstream (NEP 19).

Constructing explicit generator objects (``np.random.default_rng``,
``Generator``, ``SeedSequence``, bit generators, ``random.Random``)
stays legal — the rule targets *global* state, not randomness.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import collect_imports, qualified_name
from repro.analysis.checkers.base import Checker
from repro.analysis.engine import FileContext

__all__ = ["DeterminismChecker"]

#: numpy.random attributes that construct explicit, seedable state
_NP_RANDOM_SAFE = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "RandomState",  # explicit (if legacy) state object, still seedable
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: stdlib random module-level functions that use the hidden global state
_STDLIB_RANDOM_GLOBALS = frozenset(
    {
        "seed",
        "random",
        "uniform",
        "randint",
        "randrange",
        "getrandbits",
        "randbytes",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "triangular",
        "vonmisesvariate",
        "weibullvariate",
    }
)


class DeterminismChecker(Checker):
    """Flag global-state RNG use; point at :mod:`repro.util.rng`."""

    rule = "determinism"
    description = (
        "no np.random.* legacy globals or unseeded stdlib random.*; "
        "derive streams from repro.util.rng"
    )

    def begin_file(self, ctx: FileContext) -> None:
        self._imports = collect_imports(ctx.tree)
        self._allowed = ctx.module_in(ctx.config.determinism_allow)

    def _flagged(self, qname: str | None) -> str | None:
        if qname is None:
            return None
        parts = qname.split(".")
        if parts[:2] == ["numpy", "random"] and len(parts) == 3:
            if parts[2] not in _NP_RANDOM_SAFE:
                return (
                    f"legacy global RNG {qname}() mutates numpy's hidden "
                    "state; derive a generator via repro.util.rng "
                    "(rng_stream / RngFactory) or np.random.default_rng"
                )
        if (
            parts[0] == "random"
            and len(parts) == 2
            and parts[1] in _STDLIB_RANDOM_GLOBALS
        ):
            return (
                f"unseeded stdlib RNG {qname}() draws from the process-"
                "global state; derive a stream from repro.util.rng instead"
            )
        return None

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if self._allowed:
            return
        message = self._flagged(qualified_name(node.func, self._imports))
        if message is not None:
            self.report(ctx, node, message)
