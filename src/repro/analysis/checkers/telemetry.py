"""telemetry-discipline: instrumented code keeps its trace deterministic.

Two invariants guard the telemetry layer's byte-identical-trace
contract:

1. Instrumented modules (``telemetry-modules`` in ``[tool.repro-lint]``)
   never read the wall clock directly — every timestamp flows through an
   injected clock (``WallClock``, ``TickClock``, ``ExecutorClock``) so a
   simulated run's spans cannot couple to host speed.  Unlike
   clock-purity this rule has no allowlist escape: even real-execution
   modules must read time through the clock object they were given.
2. ``tracer.span(...)`` is only ever used as a context manager.  The
   span API leans on ``with`` for the enter/exit pairing that keeps the
   thread-local nesting stack balanced; a bare call opens a span that
   never closes and silently corrupts every descendant's parent edge.
   (``start_span``/``record_span`` are the sanctioned manual APIs.)
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import collect_imports, qualified_name
from repro.analysis.checkers.base import Checker
from repro.analysis.engine import FileContext

__all__ = ["TelemetryDisciplineChecker"]

#: direct wall-clock *reads* (sleeps and datetime are clock-purity's job)
WALL_CLOCK_READS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)


def _receiver_tail(node: ast.expr) -> str | None:
    """Final identifier of the receiver chain (``self._tracer`` → ``_tracer``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class TelemetryDisciplineChecker(Checker):
    """Flag direct clock reads in instrumented modules and un-``with``-ed spans."""

    rule = "telemetry-discipline"
    description = (
        "instrumented modules read time only through injected clocks; "
        "tracer.span(...) must be a context manager"
    )

    def begin_file(self, ctx: FileContext) -> None:
        self._imports = collect_imports(ctx.tree)
        self._instrumented = ctx.module_in(ctx.config.telemetry_modules)

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if self._instrumented:
            qname = qualified_name(node.func, self._imports)
            if qname in WALL_CLOCK_READS:
                self.report(
                    ctx,
                    node,
                    f"direct wall-clock read {qname}() in instrumented module "
                    f"'{ctx.module}'; read time through the injected clock "
                    "(WallClock/TickClock/ExecutorClock) so spans stay "
                    "deterministic under the simulated clock",
                )
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "span":
            tail = _receiver_tail(func.value)
            if tail is not None and "tracer" in tail.lower():
                parent = getattr(node, "_repro_parent", None)
                if not isinstance(parent, ast.withitem):
                    self.report(
                        ctx,
                        node,
                        "tracer.span(...) outside a with-statement leaks an "
                        "open span and unbalances the nesting stack; use "
                        "`with tracer.span(...):` (or start_span/record_span "
                        "for manual timing)",
                    )
