"""Checker protocol.

A checker is a small stateful object created fresh for every file.  The
engine introspects its ``visit_<NodeType>`` methods once per file and
calls each with ``(node, ctx)`` during the single AST walk;
``begin_file``/``end_file`` bracket the walk for setup and whole-file
rules.  Checkers report through :meth:`FileContext.report` and never
filter suppressions themselves.
"""

from __future__ import annotations

from repro.analysis.engine import FileContext

__all__ = ["Checker"]


class Checker:
    """Base class: one rule, per-file state."""

    #: rule name used in findings, config disables and suppressions
    rule: str = ""
    #: one-line description shown by ``repro-lint --list-rules``
    description: str = ""
    #: default severity of this rule's findings
    severity: str = "error"

    def begin_file(self, ctx: FileContext) -> None:
        """Per-file setup (import tables, allowlist checks)."""

    def end_file(self, ctx: FileContext) -> None:
        """Whole-file rules that need the complete walk first."""

    def report(self, ctx: FileContext, node, message: str) -> None:
        """Report a finding under this checker's rule and severity."""
        ctx.report(self.rule, node, message, severity=self.severity)
