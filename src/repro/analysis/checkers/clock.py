"""clock-purity: simulated code must never read or spin the wall clock.

The campaign's scaling results come from a discrete-event executor whose
virtual clock *is* the experiment; a stray ``time.time()`` in a
sim-facing module silently couples simulated results to host speed, and
a ``time.sleep()`` stalls a worker for real.  Only modules on the
explicit real-execution allowlist (``clock-allow`` in
``[tool.repro-lint]``) may touch wall-clock APIs — everything else gets
its notion of time from the executor (``executor.now`` /
``wait_until``).
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import collect_imports, qualified_name
from repro.analysis.checkers.base import Checker
from repro.analysis.engine import FileContext

__all__ = ["ClockPurityChecker"]

#: wall-clock entry points (resolved through import aliases)
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.sleep",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class ClockPurityChecker(Checker):
    """Flag wall-clock calls outside the real-execution allowlist."""

    rule = "clock-purity"
    description = (
        "no time.time/time.sleep/datetime.now outside the clock-allow "
        "list; sim modules must use the executor clock"
    )

    def begin_file(self, ctx: FileContext) -> None:
        self._imports = collect_imports(ctx.tree)
        self._allowed = ctx.module_in(ctx.config.clock_allow)

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if self._allowed:
            return
        qname = qualified_name(node.func, self._imports)
        if qname in WALL_CLOCK_CALLS:
            self.report(
                ctx,
                node,
                f"wall-clock call {qname}() in module '{ctx.module}'; "
                "simulated stages must advance the executor clock — add "
                "the module to [tool.repro-lint] clock-allow only if it "
                "really runs wall-bound work",
            )
