"""workflow-shape: validate task/stage/pipeline literals before dispatch.

The static twin of :meth:`repro.rct.pilot.Pilot.validate_fits` — RAPTOR
(arXiv:2209.00114) and the RADICAL infrastructure papers both push
task/resource validation *before* submission, because at scale a
malformed request surfaces as a misleading deadlock hours into an
allocation.  At lint time we can catch every construction site whose
arguments are literals:

* **overcommit** — a ``TaskSpec`` requesting more per-node cpus/gpus
  than the ``NodeSpec`` visible in the same scope (or the module) holds;
* **zero-slot tasks** — ``cpus=0`` with no gpus (raises at runtime);
* **non-positive node counts / negative durations**;
* **zero-task stages** and **empty pipelines** (both raise at runtime);
* **unreachable stages** — a ``Stage`` bound to a name that is never
  referenced again, i.e. built but never wired into any pipeline.

Only literal arguments are judged; computed shapes are runtime
territory (``validate_fits`` still guards those).
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import (
    collect_imports,
    iter_parents,
    literal_number,
    qualified_name,
)
from repro.analysis.checkers.base import Checker
from repro.analysis.engine import FileContext

__all__ = ["WorkflowShapeChecker"]

#: default per-node shape of repro.rct.cluster.NodeSpec / SUMMIT_NODE
_DEFAULT_NODE = (42, 6)

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def _last_segment(qname: str | None) -> str | None:
    return qname.rsplit(".", 1)[-1] if qname else None


def _scope_of(node: ast.AST) -> ast.AST:
    """Innermost function containing ``node``, else the module."""
    last = node
    for parent in iter_parents(node):
        if isinstance(parent, _FunctionNode):
            return parent
        last = parent
    return last


class WorkflowShapeChecker(Checker):
    """Statically validate TaskSpec/Stage/Pipeline construction sites."""

    rule = "workflow-shape"
    description = (
        "TaskSpec/Stage/Pipeline literals checked against NodeSpec "
        "shapes: overcommit, zero-task stages, unreachable stages"
    )

    def begin_file(self, ctx: FileContext) -> None:
        self._imports = collect_imports(ctx.tree)
        # scope id → list of node shapes visible in that scope
        self._shapes: dict[int, list[tuple[float, float]]] = {}
        self._module_scope = ctx.tree
        # stage bindings awaiting a later load: name → assign node
        self._stage_bindings: list[tuple[str, ast.AST, ast.AST]] = []
        self._collect_shapes(ctx)

    # ---------------------------------------------------------- node shapes
    def _collect_shapes(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            shape = None
            if isinstance(node, ast.Call):
                if _last_segment(
                    qualified_name(node.func, self._imports)
                ) == "NodeSpec":
                    kwargs = self._literal_kwargs(node)
                    shape = (
                        kwargs.get("cpus", _DEFAULT_NODE[0]),
                        kwargs.get("gpus", _DEFAULT_NODE[1]),
                    )
            elif isinstance(node, ast.Name) and node.id == "SUMMIT_NODE":
                shape = _DEFAULT_NODE
            if shape is not None:
                scope = _scope_of(node)
                self._shapes.setdefault(id(scope), []).append(shape)

    def _ambient_shape(self, node: ast.AST) -> tuple[float, float] | None:
        """The unambiguous node shape governing ``node``'s scope, if any.

        The innermost scope holding any shape wins; several *different*
        shapes in that scope are ambiguous and disable the check.
        """
        scope = _scope_of(node)
        for candidate in (scope, self._module_scope):
            shapes = set(self._shapes.get(id(candidate), ()))
            if len(shapes) == 1:
                return next(iter(shapes))
            if len(shapes) > 1:
                return None
        return None

    @staticmethod
    def _literal_kwargs(node: ast.Call) -> dict[str, float]:
        out = {}
        for kw in node.keywords:
            value = literal_number(kw.value)
            if kw.arg is not None and value is not None:
                out[kw.arg] = value
        return out

    # ------------------------------------------------------------ the rules
    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        name = _last_segment(qualified_name(node.func, self._imports))
        if name == "TaskSpec":
            self._check_taskspec(node, ctx)
        elif name == "Stage":
            self._check_stage(node, ctx)
        elif name == "Pipeline":
            self._check_pipeline(node, ctx)

    def _check_taskspec(self, node: ast.Call, ctx: FileContext) -> None:
        kwargs = self._literal_kwargs(node)
        if kwargs.get("cpus") == 0 and kwargs.get("gpus", 0) == 0:
            self.report(
                ctx,
                node,
                "TaskSpec requests no slots (cpus=0, gpus=0); it can "
                "never be placed and raises at construction",
            )
        nodes = kwargs.get("nodes")
        if nodes is not None and nodes < 1:
            self.report(
                ctx, node, f"TaskSpec nodes={nodes:g} must be >= 1"
            )
        duration = kwargs.get("duration")
        if duration is not None and duration < 0:
            self.report(
                ctx,
                node,
                f"TaskSpec duration={duration:g} must be non-negative",
            )
        shape = self._ambient_shape(node)
        if shape is not None:
            cpus, gpus = kwargs.get("cpus"), kwargs.get("gpus")
            if cpus is not None and cpus > shape[0]:
                self.report(
                    ctx,
                    node,
                    f"per-node overcommit: TaskSpec requests {cpus:g} "
                    f"cpus/node but the NodeSpec in scope holds "
                    f"{shape[0]:g}; Pilot.validate_fits will reject this "
                    "at runtime",
                )
            if gpus is not None and gpus > shape[1]:
                self.report(
                    ctx,
                    node,
                    f"per-node overcommit: TaskSpec requests {gpus:g} "
                    f"gpus/node but the NodeSpec in scope holds "
                    f"{shape[1]:g}; Pilot.validate_fits will reject this "
                    "at runtime",
                )

    def _check_stage(self, node: ast.Call, ctx: FileContext) -> None:
        tasks = None
        if node.args:
            tasks = node.args[0]
        for kw in node.keywords:
            if kw.arg == "tasks":
                tasks = kw.value
        if isinstance(tasks, (ast.List, ast.Tuple)) and not tasks.elts:
            self.report(
                ctx,
                node,
                "zero-task stage: Stage(tasks=[]) raises at construction "
                "and can never open its barrier",
            )
        # record simple `name = Stage(...)` bindings for reachability
        parent = getattr(node, "_repro_parent", None)
        if (
            isinstance(parent, ast.Assign)
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
            and not parent.targets[0].id.startswith("_")
        ):
            self._stage_bindings.append(
                (parent.targets[0].id, parent, _scope_of(parent))
            )

    def _check_pipeline(self, node: ast.Call, ctx: FileContext) -> None:
        stages = None
        if node.args:
            stages = node.args[0]
        for kw in node.keywords:
            if kw.arg == "stages":
                stages = kw.value
        if isinstance(stages, (ast.List, ast.Tuple)) and not stages.elts:
            self.report(
                ctx,
                node,
                "empty pipeline: Pipeline(stages=[]) raises at "
                "construction",
            )

    def end_file(self, ctx: FileContext) -> None:
        """Unreachable stages: bound to a name that is never loaded."""
        for name, assign, scope in self._stage_bindings:
            loaded = any(
                isinstance(n, ast.Name)
                and n.id == name
                and isinstance(n.ctx, ast.Load)
                for n in ast.walk(scope)
            )
            if not loaded:
                self.report(
                    ctx,
                    assign,
                    f"unreachable stage: '{name}' is constructed but "
                    "never referenced, so it is never wired into a "
                    "pipeline or run",
                )
