"""lock-discipline: shared read-modify-writes on worker threads need a lock.

PR 1's ``run_raptor`` race is the archetype: a function submitted to a
thread pool did ``worker_busy[slot] += work`` on a closed-over array —
a read-modify-write that loses updates under concurrency.  This checker
statically rebuilds that pattern:

1. find functions handed to thread pools (``pool.submit``/``pool.map``/
   ``apply_async``…), ``threading.Thread(target=…)``, or the RAPTOR
   overlay (``run_raptor(items, fn)``);
2. close them over intra-file calls (a worker calling a helper runs the
   helper on the worker thread);
3. inside every thread-reachable function, flag augmented assignments
   (``+=`` and friends) whose target is subscript/attribute state rooted
   at a *non-local* name — closure or module globals shared across
   workers — unless the write is under a held lock (a ``with`` whose
   context names a lock/mutex/guard/semaphore) or the root is a
   thread-local accumulator (``tls…``/``…local…`` naming).

Plain element stores (``results[i] = value``) are deliberately not
flagged: distinct-slot writes from distinct workers are the idiomatic
lock-free pattern.  The rule targets read-modify-write, which is never
safe unguarded.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.astutil import (
    collect_imports,
    function_locals,
    iter_parents,
    qualified_name,
)
from repro.analysis.checkers.base import Checker
from repro.analysis.engine import FileContext

__all__ = ["LockDisciplineChecker"]

#: executor/pool methods whose callable argument runs on another thread
_SUBMIT_METHODS = frozenset(
    {"submit", "map", "apply_async", "starmap", "imap", "imap_unordered"}
)

#: callables whose argument runs on RAPTOR worker threads: name → index
#: of the positional argument that is the worker function
_WORKER_FUNCS = {"run_raptor": 1, "repro.rct.raptor.run_raptor": 1}

_THREAD_CTORS = frozenset({"threading.Thread", "Thread"})

_LOCK_NAME = re.compile(r"(lock|mutex|guard|sem)", re.IGNORECASE)
_THREAD_LOCAL_NAME = re.compile(r"(^|_)(tls|local)", re.IGNORECASE)

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


class LockDisciplineChecker(Checker):
    """Heuristic race detector for thread-submitted functions."""

    rule = "lock-discipline"
    description = (
        "augmented assignments to shared state inside thread-pool/RAPTOR "
        "worker functions must hold a lock or use thread-local storage"
    )

    def begin_file(self, ctx: FileContext) -> None:
        self._imports = collect_imports(ctx.tree)
        # every function definition in the file, by name (the heuristic
        # tolerates collisions: any same-named def is considered)
        self._defs: dict[str, list[ast.AST]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, _FunctionNode):
                self._defs.setdefault(node.name, []).append(node)
        self._root_names: set[str] = set()

    # ------------------------------------------------------ root collection
    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        """Collect names of functions handed to threads (pass 1)."""
        candidates: list[ast.AST] = []
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SUBMIT_METHODS
        ):
            if node.args:
                candidates.append(node.args[0])
        qname = qualified_name(node.func, self._imports)
        if qname in _THREAD_CTORS:
            for kw in node.keywords:
                if kw.arg == "target":
                    candidates.append(kw.value)
        if qname in _WORKER_FUNCS:
            index = _WORKER_FUNCS[qname]
            if len(node.args) > index:
                candidates.append(node.args[index])
            for kw in node.keywords:
                if kw.arg == "fn":
                    candidates.append(kw.value)
        for candidate in candidates:
            if isinstance(candidate, ast.Name):
                self._root_names.add(candidate.id)

    # --------------------------------------------------------- verification
    def end_file(self, ctx: FileContext) -> None:
        reachable = self._reachable_functions()
        seen: set[int] = set()
        for fn in reachable:
            for node in ast.walk(fn):
                if isinstance(node, ast.AugAssign) and id(node) not in seen:
                    seen.add(id(node))
                    self._check_aug(node, ctx)

    def _reachable_functions(self) -> list[ast.AST]:
        """Thread roots plus every in-file function they (transitively) call."""
        frontier = [
            fn for name in self._root_names for fn in self._defs.get(name, ())
        ]
        reachable: list[ast.AST] = []
        visited: set[int] = set()
        while frontier:
            fn = frontier.pop()
            if id(fn) in visited:
                continue
            visited.add(id(fn))
            reachable.append(fn)
            for node in ast.walk(fn):
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Name
                ):
                    frontier.extend(self._defs.get(node.func.id, ()))
        return reachable

    def _check_aug(self, node: ast.AugAssign, ctx: FileContext) -> None:
        root = self._target_root(node.target)
        if root is None:
            return
        containing = self._containing_function(node)
        if containing is None:
            return
        if isinstance(node.target, ast.Name):
            # `x += 1` races only when x is declared nonlocal/global
            declared_shared = any(
                isinstance(stmt, (ast.Nonlocal, ast.Global))
                and node.target.id in stmt.names
                for stmt in ast.walk(containing)
            )
            if not declared_shared:
                return
        elif root.id in function_locals(containing):
            return  # container created in this very call; not shared
        if _THREAD_LOCAL_NAME.search(root.id):
            return  # thread-local accumulator by naming convention
        if self._under_lock(node, containing):
            return
        op = type(node.op).__name__
        self.report(
            ctx,
            node,
            f"read-modify-write ({op}) on shared '{root.id}' inside "
            "thread-submitted code without a held lock; guard it with "
            "`with <lock>:` or accumulate into thread-local state and "
            "merge after the pool drains",
        )

    @staticmethod
    def _target_root(target: ast.AST) -> ast.Name | None:
        """Peel subscripts/attributes down to the root name, if any."""
        node = target
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        return node if isinstance(node, ast.Name) else None

    @staticmethod
    def _containing_function(node: ast.AST) -> ast.AST | None:
        for parent in iter_parents(node):
            if isinstance(parent, _FunctionNode):
                return parent
        return None

    def _under_lock(self, node: ast.AST, containing: ast.AST) -> bool:
        """Whether ``node`` sits inside a ``with <lock-like>`` in scope."""
        for parent in iter_parents(node):
            if isinstance(parent, (ast.With, ast.AsyncWith)):
                for item in parent.items:
                    if self._looks_like_lock(item.context_expr):
                        return True
            if parent is containing:
                break
        return False

    @staticmethod
    def _looks_like_lock(expr: ast.AST) -> bool:
        if isinstance(expr, ast.Call):
            expr = expr.func
        if isinstance(expr, ast.Attribute):
            return bool(_LOCK_NAME.search(expr.attr))
        if isinstance(expr, ast.Name):
            return bool(_LOCK_NAME.search(expr.id))
        return False
