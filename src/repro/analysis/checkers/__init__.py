"""Checker registry.

Every domain checker registers here; the engine instantiates the full
set fresh per file (checkers carry per-file state).  ``--rules`` on the
CLI selects a subset by rule name.
"""

from __future__ import annotations

from repro.analysis.checkers.base import Checker
from repro.analysis.checkers.clock import ClockPurityChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.locks import LockDisciplineChecker
from repro.analysis.checkers.telemetry import TelemetryDisciplineChecker
from repro.analysis.checkers.vectorization import VectorizationChecker
from repro.analysis.checkers.workflow import WorkflowShapeChecker

__all__ = [
    "Checker",
    "ClockPurityChecker",
    "DeterminismChecker",
    "LockDisciplineChecker",
    "TelemetryDisciplineChecker",
    "VectorizationChecker",
    "WorkflowShapeChecker",
    "CHECKER_CLASSES",
    "all_checkers",
    "checkers_for",
    "rule_names",
]

#: the full registry, in report order
CHECKER_CLASSES: tuple[type[Checker], ...] = (
    ClockPurityChecker,
    DeterminismChecker,
    LockDisciplineChecker,
    TelemetryDisciplineChecker,
    VectorizationChecker,
    WorkflowShapeChecker,
)


def rule_names() -> list[str]:
    """All registered rule names."""
    return [cls.rule for cls in CHECKER_CLASSES]


def all_checkers() -> list[Checker]:
    """Fresh instances of every registered checker."""
    return [cls() for cls in CHECKER_CLASSES]


def checkers_for(rules: list[str]) -> list[Checker]:
    """Fresh instances for the named rules (unknown names raise)."""
    by_rule = {cls.rule: cls for cls in CHECKER_CLASSES}
    unknown = [r for r in rules if r not in by_rule]
    if unknown:
        raise ValueError(
            f"unknown rules {unknown}; available: {sorted(by_rule)}"
        )
    return [by_rule[r]() for r in rules]
