"""vectorization: no elementwise Python loops over arrays in hot modules.

The repo's performance story (DESIGN.md "Conventions") is batch-native
NumPy kernels: docking scores whole GA populations per call, the MD
force loop is a dense pairwise evaluation.  An elementwise
``for i in range(n): arr[i]…`` loop in those packages is usually a
100–1000× slowdown hiding in plain sight.

The rule fires only inside configured ``hot-modules`` and only on
``for`` statements over ``range(...)``/``enumerate(...)`` whose body
indexes something with the loop variable — the signature of elementwise
traversal.  Genuinely sequential algorithms (recurrences, random walks
where step *i* needs step *i-1*) are the known false-positive class:
suppress them inline with a reason.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker
from repro.analysis.engine import FileContext

__all__ = ["VectorizationChecker"]


class VectorizationChecker(Checker):
    """Flag elementwise index loops in hot modules."""

    rule = "vectorization"
    description = (
        "elementwise Python for-loops indexing arrays in hot modules "
        "(docking/nn/md) should be vectorized"
    )
    severity = "warning"

    def begin_file(self, ctx: FileContext) -> None:
        self._hot = ctx.module_in(ctx.config.hot_modules)

    def visit_For(self, node: ast.For, ctx: FileContext) -> None:
        if not self._hot:
            return
        var = self._index_variable(node)
        if var is None:
            return
        offender = self._first_indexed_use(node, var)
        if offender is None:
            return
        self.report(
            ctx,
            node,
            f"elementwise loop: '{ast.unparse(offender)}' indexes with "
            f"loop variable '{var}'; vectorize over the array axis "
            "(ufuncs / fancy indexing) or suppress with a reason if the "
            "recurrence is genuinely sequential",
        )

    @staticmethod
    def _index_variable(node: ast.For) -> str | None:
        """The integer loop variable of a range/enumerate loop, if any."""
        if not (
            isinstance(node.iter, ast.Call)
            and isinstance(node.iter.func, ast.Name)
        ):
            return None
        fn = node.iter.func.id
        if fn == "range" and isinstance(node.target, ast.Name):
            return node.target.id
        if (
            fn == "enumerate"
            and isinstance(node.target, ast.Tuple)
            and node.target.elts
            and isinstance(node.target.elts[0], ast.Name)
        ):
            return node.target.elts[0].id
        return None

    @staticmethod
    def _first_indexed_use(node: ast.For, var: str) -> ast.Subscript | None:
        """First subscript in the loop body whose index uses ``var``.

        String-typed indexes (``state[f"p{i}"]``) are dict access, not
        elementwise array traversal, and are skipped.
        """
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Subscript):
                    continue
                if isinstance(sub.slice, ast.JoinedStr) or (
                    isinstance(sub.slice, ast.Constant)
                    and isinstance(sub.slice.value, str)
                ):
                    continue
                for part in ast.walk(sub.slice):
                    if isinstance(part, ast.Name) and part.id == var:
                        return sub
        return None
