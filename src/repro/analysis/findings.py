"""Finding: one rule violation at one source location.

Findings are plain data — checkers produce them, the engine filters
suppressed/disabled ones, reporters render the survivors.  Ordering is
by (path, line, column, rule) so output is stable across runs and the
JSON reporter can be diffed against a checked-in baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding", "SEVERITIES"]

#: ``error`` findings fail the build; ``warning`` findings fail it too
#: (a clean baseline is the contract) but signal advisory heuristics
#: whose fix may legitimately be an inline suppression with a reason.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation."""

    rule: str
    message: str
    path: str
    line: int
    col: int = 0
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )
        if self.line < 0 or self.col < 0:
            raise ValueError("line/col must be non-negative")

    @property
    def sort_key(self) -> tuple:
        """Stable ordering: location first, then rule."""
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line text rendering (``path:line:col: rule message``)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"[{self.rule}] {self.message}"
        )
