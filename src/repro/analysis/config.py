"""Lint configuration: the ``[tool.repro-lint]`` table in pyproject.toml.

The checked-in config *is* the baseline: module allowlists for rules
whose invariant only binds a subset of the tree (wall-clock use is legal
in real-execution modules, vectorization pressure only applies to hot
kernels).  Unknown keys are rejected so a typo cannot silently disable
a rule.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["AnalysisConfig", "ConfigError", "find_pyproject"]

#: table name inside pyproject.toml
_TABLE = "repro-lint"

#: recognized keys (dashed, as they appear in TOML) → attribute names
_KEYS = {
    "paths": "paths",
    "disable": "disable",
    "clock-allow": "clock_allow",
    "determinism-allow": "determinism_allow",
    "hot-modules": "hot_modules",
    "telemetry-modules": "telemetry_modules",
    "taint-sink-modules": "taint_sink_modules",
    "durable-modules": "durable_modules",
}


class ConfigError(ValueError):
    """Malformed ``[tool.repro-lint]`` table."""


@dataclass
class AnalysisConfig:
    """Engine + checker configuration.

    Attributes
    ----------
    paths:
        Directories (or files) linted when the CLI gets no positional
        arguments; relative to the pyproject's directory.
    disable:
        Rule names disabled globally (prefer inline suppressions —
        global disables turn a checker off for good).
    clock_allow:
        Module prefixes allowed to touch the wall clock
        (``time.time``/``time.sleep``/``datetime.now`` …).  Everything
        else is presumed simulation-facing and must advance the
        executor clock instead.
    determinism_allow:
        Module prefixes allowed to call global RNG entry points.
        Empty by default: all randomness flows through
        :mod:`repro.util.rng`.
    hot_modules:
        Module prefixes whose elementwise Python loops over ndarrays
        the vectorization rule flags.
    telemetry_modules:
        Instrumented module prefixes that must read time only through
        injected clock objects (the telemetry-discipline rule), so
        traced simulated runs stay byte-identical.
    taint_sink_modules:
        Hot-path module prefixes that values derived from unseeded RNG
        sources must never reach (the interprocedural rng-taint rule):
        campaign, docking, surrogate and streaming layers.
    durable_modules:
        Module prefixes whose file writes must follow the
        tmp+``os.replace`` idiom (the interprocedural atomic-write
        rule), including everything reachable from them.
    """

    paths: list[str] = field(default_factory=lambda: ["src"])
    disable: list[str] = field(default_factory=list)
    clock_allow: list[str] = field(default_factory=list)
    determinism_allow: list[str] = field(default_factory=list)
    hot_modules: list[str] = field(
        default_factory=lambda: ["repro.docking", "repro.nn", "repro.md"]
    )
    telemetry_modules: list[str] = field(
        default_factory=lambda: ["repro.rct", "repro.nn.graph", "repro.docking.batch"]
    )
    taint_sink_modules: list[str] = field(
        default_factory=lambda: [
            "repro.core",
            "repro.docking",
            "repro.nn",
            "repro.surrogate",
            "repro.md",
        ]
    )
    durable_modules: list[str] = field(
        default_factory=lambda: [
            "repro.util.checkpoint",
            "repro.util.shardio",
            "repro.nn.serialization",
        ]
    )
    root: Path = field(default_factory=Path.cwd)

    @classmethod
    def from_pyproject(cls, pyproject: Path) -> "AnalysisConfig":
        """Load the ``[tool.repro-lint]`` table (missing table = defaults)."""
        with open(pyproject, "rb") as fh:
            data = tomllib.load(fh)
        table = data.get("tool", {}).get(_TABLE, {})
        return cls.from_table(table, root=pyproject.parent)

    @classmethod
    def from_table(cls, table: dict, root: Path | None = None) -> "AnalysisConfig":
        """Build a config from an already-parsed TOML table."""
        unknown = set(table) - set(_KEYS)
        if unknown:
            raise ConfigError(
                f"unknown [tool.{_TABLE}] keys: {sorted(unknown)}; "
                f"recognized keys: {sorted(_KEYS)}"
            )
        kwargs: dict = {}
        for toml_key, attr in _KEYS.items():
            if toml_key not in table:
                continue
            value = table[toml_key]
            if not isinstance(value, list) or not all(
                isinstance(v, str) for v in value
            ):
                raise ConfigError(
                    f"[tool.{_TABLE}] {toml_key} must be a list of strings"
                )
            kwargs[attr] = list(value)
        if root is not None:
            kwargs["root"] = root
        return cls(**kwargs)


def find_pyproject(start: Path) -> Path | None:
    """Walk up from ``start`` to the first directory holding pyproject.toml."""
    here = start.resolve()
    if here.is_file():
        here = here.parent
    for candidate in (here, *here.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def module_matches(module: str, prefixes: list[str]) -> bool:
    """Whether a dotted module name falls under any allowlist prefix."""
    return any(
        module == p or module.startswith(p + ".") for p in prefixes
    )
