"""``repro-lint`` / ``python -m repro.analysis``: the lint front-end.

Exit status: 0 on a clean run, 1 when findings survive suppression,
2 on usage/config errors — so CI can gate on any finding not already in
the checked-in baseline (the suppressions and allowlists in
``pyproject.toml``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.checkers import (
    CHECKER_CLASSES,
    all_checkers,
    checkers_for,
)
from repro.analysis.config import AnalysisConfig, ConfigError, find_pyproject
from repro.analysis.engine import run_analysis
from repro.analysis.reporters import REPORTERS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based domain lint for the repro codebase: clock purity, "
            "determinism, lock discipline, vectorization pressure, and "
            "static workflow-shape validation."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the configured paths)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help=(
            "pyproject.toml holding [tool.repro-lint] "
            "(default: nearest one upward from the lint target)"
        ),
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--interprocedural",
        action="store_true",
        help=(
            "whole-program mode: build the project symbol table/call "
            "graph and run the interprocedural checkers (rng-taint, "
            "atomic-write, lockset) on top of the per-file rules"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print registered rules and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        from repro.analysis.interprocedural import PROJECT_CHECKER_CLASSES

        for cls in CHECKER_CLASSES:
            print(f"{cls.rule:18s} [{cls.severity:7s}] {cls.description}")
        for cls in PROJECT_CHECKER_CLASSES:
            print(
                f"{cls.rule:18s} [{cls.severity:7s}] "
                f"(interprocedural) {cls.description}"
            )
        return 0

    pyproject = args.config
    if pyproject is None:
        anchor = args.paths[0] if args.paths else Path.cwd()
        pyproject = find_pyproject(anchor)
    try:
        config = (
            AnalysisConfig.from_pyproject(pyproject)
            if pyproject is not None and pyproject.is_file()
            else AnalysisConfig()
        )
    except (ConfigError, OSError) as exc:
        print(f"repro-lint: config error: {exc}", file=sys.stderr)
        return 2

    paths = list(args.paths) or [config.root / p for p in config.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"repro-lint: no such path(s): {[str(p) for p in missing]}",
            file=sys.stderr,
        )
        return 2

    if args.rules is not None:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        try:
            checkers_for(rules)  # validate names before running
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
        factory = lambda: checkers_for(rules)  # noqa: E731 - tiny closure
    else:
        factory = all_checkers

    if args.interprocedural:
        from repro.analysis.interprocedural import run_interprocedural

        result = run_interprocedural(paths, config, checker_factory=factory)
    else:
        result = run_analysis(paths, config, checker_factory=factory)
    print(REPORTERS[args.format](result))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
