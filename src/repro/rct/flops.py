"""FLOP accounting — the Table 3 measurement methodology.

§7.2: "We measure flops … per work unit for the most relevant components
of each stage.  We define a work unit to be a representative code section
such as an MD time integration step for MD-based or a data sample for
DL-based applications.  Thus we can compute the aggregate invested flops
by scaling the measured flop counts to the respective work set sizes."

We do the same, except the counts are *analytic* over our kernels'
actual array shapes (the NumPy analogue of NSight Compute's counters):
every function documents the arithmetic it is counting.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    BatchNorm,
    Conv2d,
    Dense,
    GlobalAvgPool2d,
    MaxPool2d,
    Module,
    PointwiseDense,
    ResidualBlock,
    Sequential,
)

__all__ = [
    "md_step_flops",
    "docking_eval_flops",
    "model_forward_flops",
    "chamfer_flops",
    "aae_training_step_flops",
]


def md_step_flops(n_beads: int, n_bonds: int = 0) -> float:
    """FLOPs of one Langevin MD step on an ``n_beads`` system.

    The dense nonbonded kernel touches every ordered pair: distance
    (8 flops), LJ (6), Coulomb (3), hydrophobic incl. exp (≈12, counting
    exp as 8), force assembly (9) ≈ 38 flops/pair.  Bond terms ≈ 25
    flops each; the integrator adds ≈ 18 flops/bead (two kicks, two
    drifts, OU refresh).
    """
    if n_beads < 1:
        raise ValueError("n_beads must be >= 1")
    pair = 38.0 * n_beads * n_beads
    bonds = 25.0 * n_bonds
    integrate = 18.0 * n_beads
    return pair + bonds + integrate


def docking_eval_flops(n_atoms: int) -> float:
    """FLOPs of one pose evaluation in the docking engine.

    Per atom: pose transform (18), three trilinear interpolations with
    gradients (≈ 60 each), energy/force assembly (≈ 15) ≈ 213 flops.
    """
    if n_atoms < 1:
        raise ValueError("n_atoms must be >= 1")
    return 213.0 * n_atoms


def model_forward_flops(model: Module, input_shape: tuple[int, ...]) -> float:
    """FLOPs of one forward pass of a layer tree for a single example.

    Walks the module structure propagating the activation shape, using
    the standard multiply-accumulate = 2 flops convention.
    """
    flops, _ = _walk(model, tuple(input_shape))
    return flops


def _walk(module: Module, shape: tuple[int, ...]) -> tuple[float, tuple[int, ...]]:
    if isinstance(module, Sequential):
        total = 0.0
        for layer in module.layers:
            f, shape = _walk(layer, shape)
            total += f
        return total, shape
    if isinstance(module, ResidualBlock):
        body_f, out_shape = _walk(module.body, shape)
        proj_f = 0.0
        if module.projection is not None:
            proj_f, _ = _walk(module.projection, shape)
        add_relu = 2.0 * float(np.prod(out_shape))
        return body_f + proj_f + add_relu, out_shape
    if isinstance(module, Dense):
        in_f, out_f = module.weight.shape
        lead = float(np.prod(shape[:-1])) if len(shape) > 1 else 1.0
        return lead * (2.0 * in_f * out_f + out_f), shape[:-1] + (out_f,)
    if isinstance(module, PointwiseDense):
        in_f, out_f = module.weight.shape
        lead = float(np.prod(shape[:-1]))
        return lead * (2.0 * in_f * out_f + out_f), shape[:-1] + (out_f,)
    if isinstance(module, Conv2d):
        c, h, w = shape
        k, s, p = module.kernel, module.stride, module.padding
        oh = (h + 2 * p - k) // s + 1
        ow = (w + 2 * p - k) // s + 1
        out_c = module.weight.shape[0]
        macs = out_c * oh * ow * c * k * k
        return 2.0 * macs, (out_c, oh, ow)
    if isinstance(module, MaxPool2d):
        c, h, w = shape
        k = module.kernel
        return float(c * h * w), (c, h // k, w // k)
    if isinstance(module, GlobalAvgPool2d):
        c, h, w = shape
        return float(c * h * w), (c,)
    if isinstance(module, BatchNorm):
        return 2.0 * float(np.prod(shape)), shape
    # activations and shape-only layers: ~1 flop per element
    return float(np.prod(shape)), shape


def chamfer_flops(n_points: int) -> float:
    """FLOPs of one Chamfer-distance evaluation between two clouds:
    the (n, n) pairwise-distance matrix dominates at ≈ 8 flops/pair."""
    return 8.0 * n_points * n_points


def aae_training_step_flops(aae, n_points: int) -> float:
    """FLOPs of one AAE example step: forward+backward (≈3× forward) of
    encoder/decoder, the Chamfer loss, and one critic round.

    ``aae`` is a :class:`repro.ddmd.aae.AAE` (duck-typed to avoid a
    package cycle): the encoder splits into a per-point MLP and a dense
    head around the max-pool, which is how the shapes are propagated.
    """
    cfg = aae.config
    enc = model_forward_flops(aae.encoder.point_mlp, (n_points, 3))
    enc += model_forward_flops(aae.encoder.head, (2 * cfg.hidden,))
    dec = model_forward_flops(aae.decoder.net, (cfg.latent_dim,))
    crit = model_forward_flops(aae.critic.net, (cfg.latent_dim,))
    return 3.0 * (enc + dec + 2.0 * crit) + chamfer_flops(n_points)
