"""EnTK analogue: the PST (Pipeline, Stage, Task) programming model.

§5.2.1 verbatim semantics:

* tasks in the same **stage** have no mutual ordering and run with
  whatever concurrency resources allow;
* **stages** within a pipeline run strictly in order (a stage is a
  barrier);
* **pipelines** run concurrently and asynchronously — "each pipeline can
  progress at its own pace".

:class:`AppManager` executes a set of pipelines over one pilot, keeping
every pipeline's frontier stage eligible simultaneously — the property
Fig 7's integrated (S3-CG)-(S2)-(S3-FG) run depends on.  Stages may also
carry ``on_complete`` callbacks so adaptive workflows can generate their
next stage from upstream results at runtime (the paper's "selects
parameters at runtime").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.rct.pilot import Pilot
from repro.rct.task import TaskRecord, TaskSpec, TaskState

__all__ = ["Stage", "Pipeline", "AppManager"]


@dataclass
class Stage:
    """A barrier-delimited group of concurrent tasks."""

    tasks: list[TaskSpec]
    name: str = ""
    on_complete: Callable[[list[TaskRecord]], None] | None = None

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("stage must contain at least one task")


@dataclass
class Pipeline:
    """An ordered sequence of stages.

    ``stage_generator`` (optional) is consulted when the static stage
    list is exhausted: it receives the records of the just-finished
    stage and may return a new Stage (adaptive continuation) or ``None``
    to finish the pipeline.
    """

    stages: list[Stage]
    name: str = ""
    stage_generator: Callable[[list[TaskRecord]], Stage | None] | None = None

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("pipeline must contain at least one stage")


@dataclass
class _PipelineState:
    pipeline: Pipeline
    stage_index: int = 0
    outstanding: set[int] = field(default_factory=set)  # task uids in flight
    stage_records: list[TaskRecord] = field(default_factory=list)
    done: bool = False


class AppManager:
    """Execute pipelines concurrently on a pilot."""

    def __init__(self, pilot: Pilot) -> None:
        self.pilot = pilot

    def run(self, pipelines: list[Pipeline]) -> dict[str, list[TaskRecord]]:
        """Run all pipelines to completion.

        Returns records grouped by pipeline name, in completion order.
        Failure semantics follow the pilot's retry/propagation policies:
        retried attempts keep their stage barrier closed until the task
        finally resolves; under ``drop_and_continue`` a permanently failed
        task appears in the results with ``state == TaskState.FAILED``
        (and in ``pilot.failures``) and its stage proceeds without it;
        under ``fail_fast`` the run raises
        :class:`~repro.rct.fault.TaskFailedError`.
        """
        if not pipelines:
            raise ValueError("no pipelines to run")
        names = [p.name or f"pipeline-{i}" for i, p in enumerate(pipelines)]
        if len(set(names)) != len(names):
            raise ValueError(f"pipeline names must be unique, got {names}")
        states = [_PipelineState(pipeline=p) for p in pipelines]
        results: dict[str, list[TaskRecord]] = {n: [] for n in names}
        task_owner: dict[int, int] = {}  # task uid → pipeline index
        pending: list[TaskSpec] = []

        def launch_stage(idx: int) -> None:
            state = states[idx]
            stage = state.pipeline.stages[state.stage_index]
            state.stage_records = []
            for task in stage.tasks:
                self.pilot.validate_fits(task)
                task_owner[task.uid] = idx
                state.outstanding.add(task.uid)
                pending.append(task)

        for i in range(len(states)):
            launch_stage(i)

        while pending or self.pilot.n_running or self.pilot.n_waiting_retry:
            remaining = self.pilot.submit_ready(pending)
            pending.clear()
            pending.extend(remaining)
            if self.pilot.n_running == 0:
                if self.pilot.n_waiting_retry:
                    # all in-flight work is failed tasks waiting out their
                    # backoff; idle the clock to the earliest retry
                    self.pilot.advance_to_next_retry()
                    continue
                raise RuntimeError(
                    "deadlock: pipelines blocked but nothing is running"
                )
            record = self.pilot.wait_one()
            if record.state is TaskState.RETRYING:
                # the attempt was re-queued: the task stays outstanding,
                # its stage barrier stays closed
                continue
            idx = task_owner[record.spec.uid]
            state = states[idx]
            state.outstanding.discard(record.spec.uid)
            state.stage_records.append(record)
            results[names[idx]].append(record)

            if not state.outstanding and not state.done:
                # the pipeline's frontier stage completed: fire the
                # callback, then advance (or consult the generator)
                stage = state.pipeline.stages[state.stage_index]
                if stage.on_complete is not None:
                    stage.on_complete(state.stage_records)
                state.stage_index += 1
                if state.stage_index >= len(state.pipeline.stages):
                    generated = None
                    if state.pipeline.stage_generator is not None:
                        generated = state.pipeline.stage_generator(
                            state.stage_records
                        )
                    if generated is not None:
                        state.pipeline.stages.append(generated)
                        launch_stage(idx)
                    else:
                        state.done = True
                else:
                    launch_stage(idx)
        return results
