"""Resource-utilization tracking — the data behind Fig 7.

Every task start/end event updates per-stage busy-slot counters; the
tracker reconstructs the utilization time series ("A time-series of node
utilization … the integrated execution of three GPU-intensive
workflows") and quantifies the scheduling overhead (the light-coloured
vertical gaps the paper shows are invariant to scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["UtilizationTracker", "UtilizationSeries"]


@dataclass
class UtilizationSeries:
    """Step-function utilization over time, per stage and total."""

    times: np.ndarray  # (E,) event times
    busy_gpus: np.ndarray  # (E,) total busy GPU slots after each event
    per_stage: dict[str, np.ndarray]  # stage → (E,) busy gpu slots
    total_gpus: int

    def average_utilization(self) -> float:
        """Time-weighted mean busy fraction over the series span."""
        if len(self.times) < 2 or self.total_gpus == 0:
            return 0.0
        dt = np.diff(self.times)
        if dt.sum() == 0:
            return 0.0
        return float((self.busy_gpus[:-1] * dt).sum() / (dt.sum() * self.total_gpus))

    def ascii_plot(self, width: int = 70, height: int = 12) -> str:
        """Terminal rendering of total utilization vs time."""
        if len(self.times) < 2:
            return "(no utilization data)"
        t0, t1 = self.times[0], self.times[-1]
        grid = np.linspace(t0, t1, width)
        levels = np.interp(grid, self.times, self.busy_gpus)
        frac = levels / max(self.total_gpus, 1)
        lines = []
        for row in range(height, 0, -1):
            threshold = row / height
            lines.append(
                f"{threshold:4.0%} |"
                + "".join("#" if f >= threshold else " " for f in frac)
            )
        lines.append("     +" + "-" * width)
        lines.append(f"      t={t0:.0f}s{' ' * (width - 18)}t={t1:.0f}s")
        return "\n".join(lines)


@dataclass
class UtilizationTracker:
    """Accumulates start/end events during a pilot run."""

    total_gpus: int
    total_cpus: int
    _events: list[tuple[float, int, int, str]] = field(default_factory=list)
    # each event: (time, gpu_delta, cpu_delta, stage)
    _backoffs: list[tuple[float, float, str]] = field(default_factory=list)
    # each backoff: (time, seconds, stage)

    @classmethod
    def from_trace(
        cls, tracer, total_gpus: int, total_cpus: int, tenant: str | None = None
    ) -> "UtilizationTracker":
        """Rebuild the tracker from a telemetry trace (Fig 7 as a view).

        ``pilot.task`` spans contribute a start (+slots) and end
        (-slots) event; still-open spans contribute only their start.
        ``pilot.backoff`` spans carry the exact policy-drawn ``seconds``
        attribute, so backoff totals reconcile with the retry policy
        without float round-off.  Events are replayed in tracer sequence
        order — program order — reproducing exactly the event list the
        pilot used to record inline.

        With ``tenant`` set, only spans carrying that tenant attribute
        contribute — the per-tenant utilization view of a shared pilot
        (``total_gpus``/``total_cpus`` stay the whole pilot's capacity,
        so the average reads as *share of the machine*).
        """
        tracker = cls(total_gpus=total_gpus, total_cpus=total_cpus)
        events: list[tuple[int, float, int, int, str]] = []
        backoffs: list[tuple[int, float, float, str]] = []
        spans = list(tracer.finished) + tracer.active_spans()
        for span in spans:
            if tenant is not None and span.attrs.get("tenant") != tenant:
                continue
            if span.category == "pilot.task":
                gpus = int(span.attrs.get("gpus", 0))
                cpus = int(span.attrs.get("cpus", 0))
                stage = span.attrs.get("stage", "")
                events.append((span.seq_start, span.start, gpus, cpus, stage))
                if span.end is not None:
                    events.append((span.seq_end, span.end, -gpus, -cpus, stage))
            elif span.category == "pilot.backoff":
                backoffs.append(
                    (
                        span.seq_start,
                        span.start,
                        float(span.attrs.get("seconds", span.end - span.start)),
                        span.attrs.get("stage", ""),
                    )
                )
        events.sort(key=lambda e: e[0])
        backoffs.sort(key=lambda b: b[0])
        tracker._events = [(t, dg, dc, s) for _, t, dg, dc, s in events]
        tracker._backoffs = [(t, sec, s) for _, t, sec, s in backoffs]
        return tracker

    def record_start(self, time: float, gpus: int, cpus: int, stage: str) -> None:
        """Log a task start (slots become busy)."""
        self._events.append((time, gpus, cpus, stage))

    def record_end(self, time: float, gpus: int, cpus: int, stage: str) -> None:
        """Log a task end (slots free up)."""
        self._events.append((time, -gpus, -cpus, stage))

    def record_backoff(self, time: float, seconds: float, stage: str) -> None:
        """Log retry backoff (slots idle while a failed task waits)."""
        self._backoffs.append((time, seconds, stage))

    @property
    def backoff_seconds(self) -> float:
        """Total clock seconds charged to retry backoff."""
        return sum(b[1] for b in self._backoffs)

    def backoff_by_stage(self) -> dict[str, float]:
        """Backoff seconds aggregated per stage label."""
        out: dict[str, float] = {}
        for _, seconds, stage in self._backoffs:
            key = stage or "(unlabelled)"
            out[key] = out.get(key, 0.0) + seconds
        return out

    @property
    def n_events(self) -> int:
        """Number of recorded start/end events."""
        return len(self._events)

    def series(self) -> UtilizationSeries:
        """Materialize the utilization time series."""
        if not self._events:
            return UtilizationSeries(
                times=np.zeros(0),
                busy_gpus=np.zeros(0),
                per_stage={},
                total_gpus=self.total_gpus,
            )
        events = sorted(self._events, key=lambda e: e[0])
        stages = sorted({e[3] for e in events})
        times = []
        totals = []
        per_stage = {s: [] for s in stages}
        busy = 0
        stage_busy = {s: 0 for s in stages}
        for t, dg, _dc, stage in events:
            busy += dg
            stage_busy[stage] += dg
            times.append(t)
            totals.append(busy)
            for s in stages:
                per_stage[s].append(stage_busy[s])
        return UtilizationSeries(
            times=np.array(times),
            busy_gpus=np.array(totals),
            per_stage={s: np.array(v) for s, v in per_stage.items()},
            total_gpus=self.total_gpus,
        )

    def overhead_fraction(self, launch_overhead: float, n_tasks: int) -> float:
        """Fraction of the makespan spent in per-task launch overhead.

        With overhead charged per task and tasks running concurrently,
        this stays flat as the node count grows — the Fig 7 claim the
        scaling bench checks.
        """
        s = self.series()
        if len(s.times) < 2:
            return 0.0
        span = s.times[-1] - s.times[0]
        if span <= 0:
            return 0.0
        # overheads overlap across concurrent tasks; estimate the serial
        # exposure as overhead per scheduling "wave"
        concurrency = max(1.0, s.busy_gpus.max() / max(1, self.total_gpus) * n_tasks)
        waves = max(1.0, n_tasks / concurrency)
        return float(min(1.0, waves * launch_overhead / span))
