"""Thread-pool execution backend.

Real execution on a thread pool; time comes from the injected clock
(default :class:`~repro.util.timer.WallClock`; tests and deterministic
traces may substitute any object with ``now()`` and ``sleep(seconds)``).

With a per-attempt ``timeout``, an attempt still running at the
deadline is *abandoned*: marked failed and reported immediately, while
the worker thread is left to finish and its late result discarded
(Python threads cannot be killed; RADICAL-Pilot likewise reaps by
deadline).  Delivery is claim-once (see
:mod:`repro.rct.backends.pool`), so a worker completing just as the
timer fires can neither double-count in the busy ledger nor attach its
result to the already-published FAILED record.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.rct.backends.base import register_backend
from repro.rct.backends.pool import PoolBackend
from repro.rct.task import TaskRecord, TaskState
from repro.util.timer import WallClock

__all__ = ["ThreadExecutor"]


@register_backend("thread")
class ThreadExecutor(PoolBackend):
    """Real execution on a thread pool (I/O-ish and small payloads)."""

    def __init__(self, max_workers: int = 8, clock: WallClock | None = None) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        super().__init__(clock)
        self._pool = ThreadPoolExecutor(max_workers=max_workers)

    def start(self, record: TaskRecord, timeout: float | None = None) -> None:
        """Begin executing a placed task on a worker thread."""
        if record.spec.fn is None:
            raise ValueError(
                f"task {record.spec.name} has no fn; ThreadExecutor needs one"
            )
        delivery = self._begin(record)

        def runner() -> None:
            try:
                result = record.spec.fn(*record.spec.args, **record.spec.kwargs)
            except Exception as exc:  # noqa: BLE001 - task isolation
                if not delivery.deliver(
                    TaskState.FAILED, f"{type(exc).__name__}: {exc}", False
                ):
                    delivery.finished_late()
            else:
                if not delivery.deliver(TaskState.DONE, None, False, result):
                    # abandoned at the timeout: the result is discarded
                    # here, never attached to the published record
                    delivery.finished_late()

        if timeout is not None:
            self._arm_timeout(
                delivery,
                timeout,
                lambda: delivery.deliver(
                    TaskState.FAILED,
                    f"timeout after {timeout}s (attempt {record.attempt})",
                    True,
                ),
            )
        try:
            self._pool.submit(runner)
        except BaseException:  # pool already shut down: caller misuse
            delivery.abort()
            raise

    def shutdown(self) -> None:
        """Stop the worker pool.

        Waits for in-flight tasks — unless some were abandoned at a
        timeout, in which case waiting would block on threads already
        declared dead; those are left to drain on their own.
        """
        self._pool.shutdown(wait=self.n_abandoned == 0)
