"""Shared machinery for real (pool-based) execution backends.

Thread and process backends differ only in *where* the payload runs;
the bookkeeping around it is identical and subtle enough to keep in one
place:

* **claim-once delivery** — every attempt gets a :class:`_Delivery`
  token; exactly one of {worker completion, timeout} wins the claim and
  publishes the record.  The loser calls :meth:`_Delivery.finished_late`
  to settle the abandon ledger.  Crucially, the task's *result* is only
  attached inside a winning claim: a worker that loses the race to a
  timeout can never mutate a record the caller already owns (the
  pre-refactor thread backend read its ``delivered`` flag and then
  assigned ``record.result`` outside the claim — a timeout landing in
  that window left a FAILED record carrying a live result).
* **abandon accounting** — ``_abandoned`` counts attempts whose worker
  is still burning after a timeout delivery; it drains as those workers
  finish and gates how aggressively :meth:`shutdown` may wait.
* **injected clock** — time comes from any object with ``now()`` and
  ``sleep(seconds)``; deterministic tests substitute logical clocks.
"""

from __future__ import annotations

import queue
import threading

from repro.rct.task import TaskRecord, TaskState
from repro.util.timer import WallClock

__all__ = ["PoolBackend"]


class _Delivery:
    """Claim-once publication token for one execution attempt."""

    __slots__ = ("_backend", "_record", "_claimed", "timer")

    def __init__(self, backend: "PoolBackend", record: TaskRecord) -> None:
        self._backend = backend
        self._record = record
        self._claimed = False
        self.timer: threading.Timer | None = None

    def deliver(
        self,
        state: TaskState,
        error: str | None,
        timed_out: bool,
        result=None,
    ) -> bool:
        """Publish the attempt's outcome; ``False`` if already claimed."""
        backend = self._backend
        with backend._lock:
            if self._claimed:
                return False
            self._claimed = True
            backend._running -= 1
            if timed_out:
                backend._abandoned += 1
        if self.timer is not None:
            self.timer.cancel()
        record = self._record
        # only the claim winner reaches this point, so the record is
        # mutated exactly once and is immutable the moment it is queued
        record.result = result
        record.end_time = backend.now
        record.state = state
        record.error = error
        record.timed_out = timed_out
        backend._done.put(record)
        return True

    def finished_late(self) -> None:
        """An abandoned worker drained; settle the abandon ledger."""
        with self._backend._lock:
            self._backend._abandoned -= 1

    def abort(self) -> None:
        """Unwind a begun attempt that never reached its pool.

        Claims the token and rolls back the running count without
        publishing a record — the caller is about to re-raise the
        submit-time error, so a queued completion would be a phantom.
        """
        with self._backend._lock:
            if self._claimed:
                return
            self._claimed = True
            self._backend._running -= 1
        if self.timer is not None:
            self.timer.cancel()


class PoolBackend:
    """Base class: delivery queue, abandon ledger, clock plumbing."""

    def __init__(self, clock: WallClock | None = None) -> None:
        self._done: queue.Queue[TaskRecord] = queue.Queue()
        self._running = 0
        self._abandoned = 0
        self._lock = threading.Lock()
        self._clock = clock if clock is not None else WallClock()

    # ------------------------------------------------------------ the clock
    @property
    def now(self) -> float:
        """Current time in seconds."""
        return self._clock.now()

    def wait_until(self, t: float) -> None:
        """Sleep the clock forward to ``t`` (retry backoff).

        Past targets are a no-op: a real clock cannot rewind, and by the
        time the caller computed ``t`` it may already have elapsed.
        """
        delta = t - self.now
        if delta > 0:
            self._clock.sleep(delta)

    # ---------------------------------------------------------- bookkeeping
    @property
    def n_running(self) -> int:
        """Number of tasks currently executing."""
        with self._lock:
            return self._running

    @property
    def n_abandoned(self) -> int:
        """Timed-out attempts whose worker has not drained yet."""
        with self._lock:
            return self._abandoned

    def _begin(self, record: TaskRecord) -> _Delivery:
        """Mark an attempt running and hand out its delivery token."""
        record.state = TaskState.RUNNING
        record.start_time = self.now
        with self._lock:
            self._running += 1
        return _Delivery(self, record)

    def _arm_timeout(
        self, delivery: _Delivery, timeout: float, on_timeout
    ) -> None:
        """Start the abandon timer; ``on_timeout()`` runs at the deadline."""
        timer = threading.Timer(timeout, on_timeout)
        timer.daemon = True
        delivery.timer = timer
        timer.start()

    def next_completion(self) -> TaskRecord:
        """Block until a running task finishes; return it."""
        return self._done.get()

    # ------------------------------------------------------------- lifetime
    def shutdown(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def __enter__(self):
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
