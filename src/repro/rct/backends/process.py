"""Process-pool execution backend: CPU-bound scaling past the GIL.

A docking shard is pure Python + NumPy arithmetic; on the thread
backend, N workers contend for one interpreter lock and CPU-bound
throughput flatlines.  This backend runs task functions in worker
*processes* (one interpreter each), which is how the real campaign
shape — many independent, CPU-hungry function calls — actually scales
on a multicore node.

Constraints inherited from pickling across the process boundary:

* ``spec.fn``, ``args``, ``kwargs`` and the return value must be
  picklable (module-level functions, not lambdas/closures);
* the task function cannot mutate caller state — only its return value
  crosses back.

Per-attempt timeouts use **abandon-and-reap**: at the deadline the
attempt is delivered as a timeout failure immediately.  A queued
attempt is cancelled outright; a running one is left executing with its
eventual result discarded, and :meth:`ProcessExecutor.shutdown`
*reaps* — terminates — worker processes still burning on abandoned
attempts, so a hung payload cannot wedge interpreter exit.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor

from repro.rct.backends.base import register_backend
from repro.rct.backends.pool import PoolBackend
from repro.rct.task import TaskRecord, TaskState
from repro.util.timer import WallClock

__all__ = ["ProcessExecutor"]


@register_backend("process")
class ProcessExecutor(PoolBackend):
    """Real execution on a process pool (CPU-bound payloads)."""

    def __init__(
        self,
        max_workers: int | None = None,
        clock: WallClock | None = None,
        mp_context=None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        super().__init__(clock)
        self._pool = ProcessPoolExecutor(
            max_workers=max_workers, mp_context=mp_context
        )

    def start(self, record: TaskRecord, timeout: float | None = None) -> None:
        """Begin executing a placed task in a worker process."""
        if record.spec.fn is None:
            raise ValueError(
                f"task {record.spec.name} has no fn; ProcessExecutor needs one"
            )
        delivery = self._begin(record)
        try:
            future = self._pool.submit(
                record.spec.fn, *record.spec.args, **record.spec.kwargs
            )
        except BaseException:  # pool already shut down: caller misuse,
            # fail loudly (a *broken* pool surfaces through the future
            # and is delivered as a FAILED record instead)
            delivery.abort()
            raise

        def on_done(fut: Future) -> None:
            if fut.cancelled():
                # reaped before it ever started; the reaper settled the
                # abandon ledger when the cancel succeeded
                return
            try:
                result = fut.result()
            except BaseException as exc:  # noqa: BLE001 - task isolation
                # (unpicklable payloads and pool breakage land here too)
                if not delivery.deliver(
                    TaskState.FAILED, f"{type(exc).__name__}: {exc}", False
                ):
                    delivery.finished_late()
            else:
                if not delivery.deliver(TaskState.DONE, None, False, result):
                    delivery.finished_late()

        def on_timeout() -> None:
            if delivery.deliver(
                TaskState.FAILED,
                f"timeout after {timeout}s (attempt {record.attempt})",
                True,
            ):
                if future.cancel():
                    # never started: no worker will drain it later
                    delivery.finished_late()

        if timeout is not None:
            self._arm_timeout(delivery, timeout, on_timeout)
        future.add_done_callback(on_done)

    def shutdown(self) -> None:
        """Stop the pool; reap workers still burning abandoned attempts.

        With no abandoned attempts this waits for in-flight work like
        the thread backend.  With abandoned attempts, queued work is
        cancelled and the worker processes are terminated — unlike
        threads, processes *can* be reaped, so a hung task costs one
        worker restart rather than a wedged interpreter exit.
        """
        if self.n_abandoned == 0:
            self._pool.shutdown(wait=True)
            return
        self._pool.shutdown(wait=False, cancel_futures=True)
        workers = getattr(self._pool, "_processes", None) or {}
        for proc in list(workers.values()):
            proc.terminate()
