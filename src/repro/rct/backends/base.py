"""Executor backend protocol and registry.

Every execution backend — simulated clock, thread pool, process pool,
or anything a user registers — drives the same protocol the pilot's
scheduling loop (and the backend conformance suite) exercises:

* ``start(record, timeout=None)`` — begin executing a placed task,
* ``next_completion()`` — block (real backends) or advance virtual time
  (simulated) until some running task finishes, and return its record,
* ``wait_until(t)`` — idle the clock forward (retry backoff),
* ``now`` / ``n_running`` — the backend's clock and in-flight count,
* ``shutdown()`` + context-manager entry/exit — release pool resources.

Keeping the protocol identical means the scheduler, utilization tracker
and every workflow layer above run unchanged on any backend — the
design move that lets one codebase both *really run* the science tasks
(threads for I/O-ish payloads, processes for CPU-bound docking shards
that must scale past the GIL) and *simulate* Summit-scale campaigns.

The registry makes backends pluggable: a new backend is one
:func:`register_backend` call, after which ``create_executor(name)``
builds it and the conformance suite in
``tests/rct/test_backend_contract.py`` picks it up automatically.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.rct.task import TaskRecord

__all__ = [
    "ExecutorBackend",
    "register_backend",
    "get_backend",
    "create_executor",
    "available_backends",
]


@runtime_checkable
class ExecutorBackend(Protocol):
    """Structural protocol every execution backend satisfies."""

    @property
    def now(self) -> float:
        """Current time in clock seconds (virtual or wall)."""
        ...

    @property
    def n_running(self) -> int:
        """Number of tasks currently executing."""
        ...

    def start(self, record: TaskRecord, timeout: float | None = None) -> None:
        """Begin executing a placed task."""
        ...

    def next_completion(self) -> TaskRecord:
        """Block/advance until a running task finishes; return it."""
        ...

    def wait_until(self, t: float) -> None:
        """Idle the clock forward to ``t`` (retry backoff)."""
        ...

    def shutdown(self) -> None:
        """Release pool resources (if any)."""
        ...


_REGISTRY: dict[str, type] = {}


def register_backend(name: str):
    """Class decorator registering an executor backend under ``name``.

    The class gains a ``backend_name`` attribute; re-registering a taken
    name is an error (replace deliberately via ``_REGISTRY`` in tests).
    """

    def deco(cls: type) -> type:
        if name in _REGISTRY:
            raise ValueError(f"backend {name!r} is already registered")
        cls.backend_name = name
        _REGISTRY[name] = cls
        return cls

    return deco


def get_backend(name: str) -> type:
    """The registered backend class for ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def create_executor(name: str, **kwargs) -> ExecutorBackend:
    """Instantiate the backend registered under ``name``."""
    return get_backend(name)(**kwargs)


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)
