"""Discrete-event simulated execution backend.

Tasks take ``spec.duration`` virtual seconds plus a fixed per-task
launch overhead (the paper's Fig 7 shows overheads "invariant to
scale" — a constant per task models exactly that).  With a
``fault_model``, each attempt may instead crash partway, straggle, or
hang — deterministically per (task uid, attempt).

This backend is itself a measured hot path (``benchmarks/
perf_scheduler.py`` tracks simulated events/sec): a Summit-scale
campaign pushes ~10⁶ starts and completions through the event heap, so
``start_batch`` amortizes heap maintenance over whole scheduling passes
and the virtual clock enforces monotonicity — a backwards ``now`` would
silently violate the heap's ordering invariant and corrupt every
downstream timestamp.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Iterable

from repro.rct.backends.base import register_backend
from repro.rct.fault import FaultModel
from repro.rct.task import TaskRecord, TaskState

__all__ = ["SimExecutor"]


@register_backend("sim")
class SimExecutor:
    """Discrete-event simulated execution over a virtual clock."""

    def __init__(
        self,
        launch_overhead: float = 0.5,
        fault_model: FaultModel | None = None,
    ) -> None:
        if launch_overhead < 0:
            raise ValueError("launch_overhead must be non-negative")
        self.launch_overhead = launch_overhead
        self.fault_model = fault_model
        self._now = 0.0
        # heap entries: (end, seq, record, final_state, error, timed_out)
        self._heap: list[tuple[float, int, TaskRecord, TaskState, str | None, bool]] = []
        self._seq = itertools.count()

    # ------------------------------------------------------------ the clock
    @property
    def now(self) -> float:
        """Current virtual time in seconds (monotone non-decreasing)."""
        return self._now

    @now.setter
    def now(self, t: float) -> None:
        if t < self._now:
            raise ValueError(
                f"virtual time cannot move backwards: now={self._now}, "
                f"requested {t}; the event heap is ordered by absolute end "
                "times and a rewind would corrupt it"
            )
        self._now = t

    def wait_until(self, t: float) -> None:
        """Idle the virtual clock forward to ``t`` (retry backoff).

        Rejects backwards targets: a caller asking to wait until the
        past indicates a scheduling bug (stale retry-eligibility time),
        and silently clamping used to hide it.
        """
        if t < self._now:
            raise ValueError(
                f"wait_until({t}) is in the past (now={self._now}); "
                "virtual time only moves forward"
            )
        self._now = t

    # ------------------------------------------------------------- execution
    def _entry(
        self, record: TaskRecord, timeout: float | None
    ) -> tuple[float, int, TaskRecord, TaskState, str | None, bool]:
        """Resolve one attempt's fate into a heap entry (fault draw included)."""
        if record.spec.duration is None:
            raise ValueError(
                f"task {record.spec.name} has no duration; SimExecutor "
                "needs one (use a real backend for fn-only tasks)"
            )
        record.state = TaskState.RUNNING
        record.start_time = self._now
        busy = record.spec.duration
        final_state = TaskState.DONE
        error: str | None = None
        timed_out = False
        if self.fault_model is not None:
            outcome = self.fault_model.draw(record.spec.uid, record.attempt, busy)
            busy = outcome.busy
            if outcome.failed:
                final_state = TaskState.FAILED
                error = f"injected {outcome.kind} (attempt {record.attempt})"
        if timeout is not None and busy > timeout:
            busy = timeout
            final_state = TaskState.FAILED
            error = f"timeout after {timeout}s (attempt {record.attempt})"
            timed_out = True
        end = self._now + self.launch_overhead + busy
        return (end, next(self._seq), record, final_state, error, timed_out)

    def start(self, record: TaskRecord, timeout: float | None = None) -> None:
        """Begin executing a placed task (fault draw decides its fate)."""
        heapq.heappush(self._heap, self._entry(record, timeout))

    def start_batch(
        self, records: Iterable[TaskRecord], timeout: float | None = None
    ) -> None:
        """Begin a whole scheduling pass of tasks in one heap operation.

        Completion order is identical to sequential :meth:`start` calls —
        the heap pops by ``(end, seq)`` and sequence numbers are assigned
        in iteration order — but a large batch pays one O(n) ``heapify``
        instead of n O(log n) sift-ups.  Small batches fall back to
        pushes so a steady-state trickle never pays heapify's O(heap).
        """
        entries = [self._entry(r, timeout) for r in records]
        if len(entries) > max(8, len(self._heap) // 4):
            self._heap.extend(entries)
            heapq.heapify(self._heap)
        else:
            for entry in entries:
                heapq.heappush(self._heap, entry)

    @property
    def n_running(self) -> int:
        """Number of tasks currently executing."""
        return len(self._heap)

    def next_completion(self) -> TaskRecord:
        """Advance virtual time until a running task finishes; return it."""
        if not self._heap:
            raise RuntimeError("no running tasks")
        end, _, record, state, error, timed_out = heapq.heappop(self._heap)
        if math.isinf(end):
            raise RuntimeError(
                f"task {record.spec.name} hung and no timeout is set; "
                "give the retry policy a per-task timeout"
            )
        self._now = end
        record.end_time = end
        record.state = state
        record.error = error
        record.timed_out = timed_out
        if state is TaskState.DONE and record.spec.fn is not None:
            # simulated runs may still carry a payload result stub
            record.result = None
        return record

    # ------------------------------------------------------------- lifetime
    def shutdown(self) -> None:
        """No pool to release; symmetric with the real backends."""

    def __enter__(self) -> "SimExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
