"""Pluggable execution backends for the pilot's scheduling loop.

One protocol, N backends (the runtime-characterization shape of the
RAPTOR and task-runtime papers): ``sim`` simulates Summit-scale
campaigns on a virtual clock, ``thread`` runs real payloads on a thread
pool, ``process`` scales CPU-bound payloads past the GIL on a process
pool.  ``create_executor(name, **kwargs)`` builds any registered
backend; the conformance suite in ``tests/rct/test_backend_contract.py``
runs the full protocol against every registry entry, so a new backend
is a :func:`register_backend` call plus a green run.
"""

from repro.rct.backends.base import (
    ExecutorBackend,
    available_backends,
    create_executor,
    get_backend,
    register_backend,
)
from repro.rct.backends.process import ProcessExecutor
from repro.rct.backends.sim import SimExecutor
from repro.rct.backends.thread import ThreadExecutor

__all__ = [
    "ExecutorBackend",
    "ProcessExecutor",
    "SimExecutor",
    "ThreadExecutor",
    "available_backends",
    "create_executor",
    "get_backend",
    "register_backend",
]
