"""Fault model, retry policy and failure accounting for the workflow stack.

At leadership scale task failures are routine: the paper's EnTK/RP layers
"isolate the execution of each task" precisely so a crashed docking run or
a hung MD replica cannot sink a campaign.  This module makes failure a
first-class, *testable* part of the execution model:

* :class:`FaultModel` — seeded, per-(task, attempt) fault injection for the
  simulated backend: crash probability, straggler slowdowns, and hangs.
  Deterministic under a root seed, so thousand-node campaigns can be
  simulated under realistic failure rates and replayed bit-identically.
* :class:`RetryPolicy` — max retries, exponential backoff with jitter
  (charged on whichever clock the executor runs), and a per-task timeout
  that cancels/abandons hung tasks.
* :class:`FailureSummary` — the reconciliation ledger: every observed
  failure is either retried or dropped, never silently lost.  Attached to
  pilot, RAPTOR and campaign results.
* :class:`TaskFailedError` — raised by ``fail_fast`` propagation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.util.config import FrozenConfig, validate_range
from repro.util.rng import rng_stream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (task → fault)
    from repro.rct.task import TaskRecord

__all__ = [
    "FaultModel",
    "FaultOutcome",
    "FailureSummary",
    "RetryPolicy",
    "TaskFailedError",
]

#: propagation policies understood by the pilot and campaign layers
FAILURE_POLICIES = ("fail_fast", "drop_and_continue")


class TaskFailedError(RuntimeError):
    """A task exhausted its retries under ``fail_fast`` propagation."""

    def __init__(self, message: str, record: "TaskRecord | None" = None) -> None:
        super().__init__(message)
        self.record = record


@dataclass(frozen=True)
class FaultOutcome:
    """One fault draw: what happens to a single execution attempt.

    ``busy`` is the time the attempt occupies its slots: the full task
    duration for clean/straggler runs, a partial duration for crashes,
    ``inf`` for hangs (bounded later by the retry policy's timeout).
    """

    kind: str  # "ok" | "fail" | "straggle" | "hang"
    busy: float

    @property
    def failed(self) -> bool:
        """Whether the attempt ends in failure (before timeout handling)."""
        return self.kind in ("fail", "hang")


@dataclass(frozen=True)
class FaultModel(FrozenConfig):
    """Seeded per-attempt fault injection for :class:`~repro.rct.executor.SimExecutor`.

    Each execution attempt of each task draws independently from a stream
    keyed on ``(seed, task uid, attempt)`` — so a retried task re-rolls the
    dice, and adding tasks never perturbs other tasks' draws.

    Attributes
    ----------
    failure_rate:
        Probability an attempt crashes partway through (uniformly drawn
        fraction of its duration is still charged to the slots it held).
    straggler_rate / straggler_factor:
        Probability an attempt runs ``straggler_factor`` times slower but
        still succeeds — the long-tail stragglers of production runs.
    hang_rate:
        Probability an attempt never completes on its own.  Hung tasks
        require a :class:`RetryPolicy` timeout to be reaped.
    """

    failure_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_factor: float = 4.0
    hang_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        validate_range("failure_rate", self.failure_rate, 0.0, 1.0)
        validate_range("straggler_rate", self.straggler_rate, 0.0, 1.0)
        validate_range("hang_rate", self.hang_rate, 0.0, 1.0)
        total = self.failure_rate + self.straggler_rate + self.hang_rate
        if total > 1.0:
            raise ValueError(f"fault rates sum to {total}, must be <= 1")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")

    def draw(self, uid: int, attempt: int, duration: float) -> FaultOutcome:
        """Decide the fate of one execution attempt (deterministic)."""
        rng = rng_stream(self.seed, f"fault/{uid}/{attempt}")
        u = float(rng.random())
        if u < self.failure_rate:
            return FaultOutcome(kind="fail", busy=duration * float(rng.random()))
        u -= self.failure_rate
        if u < self.hang_rate:
            return FaultOutcome(kind="hang", busy=math.inf)
        u -= self.hang_rate
        if u < self.straggler_rate:
            return FaultOutcome(kind="straggle", busy=duration * self.straggler_factor)
        return FaultOutcome(kind="ok", busy=duration)


@dataclass(frozen=True)
class RetryPolicy(FrozenConfig):
    """How failed attempts are re-driven.

    Attributes
    ----------
    max_retries:
        Re-submissions allowed per task after its first attempt
        (0 disables retrying).
    backoff_base / backoff_factor / backoff_jitter:
        Attempt ``k``'s backoff is ``base * factor**k``, inflated by a
        deterministic jitter drawn uniformly from ``[0, jitter]`` (a
        fraction) to de-synchronize retry storms.  Charged on the
        executor's virtual clock by the simulated backend; the thread
        backend charges it to the failure ledger
        (``time_lost_backoff``) without sleeping, so backoff never
        stalls a pool slot.
    timeout:
        Per-attempt ceiling in clock seconds.  An attempt still running at
        the deadline is cancelled (simulated backend) or abandoned (thread
        backend: the worker thread is left to finish, its result
        discarded) and counted as a failure.
    """

    max_retries: int = 3
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.1
    timeout: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        validate_range("backoff_jitter", self.backoff_jitter, 0.0, 1.0)
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")

    def should_retry(self, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (0-based) may be re-driven."""
        return attempt < self.max_retries

    def backoff(self, uid: int, attempt: int) -> float:
        """Backoff seconds before re-submitting after failed ``attempt``."""
        base = self.backoff_base * self.backoff_factor**attempt
        if base == 0.0:
            return 0.0
        jitter = float(rng_stream(self.seed, f"backoff/{uid}/{attempt}").random())
        return base * (1.0 + self.backoff_jitter * jitter)


@dataclass
class FailureSummary:
    """The failure ledger: counts, retry histogram, and time lost.

    The reconciliation invariant — checked by :meth:`reconciles` and the
    fault-tolerance bench — is that every observed failure was either
    retried or dropped: ``n_failures == n_retries + n_dropped``.  Nothing
    is silently lost.
    """

    n_failures: int = 0  # failed attempts observed (injected, real, or timeout)
    n_retries: int = 0  # re-submissions issued
    n_dropped: int = 0  # tasks permanently failed (retries exhausted/disabled)
    n_timeouts: int = 0  # failures that were timeout cancellations
    retry_histogram: dict[int, int] = field(default_factory=dict)
    # ^ attempts-used → number of tasks that *succeeded* on that attempt
    dropped_by_stage: dict[str, int] = field(default_factory=dict)
    time_lost_failures: float = 0.0  # clock seconds burned by failed attempts
    time_lost_backoff: float = 0.0  # clock seconds spent waiting to retry

    # ------------------------------------------------------------ recording
    def record_failure(self, wall_time: float, timed_out: bool = False) -> None:
        """Log one failed attempt and the slot time it burned."""
        self.n_failures += 1
        if timed_out:
            self.n_timeouts += 1
        if math.isfinite(wall_time):
            self.time_lost_failures += wall_time

    def record_retry(self, backoff: float) -> None:
        """Log one re-submission and its backoff charge."""
        self.n_retries += 1
        self.time_lost_backoff += backoff

    def record_drop(self, stage: str = "") -> None:
        """Log one permanently failed task."""
        self.n_dropped += 1
        key = stage or "(unlabelled)"
        self.dropped_by_stage[key] = self.dropped_by_stage.get(key, 0) + 1

    def record_success(self, attempt: int) -> None:
        """Log a task completing on its ``attempt``-th try (0-based)."""
        self.retry_histogram[attempt] = self.retry_histogram.get(attempt, 0) + 1

    # ----------------------------------------------------------- inspection
    @property
    def time_lost(self) -> float:
        """Total clock seconds lost to failures and backoff."""
        return self.time_lost_failures + self.time_lost_backoff

    def reconciles(self) -> bool:
        """Every failure accounted for: retried or dropped."""
        return self.n_failures == self.n_retries + self.n_dropped

    def merge(self, other: "FailureSummary") -> None:
        """Fold another ledger into this one (campaign aggregation)."""
        self.n_failures += other.n_failures
        self.n_retries += other.n_retries
        self.n_dropped += other.n_dropped
        self.n_timeouts += other.n_timeouts
        self.time_lost_failures += other.time_lost_failures
        self.time_lost_backoff += other.time_lost_backoff
        for k, v in other.retry_histogram.items():
            self.retry_histogram[k] = self.retry_histogram.get(k, 0) + v
        for k, v in other.dropped_by_stage.items():
            self.dropped_by_stage[k] = self.dropped_by_stage.get(k, 0) + v

    def summary(self) -> str:
        """One-line human rendering."""
        hist = ", ".join(
            f"attempt {a}: {n}" for a, n in sorted(self.retry_histogram.items())
        )
        return (
            f"failures={self.n_failures} (timeouts={self.n_timeouts}) "
            f"retries={self.n_retries} dropped={self.n_dropped} "
            f"time_lost={self.time_lost:.1f}s [{hist}]"
        )
