"""Workflow infrastructure — the RADICAL-Cybertools role.

EnTK-style PST programming model, a pilot-job system over a simulated
cluster (with a real thread backend for small runs), the RAPTOR
master/worker overlay, utilization tracking (Fig 7) and FLOP accounting
(Table 3).
"""

from repro.rct.backends import (
    ExecutorBackend,
    ProcessExecutor,
    SimExecutor,
    ThreadExecutor,
    available_backends,
    create_executor,
    register_backend,
)
from repro.rct.cluster import SUMMIT_NODE, Allocation, BatchSystem, Cluster, NodeSpec
from repro.rct.entk import AppManager, Pipeline, Stage
from repro.rct.fault import (
    FailureSummary,
    FaultModel,
    FaultOutcome,
    RetryPolicy,
    TaskFailedError,
)
from repro.rct.flops import (
    aae_training_step_flops,
    chamfer_flops,
    docking_eval_flops,
    md_step_flops,
    model_forward_flops,
)
from repro.rct.pilot import Pilot, Placement
from repro.rct.raptor import RaptorConfig, RaptorResult, run_raptor, simulate_raptor
from repro.rct.sched import PLACEMENT_POLICIES, make_placer
from repro.rct.task import TaskRecord, TaskSpec, TaskState
from repro.rct.tasklog import TaskLog
from repro.rct.utilization import UtilizationSeries, UtilizationTracker

__all__ = [
    "Allocation",
    "AppManager",
    "BatchSystem",
    "Cluster",
    "ExecutorBackend",
    "FailureSummary",
    "FaultModel",
    "FaultOutcome",
    "NodeSpec",
    "PLACEMENT_POLICIES",
    "Pilot",
    "ProcessExecutor",
    "RetryPolicy",
    "TaskFailedError",
    "Pipeline",
    "Placement",
    "RaptorConfig",
    "RaptorResult",
    "SUMMIT_NODE",
    "SimExecutor",
    "Stage",
    "TaskLog",
    "TaskRecord",
    "TaskSpec",
    "TaskState",
    "ThreadExecutor",
    "UtilizationSeries",
    "UtilizationTracker",
    "available_backends",
    "create_executor",
    "make_placer",
    "register_backend",
    "aae_training_step_flops",
    "chamfer_flops",
    "docking_eval_flops",
    "md_step_flops",
    "model_forward_flops",
    "run_raptor",
    "simulate_raptor",
]
