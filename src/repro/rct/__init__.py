"""Workflow infrastructure — the RADICAL-Cybertools role.

EnTK-style PST programming model, a pilot-job system over a simulated
cluster (with a real thread backend for small runs), the RAPTOR
master/worker overlay, utilization tracking (Fig 7) and FLOP accounting
(Table 3).
"""

from repro.rct.cluster import SUMMIT_NODE, Allocation, BatchSystem, Cluster, NodeSpec
from repro.rct.entk import AppManager, Pipeline, Stage
from repro.rct.executor import SimExecutor, ThreadExecutor
from repro.rct.fault import (
    FailureSummary,
    FaultModel,
    FaultOutcome,
    RetryPolicy,
    TaskFailedError,
)
from repro.rct.flops import (
    aae_training_step_flops,
    chamfer_flops,
    docking_eval_flops,
    md_step_flops,
    model_forward_flops,
)
from repro.rct.pilot import Pilot, Placement
from repro.rct.raptor import RaptorConfig, RaptorResult, run_raptor, simulate_raptor
from repro.rct.task import TaskRecord, TaskSpec, TaskState
from repro.rct.utilization import UtilizationSeries, UtilizationTracker

__all__ = [
    "Allocation",
    "AppManager",
    "BatchSystem",
    "Cluster",
    "FailureSummary",
    "FaultModel",
    "FaultOutcome",
    "NodeSpec",
    "Pilot",
    "RetryPolicy",
    "TaskFailedError",
    "Pipeline",
    "Placement",
    "RaptorConfig",
    "RaptorResult",
    "SUMMIT_NODE",
    "SimExecutor",
    "Stage",
    "TaskRecord",
    "TaskSpec",
    "TaskState",
    "ThreadExecutor",
    "UtilizationSeries",
    "UtilizationTracker",
    "aae_training_step_flops",
    "chamfer_flops",
    "docking_eval_flops",
    "md_step_flops",
    "model_forward_flops",
    "run_raptor",
    "simulate_raptor",
]
