"""Task model for the workflow infrastructure.

A *task* is the paper's unit of execution (§5.2.1): "a stand-alone
process that has well-defined input, output, termination criteria, and
dedicated resources" — anything from a single-GPU OpenMM run to a
multi-node MPI docking sweep.  :class:`TaskSpec` captures the resource
request plus either a real Python callable (thread backend) or a duration
(simulated backend); :class:`TaskRecord` tracks one execution.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["TaskSpec", "TaskRecord", "TaskState", "reset_uid_counter"]

_task_counter = itertools.count()


def reset_uid_counter(start: int = 0) -> None:
    """Restart :class:`TaskSpec` uid assignment from ``start``.

    Fault draws are keyed on ``(seed, uid, attempt)``, so a run is only
    reproducible within a process if its tasks get the same uids each
    time.  Deterministic demos call this before building their workload;
    uids stay unique within any single pilot built afterwards.
    """
    global _task_counter
    _task_counter = itertools.count(start)


class TaskState(enum.Enum):
    """Lifecycle states of a task."""
    NEW = "new"
    SCHEDULED = "scheduled"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    #: a failed attempt was re-queued by the retry policy; the scheduling
    #: loops treat such records as in-flight, not final
    RETRYING = "retrying"


@dataclass
class TaskSpec:
    """Resource request + payload for one task.

    Exactly one of ``fn`` (real execution) or ``duration`` (simulated
    execution) drives the run; specifying both is allowed (the thread
    backend runs ``fn``, the simulated backend charges ``duration``).

    Attributes
    ----------
    cpus / gpus:
        Slots required per node.
    nodes:
        Node count (> 1 models MPI tasks that span nodes).
    duration:
        Simulated wall seconds (per task, regardless of node count).
    fn / args / kwargs:
        Callable payload for real execution.
    stage:
        Label used for utilization plots and accounting (e.g. "S3-CG").
    tenant:
        Owner label when many logical campaigns share one pilot (the
        multi-tenant service); empty for single-campaign runs.  Carried
        onto the task's telemetry span so per-tenant utilization and
        accounting stay pure views over the trace.
    """

    name: str = ""
    cpus: int = 1
    gpus: int = 0
    nodes: int = 1
    duration: float | None = None
    fn: Callable | None = None
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    stage: str = ""
    tenant: str = ""
    uid: int = field(default_factory=lambda: next(_task_counter))

    def __post_init__(self) -> None:
        if self.cpus < 0 or self.gpus < 0:
            raise ValueError("cpus/gpus must be non-negative")
        if self.cpus == 0 and self.gpus == 0:
            raise ValueError("task must request at least one cpu or gpu")
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.duration is None and self.fn is None:
            raise ValueError("task needs a duration (sim) or fn (real)")
        if self.duration is not None and self.duration < 0:
            raise ValueError("duration must be non-negative")
        if not self.name:
            self.name = f"task-{self.uid}"


@dataclass
class TaskRecord:
    """Execution record of one task."""

    spec: TaskSpec
    state: TaskState = TaskState.NEW
    start_time: float | None = None
    end_time: float | None = None
    result: Any = None
    error: str | None = None
    node_ids: list[int] = field(default_factory=list)
    attempt: int = 0  # 0-based execution attempt (> 0 after retries)
    timed_out: bool = False

    @property
    def wall_time(self) -> float:
        """Elapsed seconds from start to end (0 if unfinished)."""
        if self.start_time is None or self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    def node_seconds(self, gpus_per_node: int = 6, cpus_per_node: int = 42) -> float:
        """Node-seconds consumed: whole nodes for multi-node tasks,
        the occupied node fraction for sub-node tasks."""
        if not self.wall_time:
            return 0.0
        if self.spec.nodes > 1:
            return self.wall_time * self.spec.nodes
        fraction = max(
            self.spec.gpus / gpus_per_node if gpus_per_node else 0.0,
            self.spec.cpus / cpus_per_node if cpus_per_node else 0.0,
        )
        return self.wall_time * fraction
