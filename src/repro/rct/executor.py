"""Execution backends — compatibility façade over :mod:`repro.rct.backends`.

Historically this module *was* the two hard-coded backends; they now
live in the pluggable backend registry (``repro.rct.backends``), where
Sim and Thread are two of N and a process-pool backend scales CPU-bound
work past the GIL.  Everything importable from here before the
refactor still is — the pilot, tests, and downstream code keep working
unchanged — and the registry entry points are re-exported for
convenience.

The protocol all backends implement (see
:class:`~repro.rct.backends.base.ExecutorBackend`):

* ``start(record, timeout=None)`` — begin executing a placed task,
* ``next_completion()`` — block (real) or advance virtual time (sim)
  until some running task finishes, and return its record,
* ``wait_until(t)`` — idle the clock forward (retry backoff),
* ``shutdown()`` / context-manager entry+exit — release pool resources.

Failure is part of the protocol on every backend: the simulated backend
injects crashes/stragglers/hangs from a seeded
:class:`~repro.rct.fault.FaultModel`; the real backends capture
exceptions.  Either way a per-attempt ``timeout`` cancels (sim) or
abandons (thread/process) attempts that run past it, so hung tasks
cannot wedge the pilot.
"""

from __future__ import annotations

from repro.rct.backends import (
    ExecutorBackend,
    ProcessExecutor,
    SimExecutor,
    ThreadExecutor,
    available_backends,
    create_executor,
    get_backend,
    register_backend,
)

__all__ = [
    "ExecutorBackend",
    "ProcessExecutor",
    "SimExecutor",
    "ThreadExecutor",
    "available_backends",
    "create_executor",
    "get_backend",
    "register_backend",
]
