"""Execution backends: simulated clock and real thread pool.

Both backends implement the same two-call protocol the pilot's
scheduling loop drives:

* ``start(record)`` — begin executing a placed task,
* ``next_completion()`` — block (thread) or advance virtual time (sim)
  until some running task finishes, and return its record.

Keeping the protocol identical means the scheduler, utilization tracker
and every workflow layer above run unchanged on either backend — the
design move that lets one codebase both *really run* the science tasks
and *simulate* thousand-node campaigns (Fig 7, scaling benches).
"""

from __future__ import annotations

import heapq
import itertools
import queue
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.rct.task import TaskRecord, TaskState

__all__ = ["SimExecutor", "ThreadExecutor"]


class SimExecutor:
    """Discrete-event simulated execution.

    Tasks take ``spec.duration`` virtual seconds plus a fixed per-task
    launch overhead (the paper's Fig 7 shows overheads "invariant to
    scale" — a constant per task models exactly that).
    """

    def __init__(self, launch_overhead: float = 0.5) -> None:
        if launch_overhead < 0:
            raise ValueError("launch_overhead must be non-negative")
        self.launch_overhead = launch_overhead
        self.now = 0.0
        self._heap: list[tuple[float, int, TaskRecord]] = []
        self._seq = itertools.count()

    def start(self, record: TaskRecord) -> None:
        """Begin executing a placed task."""
        if record.spec.duration is None:
            raise ValueError(
                f"task {record.spec.name} has no duration; SimExecutor "
                "needs one (use ThreadExecutor for fn-only tasks)"
            )
        record.state = TaskState.RUNNING
        record.start_time = self.now
        end = self.now + self.launch_overhead + record.spec.duration
        heapq.heappush(self._heap, (end, next(self._seq), record))

    @property
    def n_running(self) -> int:
        """Number of tasks currently executing."""
        return len(self._heap)

    def next_completion(self) -> TaskRecord:
        """Block/advance until a running task finishes; return it."""
        if not self._heap:
            raise RuntimeError("no running tasks")
        end, _, record = heapq.heappop(self._heap)
        self.now = end
        record.end_time = end
        record.state = TaskState.DONE
        if record.spec.fn is not None:
            # simulated runs may still carry a payload result stub
            record.result = None
        return record


class ThreadExecutor:
    """Real execution on a thread pool; time is the wall clock."""

    def __init__(self, max_workers: int = 8) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._pool = ThreadPoolExecutor(max_workers=max_workers)
        self._done: queue.Queue[TaskRecord] = queue.Queue()
        self._running = 0
        self._lock = threading.Lock()
        import time

        self._clock = time.perf_counter

    @property
    def now(self) -> float:
        """Current time in seconds."""
        return self._clock()

    @property
    def n_running(self) -> int:
        """Number of tasks currently executing."""
        with self._lock:
            return self._running

    def start(self, record: TaskRecord) -> None:
        """Begin executing a placed task."""
        if record.spec.fn is None:
            raise ValueError(
                f"task {record.spec.name} has no fn; ThreadExecutor needs one"
            )
        record.state = TaskState.RUNNING
        record.start_time = self.now
        with self._lock:
            self._running += 1

        def runner() -> None:
            try:
                record.result = record.spec.fn(*record.spec.args, **record.spec.kwargs)
                record.state = TaskState.DONE
            except Exception as exc:  # noqa: BLE001 - task isolation
                record.error = f"{type(exc).__name__}: {exc}"
                record.state = TaskState.FAILED
            finally:
                record.end_time = self.now
                with self._lock:
                    self._running -= 1
                self._done.put(record)

        self._pool.submit(runner)

    def next_completion(self) -> TaskRecord:
        """Block/advance until a running task finishes; return it."""
        return self._done.get()

    def shutdown(self) -> None:
        """Stop the worker pool (waits for in-flight tasks)."""
        self._pool.shutdown(wait=True)
