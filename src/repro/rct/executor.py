"""Execution backends: simulated clock and real thread pool.

Both backends implement the same protocol the pilot's scheduling loop
drives:

* ``start(record, timeout=None)`` — begin executing a placed task,
* ``next_completion()`` — block (thread) or advance virtual time (sim)
  until some running task finishes, and return its record,
* ``wait_until(t)`` — idle the clock forward (retry backoff),
* ``shutdown()`` / context-manager entry+exit — release pool resources.

Keeping the protocol identical means the scheduler, utilization tracker
and every workflow layer above run unchanged on either backend — the
design move that lets one codebase both *really run* the science tasks
and *simulate* thousand-node campaigns (Fig 7, scaling benches).

Failure is part of the protocol on both backends: the simulated backend
injects crashes/stragglers/hangs from a seeded :class:`~repro.rct.fault.FaultModel`;
the thread backend captures real exceptions.  Either way a per-attempt
``timeout`` cancels (sim) or abandons (thread) attempts that run past it,
so hung tasks cannot wedge the pilot.
"""

from __future__ import annotations

import heapq
import itertools
import math
import queue
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.rct.fault import FaultModel
from repro.rct.task import TaskRecord, TaskState
from repro.util.timer import WallClock

__all__ = ["SimExecutor", "ThreadExecutor"]


class SimExecutor:
    """Discrete-event simulated execution.

    Tasks take ``spec.duration`` virtual seconds plus a fixed per-task
    launch overhead (the paper's Fig 7 shows overheads "invariant to
    scale" — a constant per task models exactly that).  With a
    ``fault_model``, each attempt may instead crash partway, straggle, or
    hang — deterministically per (task uid, attempt).
    """

    def __init__(
        self,
        launch_overhead: float = 0.5,
        fault_model: FaultModel | None = None,
    ) -> None:
        if launch_overhead < 0:
            raise ValueError("launch_overhead must be non-negative")
        self.launch_overhead = launch_overhead
        self.fault_model = fault_model
        self.now = 0.0
        # heap entries: (end, seq, record, final_state, error, timed_out)
        self._heap: list[tuple[float, int, TaskRecord, TaskState, str | None, bool]] = []
        self._seq = itertools.count()

    def start(self, record: TaskRecord, timeout: float | None = None) -> None:
        """Begin executing a placed task (fault draw decides its fate)."""
        if record.spec.duration is None:
            raise ValueError(
                f"task {record.spec.name} has no duration; SimExecutor "
                "needs one (use ThreadExecutor for fn-only tasks)"
            )
        record.state = TaskState.RUNNING
        record.start_time = self.now
        busy = record.spec.duration
        final_state = TaskState.DONE
        error: str | None = None
        timed_out = False
        if self.fault_model is not None:
            outcome = self.fault_model.draw(record.spec.uid, record.attempt, busy)
            busy = outcome.busy
            if outcome.failed:
                final_state = TaskState.FAILED
                error = f"injected {outcome.kind} (attempt {record.attempt})"
        if timeout is not None and busy > timeout:
            busy = timeout
            final_state = TaskState.FAILED
            error = f"timeout after {timeout}s (attempt {record.attempt})"
            timed_out = True
        end = self.now + self.launch_overhead + busy
        heapq.heappush(
            self._heap, (end, next(self._seq), record, final_state, error, timed_out)
        )

    @property
    def n_running(self) -> int:
        """Number of tasks currently executing."""
        return len(self._heap)

    def next_completion(self) -> TaskRecord:
        """Block/advance until a running task finishes; return it."""
        if not self._heap:
            raise RuntimeError("no running tasks")
        end, _, record, state, error, timed_out = heapq.heappop(self._heap)
        if math.isinf(end):
            raise RuntimeError(
                f"task {record.spec.name} hung and no timeout is set; "
                "give the retry policy a per-task timeout"
            )
        self.now = end
        record.end_time = end
        record.state = state
        record.error = error
        record.timed_out = timed_out
        if state is TaskState.DONE and record.spec.fn is not None:
            # simulated runs may still carry a payload result stub
            record.result = None
        return record

    def wait_until(self, t: float) -> None:
        """Idle the virtual clock forward to ``t`` (retry backoff)."""
        self.now = max(self.now, t)

    def shutdown(self) -> None:
        """No pool to release; symmetric with :class:`ThreadExecutor`."""

    def __enter__(self) -> "SimExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()


class ThreadExecutor:
    """Real execution on a thread pool; time comes from the injected clock.

    The default clock is :class:`~repro.util.timer.WallClock`; tests and
    deterministic traces may substitute any object with ``now()`` and
    ``sleep(seconds)`` methods.
    """

    def __init__(self, max_workers: int = 8, clock: WallClock | None = None) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._pool = ThreadPoolExecutor(max_workers=max_workers)
        self._done: queue.Queue[TaskRecord] = queue.Queue()
        self._running = 0
        self._abandoned = 0
        self._lock = threading.Lock()
        self._clock = clock if clock is not None else WallClock()

    @property
    def now(self) -> float:
        """Current time in seconds."""
        return self._clock.now()

    @property
    def n_running(self) -> int:
        """Number of tasks currently executing."""
        with self._lock:
            return self._running

    def start(self, record: TaskRecord, timeout: float | None = None) -> None:
        """Begin executing a placed task.

        With a ``timeout``, an attempt still running at the deadline is
        *abandoned*: marked failed and reported immediately, while the
        worker thread is left to finish and its late result discarded
        (Python threads cannot be killed; RP likewise reaps by deadline).
        """
        if record.spec.fn is None:
            raise ValueError(
                f"task {record.spec.name} has no fn; ThreadExecutor needs one"
            )
        record.state = TaskState.RUNNING
        record.start_time = self.now
        with self._lock:
            self._running += 1
        delivered = False
        timer: threading.Timer | None = None

        def deliver(state: TaskState, error: str | None, timed_out: bool) -> bool:
            nonlocal delivered
            with self._lock:
                if delivered:
                    return False
                delivered = True
                self._running -= 1
                if timed_out:
                    self._abandoned += 1
            if timer is not None:
                timer.cancel()
            record.end_time = self.now
            record.state = state
            record.error = error
            record.timed_out = timed_out
            self._done.put(record)
            return True

        def finished_late() -> None:
            # an abandoned thread just drained; shutdown need not dodge it
            with self._lock:
                self._abandoned -= 1

        def runner() -> None:
            try:
                result = record.spec.fn(*record.spec.args, **record.spec.kwargs)
            except Exception as exc:  # noqa: BLE001 - task isolation
                if not deliver(TaskState.FAILED, f"{type(exc).__name__}: {exc}", False):
                    finished_late()
            else:
                with self._lock:
                    abandoned = delivered
                if not abandoned:
                    record.result = result
                if not deliver(TaskState.DONE, None, False):
                    finished_late()

        if timeout is not None:
            timer = threading.Timer(
                timeout,
                lambda: deliver(
                    TaskState.FAILED,
                    f"timeout after {timeout}s (attempt {record.attempt})",
                    True,
                ),
            )
            timer.daemon = True
            timer.start()
        self._pool.submit(runner)

    def next_completion(self) -> TaskRecord:
        """Block/advance until a running task finishes; return it."""
        return self._done.get()

    def wait_until(self, t: float) -> None:
        """Sleep the wall clock forward to ``t`` (retry backoff)."""
        delta = t - self.now
        if delta > 0:
            self._clock.sleep(delta)

    def shutdown(self) -> None:
        """Stop the worker pool.

        Waits for in-flight tasks — unless some were abandoned at a
        timeout, in which case waiting would block on threads already
        declared dead; those are left to drain on their own.
        """
        with self._lock:
            abandoned = self._abandoned
        self._pool.shutdown(wait=abandoned == 0)

    def __enter__(self) -> "ThreadExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
