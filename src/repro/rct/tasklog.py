"""Array-of-records task bookkeeping for Summit-scale campaigns.

A 10⁶-attempt campaign cannot afford one :class:`~repro.rct.task.TaskRecord`
object (plus spec, plus span) held live per attempt just to answer
"what ran, where, when".  :class:`TaskLog` stores one completed attempt
as a row across typed columnar arrays (``array.array`` — O(1) append,
buffer-protocol views for free NumPy math), so the memory cost per
attempt is a few dozen bytes and aggregate accounting (node-hours,
state counts) is a vectorized reduction instead of a Python loop.

The log doubles as the determinism witness: :meth:`TaskLog.digest` is a
sha256 over every column — uid, attempt, start/end times, final state,
timeout flag, resource shape, and the exact node ids of the placement.
Two runs with the same seed/backend/policy must produce byte-identical
digests; ``benchmarks/perf_scheduler.py`` compares the digest of the
optimized scheduler against the reference scan, which makes "identical
placements and timings" an O(1)-memory check at any campaign size.
"""

from __future__ import annotations

import hashlib
from array import array

import numpy as np

from repro.rct.task import TaskRecord, TaskState

__all__ = ["TaskLog"]

#: stable wire codes for the digest (enum order could change; these can't)
_STATE_CODES = {
    TaskState.NEW: 0,
    TaskState.SCHEDULED: 1,
    TaskState.RUNNING: 2,
    TaskState.DONE: 3,
    TaskState.FAILED: 4,
    TaskState.RETRYING: 5,
}


class TaskLog:
    """Columnar log of completed task attempts."""

    def __init__(self) -> None:
        self._uid = array("q")
        self._attempt = array("i")
        self._start = array("d")
        self._end = array("d")
        self._state = array("b")
        self._timed_out = array("b")
        self._cpus = array("i")
        self._gpus = array("i")
        self._nodes = array("i")
        # placements, flattened; row i owns the next _nodes[i] entries
        self._node_ids = array("i")

    def __len__(self) -> int:
        return len(self._uid)

    def append(self, record: TaskRecord) -> None:
        """Log one completed attempt (record state must be final)."""
        spec = record.spec
        self._uid.append(spec.uid)
        self._attempt.append(record.attempt)
        self._start.append(record.start_time if record.start_time is not None else -1.0)
        self._end.append(record.end_time if record.end_time is not None else -1.0)
        self._state.append(_STATE_CODES[record.state])
        self._timed_out.append(1 if record.timed_out else 0)
        self._cpus.append(spec.cpus)
        self._gpus.append(spec.gpus)
        self._nodes.append(spec.nodes)
        self._node_ids.extend(record.node_ids)

    # ----------------------------------------------------------- accounting
    def node_seconds_total(
        self, gpus_per_node: int = 6, cpus_per_node: int = 42
    ) -> float:
        """Total node-seconds over all logged attempts (vectorized).

        Same accounting as :meth:`TaskRecord.node_seconds`: whole nodes
        for multi-node tasks, the occupied node fraction for sub-node
        tasks.
        """
        if not len(self):
            return 0.0
        start = np.frombuffer(self._start, dtype=np.float64)
        end = np.frombuffer(self._end, dtype=np.float64)
        nodes = np.frombuffer(self._nodes, dtype=np.int32).astype(np.float64)
        wall = np.where((start >= 0.0) & (end >= 0.0), end - start, 0.0)
        gpu_frac = (
            np.frombuffer(self._gpus, dtype=np.int32) / gpus_per_node
            if gpus_per_node
            else 0.0
        )
        cpu_frac = (
            np.frombuffer(self._cpus, dtype=np.int32) / cpus_per_node
            if cpus_per_node
            else 0.0
        )
        frac = np.where(nodes > 1, nodes, np.maximum(gpu_frac, cpu_frac))
        return float(np.sum(wall * frac))

    def state_counts(self) -> dict[str, int]:
        """Final-state histogram over logged attempts."""
        codes = np.frombuffer(self._state, dtype=np.int8)
        names = {code: state.name for state, code in _STATE_CODES.items()}
        values, counts = np.unique(codes, return_counts=True)
        return {names[int(v)]: int(c) for v, c in zip(values, counts)}

    # ---------------------------------------------------------- determinism
    def digest(self) -> str:
        """sha256 over every column — the bit-identity witness."""
        h = hashlib.sha256()
        for column in (
            self._uid,
            self._attempt,
            self._start,
            self._end,
            self._state,
            self._timed_out,
            self._cpus,
            self._gpus,
            self._nodes,
            self._node_ids,
        ):
            h.update(column.tobytes())
        return h.hexdigest()
