"""Scheduler-policy shootout, scored purely from telemetry traces.

Which scheduling choices matter at Summit scale?  This module races the
registered placement policies (first-fit scan vs indexed vs
GPU-aware heterogeneous packing) and the RAPTOR overlay knobs (work
stealing on/off, sharded masters) over one seeded mixed workload — the
paper's shape: a flood of short GPU docking calls, CPU-only featurizers,
and a trickle of multi-node MD jobs.

Scoring discipline: every number comes from the run's telemetry trace —
``pilot.task`` / ``pilot.backoff`` / ``raptor.*`` spans on the virtual
clock — never from wall-clock reads or side channels.  The shootout
therefore scores exactly what the trace tooling already exports
(makespan, time-weighted utilization, backoff exposure), and two runs of
the same arm with the same seed produce byte-identical scores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rct.cluster import Allocation, NodeSpec, SUMMIT_NODE
from repro.rct.pilot import Pilot
from repro.rct.raptor import RaptorConfig, simulate_raptor
from repro.rct.sched import PLACEMENT_POLICIES
from repro.rct.backends import SimExecutor
from repro.rct.task import TaskSpec
from repro.rct.utilization import UtilizationTracker
from repro.telemetry import ExecutorClock, Tracer
from repro.util.rng import rng_stream

__all__ = [
    "ShootoutScore",
    "mixed_workload",
    "score_pilot_trace",
    "score_raptor_trace",
    "run_pilot_arm",
    "run_raptor_arm",
    "run_shootout",
]


@dataclass(frozen=True)
class ShootoutScore:
    """One arm's trace-derived scorecard."""

    arm: str
    family: str  # "pilot" (placement policy) or "raptor" (overlay knob)
    makespan: float  # virtual seconds, first span start → last span end
    utilization: float  # time-weighted busy fraction over the makespan
    backoff_seconds: float  # retry-backoff exposure charged by the trace
    n_spans: int

    @property
    def score(self) -> float:
        """Single ranking number: shorter makespan is strictly better."""
        return -self.makespan

    def as_dict(self) -> dict:
        """Plain-dict form for BENCH/JSON envelopes."""
        return {
            "arm": self.arm,
            "family": self.family,
            "makespan": self.makespan,
            "utilization": self.utilization,
            "backoff_seconds": self.backoff_seconds,
            "n_spans": self.n_spans,
        }


def mixed_workload(
    n_tasks: int, seed: int, spec: NodeSpec = SUMMIT_NODE
) -> list[TaskSpec]:
    """The paper's integrated-campaign task mix, seeded.

    ~70% short single-GPU docking scorers, ~25% CPU-only featurizers
    (7 cores, no GPU — the arm that separates GPU-aware packing from
    blind first-fit), ~5% two-node MPI MD jobs.  Durations are
    log-normal: the long tail is what load balancing has to absorb.
    """
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    rng = rng_stream(seed, "shootout.workload")
    kinds = rng.random(n_tasks)
    durations = rng.lognormal(mean=3.0, sigma=0.6, size=n_tasks)
    tasks: list[TaskSpec] = []
    for i in range(n_tasks):
        if kinds[i] < 0.70:
            tasks.append(
                TaskSpec(
                    name=f"dock-{i}",
                    cpus=1,
                    gpus=1,
                    duration=float(durations[i]),
                    stage="S1",
                )
            )
        elif kinds[i] < 0.95:
            tasks.append(
                TaskSpec(
                    name=f"feat-{i}",
                    cpus=min(7, spec.cpus),
                    gpus=0,
                    duration=float(durations[i]),
                    stage="ML1",
                )
            )
        else:
            tasks.append(
                TaskSpec(
                    name=f"md-{i}",
                    cpus=spec.cpus,
                    gpus=spec.gpus,
                    nodes=2,
                    duration=float(4.0 * durations[i]),
                    stage="S3-CG",
                )
            )
    return tasks


def score_pilot_trace(
    arm: str, tracer: Tracer, total_gpus: int, total_cpus: int
) -> ShootoutScore:
    """Score a pilot run from its ``pilot.*`` spans alone."""
    starts = []
    ends = []
    n_spans = 0
    for span in tracer.spans(category="pilot.task"):
        n_spans += 1
        starts.append(span.start)
        if span.end is not None:
            ends.append(span.end)
    makespan = (max(ends) - min(starts)) if starts and ends else 0.0
    tracker = UtilizationTracker.from_trace(
        tracer, total_gpus=total_gpus, total_cpus=total_cpus
    )
    return ShootoutScore(
        arm=arm,
        family="pilot",
        makespan=makespan,
        utilization=tracker.series().average_utilization(),
        backoff_seconds=tracker.backoff_seconds,
        n_spans=n_spans,
    )


def score_raptor_trace(arm: str, tracer: Tracer, n_workers: int) -> ShootoutScore:
    """Score a RAPTOR run from its ``raptor.*`` spans alone."""
    starts = []
    ends = []
    busy = 0.0
    backoff = 0.0
    n_spans = 0
    for span in tracer.spans():
        n_spans += 1
        starts.append(span.start)
        if span.end is None:
            continue
        ends.append(span.end)
        if span.category == "raptor.exec":
            busy += span.end - span.start
        elif span.category == "raptor.backoff":
            backoff += float(span.attrs.get("seconds", span.end - span.start))
    makespan = (max(ends) - min(starts)) if starts and ends else 0.0
    utilization = (
        busy / (n_workers * makespan) if makespan > 0 and n_workers else 0.0
    )
    return ShootoutScore(
        arm=arm,
        family="raptor",
        makespan=makespan,
        utilization=utilization,
        backoff_seconds=backoff,
        n_spans=n_spans,
    )


def run_pilot_arm(
    policy: str,
    n_tasks: int,
    n_nodes: int,
    seed: int,
    launch_overhead: float = 0.1,
    spec: NodeSpec = SUMMIT_NODE,
) -> ShootoutScore:
    """Simulate one placement policy over the seeded mixed workload."""
    tasks = mixed_workload(n_tasks, seed, spec)
    allocation = Allocation(
        node_ids=list(range(n_nodes)), spec=spec, granted_at=0.0
    )
    executor = SimExecutor(launch_overhead=launch_overhead)
    tracer = Tracer(clock=ExecutorClock(executor))
    with Pilot(allocation, executor, tracer=tracer, policy=policy) as pilot:
        pilot.run(tasks)
    return score_pilot_trace(
        f"pilot/{policy}",
        tracer,
        total_gpus=n_nodes * spec.gpus,
        total_cpus=n_nodes * spec.cpus,
    )


def run_raptor_arm(
    arm: str,
    n_items: int,
    seed: int,
    config: RaptorConfig,
) -> ShootoutScore:
    """Simulate one RAPTOR overlay configuration over seeded durations."""
    rng = rng_stream(seed, "shootout.raptor")
    durations = rng.lognormal(mean=0.0, sigma=0.8, size=n_items)
    tracer = Tracer()
    simulate_raptor(durations, config, tracer=tracer)
    return score_raptor_trace(f"raptor/{arm}", tracer, config.n_workers)


def run_shootout(
    n_tasks: int = 2000,
    n_nodes: int = 32,
    seed: int = 0,
    policies: tuple[str, ...] | None = None,
    n_raptor_items: int = 4000,
    n_raptor_workers: int = 64,
) -> list[ShootoutScore]:
    """Race every arm; returns scores sorted best-first per family.

    Pilot arms sweep the registered placement policies; RAPTOR arms
    sweep work stealing × master sharding.  All scores come from traces
    (see module docstring), so re-running with the same seed reproduces
    them byte-for-byte.
    """
    if policies is None:
        policies = tuple(sorted(PLACEMENT_POLICIES))
    scores = [
        run_pilot_arm(policy, n_tasks, n_nodes, seed) for policy in policies
    ]
    raptor_arms = {
        "steal/m1": RaptorConfig(n_workers=n_raptor_workers, n_masters=1),
        "steal/m4": RaptorConfig(n_workers=n_raptor_workers, n_masters=4),
        "nosteal/m4": RaptorConfig(
            n_workers=n_raptor_workers, n_masters=4, steal=False
        ),
    }
    scores.extend(
        run_raptor_arm(arm, n_raptor_items, seed, cfg)
        for arm, cfg in raptor_arms.items()
    )
    return sorted(scores, key=lambda s: (s.family, s.makespan))
