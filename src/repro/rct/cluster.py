"""Simulated cluster: nodes, slots and a batch queue.

The substitution for Summit (4608 nodes × 6 V100 × 42 usable cores):
resource *shapes* and allocation semantics are modelled exactly; time is
virtual and driven by the executor's event loop.  A :class:`BatchSystem`
fronting the cluster charges a queue wait before a pilot's resources
become available, like a leadership-facility scheduler.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.util.config import FrozenConfig, validate_positive

__all__ = ["NodeSpec", "SUMMIT_NODE", "Allocation", "Cluster", "BatchSystem"]


@dataclass(frozen=True)
class NodeSpec(FrozenConfig):
    """Per-node resource shape."""

    cpus: int = 42
    gpus: int = 6

    def __post_init__(self) -> None:
        validate_positive("cpus", self.cpus)
        if self.gpus < 0:
            raise ValueError("gpus must be non-negative")


#: Summit's node shape (§6: 6 NVIDIA V100 per node)
SUMMIT_NODE = NodeSpec(cpus=42, gpus=6)


@dataclass
class Allocation:
    """A contiguous block of nodes granted to a pilot."""

    node_ids: list[int]
    spec: NodeSpec
    granted_at: float

    @property
    def n_nodes(self) -> int:
        """Number of nodes in this allocation."""
        return len(self.node_ids)

    @property
    def total_gpus(self) -> int:
        """Total GPU slots in this allocation."""
        return self.n_nodes * self.spec.gpus


class Cluster:
    """A fixed pool of identical nodes.

    Free nodes live in an indexed min-heap rather than a boolean mask,
    so granting an allocation pops the ``n`` lowest free ids in
    O(n log nodes) instead of scanning all nodes — the same
    lowest-id-first grants as the original ``np.where`` scan, cheap
    enough to call inside a simulated scheduling loop.
    """

    def __init__(self, n_nodes: int, spec: NodeSpec = SUMMIT_NODE) -> None:
        if n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.n_nodes = n_nodes
        self.spec = spec
        self._free_heap = list(range(n_nodes))  # already heap-ordered
        self._is_free = bytearray(b"\x01" * n_nodes)

    @property
    def free_nodes(self) -> int:
        """Number of currently unallocated nodes."""
        return len(self._free_heap)

    def allocate(self, n_nodes: int, now: float) -> Allocation:
        """Grab the ``n_nodes`` lowest free nodes; raises if unavailable."""
        if n_nodes < 1:
            raise ValueError("allocation must request at least one node")
        if len(self._free_heap) < n_nodes:
            raise RuntimeError(
                f"cluster has {len(self._free_heap)} free nodes, "
                f"requested {n_nodes}"
            )
        chosen = [heapq.heappop(self._free_heap) for _ in range(n_nodes)]
        for node in chosen:
            self._is_free[node] = 0
        return Allocation(node_ids=chosen, spec=self.spec, granted_at=now)

    def release(self, allocation: Allocation) -> None:
        """Return an allocation's nodes to the free pool."""
        for node in allocation.node_ids:
            if not self._is_free[node]:
                heapq.heappush(self._free_heap, node)
                self._is_free[node] = 1


@dataclass
class BatchSystem:
    """Minimal batch-queue model: FIFO grant with a queue-wait charge.

    ``queue_wait_base + queue_wait_per_node * n`` seconds elapse between
    submission and grant — enough to study how batch latency amortizes
    over pilot lifetime, which is the pilot paradigm's selling point
    (§5.2.2: RP schedules "without having to use the infrastructure's
    batch system" for each task).
    """

    cluster: Cluster
    queue_wait_base: float = 60.0
    queue_wait_per_node: float = 0.05

    def submit(self, n_nodes: int, now: float) -> tuple[Allocation, float]:
        """Submit a pilot job; returns (allocation, grant_time)."""
        wait = self.queue_wait_base + self.queue_wait_per_node * n_nodes
        grant_time = now + wait
        allocation = self.cluster.allocate(n_nodes, grant_time)
        return allocation, grant_time
