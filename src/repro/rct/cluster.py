"""Simulated cluster: nodes, slots and a batch queue.

The substitution for Summit (4608 nodes × 6 V100 × 42 usable cores):
resource *shapes* and allocation semantics are modelled exactly; time is
virtual and driven by the executor's event loop.  A :class:`BatchSystem`
fronting the cluster charges a queue wait before a pilot's resources
become available, like a leadership-facility scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.config import FrozenConfig, validate_positive

__all__ = ["NodeSpec", "SUMMIT_NODE", "Allocation", "Cluster", "BatchSystem"]


@dataclass(frozen=True)
class NodeSpec(FrozenConfig):
    """Per-node resource shape."""

    cpus: int = 42
    gpus: int = 6

    def __post_init__(self) -> None:
        validate_positive("cpus", self.cpus)
        if self.gpus < 0:
            raise ValueError("gpus must be non-negative")


#: Summit's node shape (§6: 6 NVIDIA V100 per node)
SUMMIT_NODE = NodeSpec(cpus=42, gpus=6)


@dataclass
class Allocation:
    """A contiguous block of nodes granted to a pilot."""

    node_ids: list[int]
    spec: NodeSpec
    granted_at: float

    @property
    def n_nodes(self) -> int:
        """Number of nodes in this allocation."""
        return len(self.node_ids)

    @property
    def total_gpus(self) -> int:
        """Total GPU slots in this allocation."""
        return self.n_nodes * self.spec.gpus


class Cluster:
    """A fixed pool of identical nodes."""

    def __init__(self, n_nodes: int, spec: NodeSpec = SUMMIT_NODE) -> None:
        if n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.n_nodes = n_nodes
        self.spec = spec
        self._free = np.ones(n_nodes, dtype=bool)

    @property
    def free_nodes(self) -> int:
        """Number of currently unallocated nodes."""
        return int(self._free.sum())

    def allocate(self, n_nodes: int, now: float) -> Allocation:
        """Grab ``n_nodes`` free nodes; raises if unavailable."""
        if n_nodes < 1:
            raise ValueError("allocation must request at least one node")
        free_ids = np.where(self._free)[0]
        if len(free_ids) < n_nodes:
            raise RuntimeError(
                f"cluster has {len(free_ids)} free nodes, requested {n_nodes}"
            )
        chosen = free_ids[:n_nodes]
        self._free[chosen] = False
        return Allocation(node_ids=chosen.tolist(), spec=self.spec, granted_at=now)

    def release(self, allocation: Allocation) -> None:
        """Return an allocation's nodes to the free pool."""
        self._free[allocation.node_ids] = True


@dataclass
class BatchSystem:
    """Minimal batch-queue model: FIFO grant with a queue-wait charge.

    ``queue_wait_base + queue_wait_per_node * n`` seconds elapse between
    submission and grant — enough to study how batch latency amortizes
    over pilot lifetime, which is the pilot paradigm's selling point
    (§5.2.2: RP schedules "without having to use the infrastructure's
    batch system" for each task).
    """

    cluster: Cluster
    queue_wait_base: float = 60.0
    queue_wait_per_node: float = 0.05

    def submit(self, n_nodes: int, now: float) -> tuple[Allocation, float]:
        """Submit a pilot job; returns (allocation, grant_time)."""
        wait = self.queue_wait_base + self.queue_wait_per_node * n_nodes
        grant_time = now + wait
        allocation = self.cluster.allocate(n_nodes, grant_time)
        return allocation, grant_time
