"""RAPTOR: the RADICAL-Pilot Task OveRlay (master/worker, §6.1.2).

Docking tasks are far too short (~10⁻⁴ node-hours) to schedule one batch
job — or even one pilot task — each.  RAPTOR instead runs *masters* that
stream **bulks** of function calls to *workers*, with dynamic load
balancing: a worker that drains its bulk immediately requests the next.
The paper's three scalability levers are all modelled:

* "tasks are communicated in bulks as to limit the communication load
  and frequency" → ``bulk_size`` amortizes the per-dispatch overhead;
* "multiple master processes are used to limit the number of workers
  served by each master, avoiding respective bottlenecks" → each master
  is a serial dispatch server; workers are partitioned across masters;
* "round-robin … and dynamic load distribution" → items are dealt
  round-robin to masters, then pulled on demand by idle workers.

The simulated backend reproduces the queueing behaviour (near-linear
scaling until masters saturate); the callable backend runs real Python
functions on threads with the same bulk semantics.
"""

from __future__ import annotations

import heapq
import itertools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.util.config import FrozenConfig, validate_positive

__all__ = ["RaptorConfig", "RaptorResult", "simulate_raptor", "run_raptor"]


@dataclass(frozen=True)
class RaptorConfig(FrozenConfig):
    """Overlay shape."""

    n_workers: int
    n_masters: int = 1
    bulk_size: int = 16
    dispatch_overhead: float = 0.05  # seconds of master time per bulk

    def __post_init__(self) -> None:
        validate_positive("n_workers", self.n_workers)
        validate_positive("n_masters", self.n_masters)
        validate_positive("bulk_size", self.bulk_size)
        if self.dispatch_overhead < 0:
            raise ValueError("dispatch_overhead must be non-negative")
        if self.n_masters > self.n_workers:
            raise ValueError("more masters than workers is wasteful; reduce n_masters")


@dataclass
class RaptorResult:
    """Outcome of one RAPTOR run."""

    makespan: float  # seconds (virtual or wall)
    n_items: int
    worker_busy: np.ndarray  # (n_workers,) busy seconds
    master_busy: np.ndarray  # (n_masters,) dispatch seconds
    results: list | None = None  # callable backend only

    @property
    def throughput(self) -> float:
        """Items per second."""
        return self.n_items / self.makespan if self.makespan > 0 else 0.0

    @property
    def worker_utilization(self) -> float:
        """Mean busy fraction across workers."""
        if self.makespan <= 0:
            return 0.0
        return float(self.worker_busy.mean() / self.makespan)


def _partition_round_robin(n_items: int, n_masters: int) -> list[list[int]]:
    """Deal item indices to masters round-robin (the paper's strategy)."""
    return [list(range(m, n_items, n_masters)) for m in range(n_masters)]


def simulate_raptor(
    durations: Sequence[float], config: RaptorConfig
) -> RaptorResult:
    """Discrete-event simulation of a RAPTOR run.

    ``durations[i]`` is the execution time of item ``i`` (heterogeneous
    docking times — the long tail the paper's load balancing absorbs).
    """
    durations = np.asarray(durations, dtype=np.float64)
    if len(durations) == 0:
        raise ValueError("no items to run")
    if (durations < 0).any():
        raise ValueError("durations must be non-negative")
    n_items = len(durations)
    cfg = config

    # deal items to masters round-robin; masters serve bulks in order
    master_queues = _partition_round_robin(n_items, cfg.n_masters)
    master_next = [0] * cfg.n_masters  # next index into the master's list
    master_free_at = np.zeros(cfg.n_masters)
    master_busy = np.zeros(cfg.n_masters)

    # workers are partitioned evenly across masters
    worker_master = np.arange(cfg.n_workers) % cfg.n_masters
    worker_busy = np.zeros(cfg.n_workers)

    def next_bulk(master: int) -> list[int]:
        queue = master_queues[master]
        start = master_next[master]
        if start >= len(queue):
            return []
        bulk = queue[start : start + cfg.bulk_size]
        master_next[master] += len(bulk)
        return bulk

    # event heap: (time, seq, worker)  — worker becomes idle at `time`
    heap: list[tuple[float, int, int]] = []
    seq = itertools.count()
    for w in range(cfg.n_workers):
        heapq.heappush(heap, (0.0, next(seq), w))

    makespan = 0.0
    while heap:
        now, _, worker = heapq.heappop(heap)
        master = int(worker_master[worker])
        bulk = next_bulk(master)
        if not bulk:
            # dynamic load balancing: an idle worker steals from the
            # most-loaded other master (the paper's "dynamic load
            # distribution which depends on the load of the individual
            # workers")
            remaining = [
                len(master_queues[m]) - master_next[m] for m in range(cfg.n_masters)
            ]
            donor = int(np.argmax(remaining))
            if remaining[donor] == 0:
                makespan = max(makespan, now)
                continue
            master = donor
            bulk = next_bulk(master)
        # master dispatch: serial per master, costs dispatch_overhead
        dispatch_start = max(now, master_free_at[master])
        dispatch_end = dispatch_start + cfg.dispatch_overhead
        master_free_at[master] = dispatch_end
        master_busy[master] += cfg.dispatch_overhead
        work = float(durations[bulk].sum())
        finish = dispatch_end + work
        worker_busy[worker] += work
        makespan = max(makespan, finish)
        heapq.heappush(heap, (finish, next(seq), worker))

    return RaptorResult(
        makespan=makespan,
        n_items=n_items,
        worker_busy=worker_busy,
        master_busy=master_busy,
    )


def run_raptor(
    items: Sequence,
    fn: Callable,
    config: RaptorConfig,
) -> RaptorResult:
    """Real execution: apply ``fn`` to every item with bulk semantics.

    Workers are threads; results are returned in item order.  This is
    the backend the campaign uses to RAPTOR-ize real docking calls.
    """
    import time

    items = list(items)
    if not items:
        raise ValueError("no items to run")
    cfg = config
    master_queues = _partition_round_robin(len(items), cfg.n_masters)
    bulks: list[list[int]] = []
    for queue in master_queues:
        for start in range(0, len(queue), cfg.bulk_size):
            bulks.append(queue[start : start + cfg.bulk_size])

    results: list = [None] * len(items)
    worker_busy = np.zeros(cfg.n_workers)

    def run_bulk(bulk_and_slot: tuple[list[int], int]) -> None:
        bulk, slot = bulk_and_slot
        t0 = time.perf_counter()
        for i in bulk:
            try:
                results[i] = fn(items[i])
            except Exception as exc:  # noqa: BLE001 - task isolation: one
                # failing item must not sink its bulk (RP "isolates the
                # execution of each task")
                results[i] = exc
        worker_busy[slot % cfg.n_workers] += time.perf_counter() - t0

    t_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=cfg.n_workers) as pool:
        list(pool.map(run_bulk, [(b, s) for s, b in enumerate(bulks)]))
    makespan = time.perf_counter() - t_start
    return RaptorResult(
        makespan=makespan,
        n_items=len(items),
        worker_busy=worker_busy,
        master_busy=np.zeros(cfg.n_masters),
        results=results,
    )
