"""RAPTOR: the RADICAL-Pilot Task OveRlay (master/worker, §6.1.2).

Docking tasks are far too short (~10⁻⁴ node-hours) to schedule one batch
job — or even one pilot task — each.  RAPTOR instead runs *masters* that
stream **bulks** of function calls to *workers*, with dynamic load
balancing: a worker that drains its bulk immediately requests the next.
The paper's three scalability levers are all modelled:

* "tasks are communicated in bulks as to limit the communication load
  and frequency" → ``bulk_size`` amortizes the per-dispatch overhead;
* "multiple master processes are used to limit the number of workers
  served by each master, avoiding respective bottlenecks" → each master
  is a serial dispatch server; workers are partitioned across masters;
* "round-robin … and dynamic load distribution" → items are dealt
  round-robin to masters, then pulled on demand by idle workers.

The simulated backend reproduces the queueing behaviour (near-linear
scaling until masters saturate); the callable backend runs real Python
functions on threads with the same bulk semantics.

Both backends honor the fault layer: the simulation injects seeded
failures via :class:`~repro.rct.fault.FaultModel` and both re-drive
failed items under a :class:`~repro.rct.fault.RetryPolicy`, reporting
every drop through :attr:`RaptorResult.failed_indices` and a
:class:`~repro.rct.fault.FailureSummary` — a failed docking call is
never left masquerading as a score.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.rct.fault import FailureSummary, FaultModel, RetryPolicy
from repro.telemetry import NULL_TRACER, Tracer
from repro.util.config import FrozenConfig, validate_positive
from repro.util.timer import WallClock

__all__ = [
    "RaptorConfig",
    "RaptorResult",
    "simulate_raptor",
    "run_raptor",
    "dock_library_raptor",
]

#: stage label used in failure ledgers
_STAGE = "raptor"


@dataclass(frozen=True)
class RaptorConfig(FrozenConfig):
    """Overlay shape."""

    n_workers: int
    n_masters: int = 1
    bulk_size: int = 16
    dispatch_overhead: float = 0.05  # seconds of master time per bulk
    #: dynamic load balancing: an idle worker whose master has drained may
    #: steal bulks from the most-loaded other master.  Off, workers serve
    #: only their own master — the policy shootout's ablation arm.
    steal: bool = True

    def __post_init__(self) -> None:
        validate_positive("n_workers", self.n_workers)
        validate_positive("n_masters", self.n_masters)
        validate_positive("bulk_size", self.bulk_size)
        if self.dispatch_overhead < 0:
            raise ValueError("dispatch_overhead must be non-negative")
        if self.n_masters > self.n_workers:
            raise ValueError("more masters than workers is wasteful; reduce n_masters")


@dataclass
class RaptorResult:
    """Outcome of one RAPTOR run."""

    makespan: float  # seconds (virtual or wall)
    n_items: int
    worker_busy: np.ndarray  # (n_workers,) busy seconds
    master_busy: np.ndarray  # (n_masters,) dispatch seconds
    results: list | None = None  # callable backend only
    failed_indices: list[int] = field(default_factory=list)
    # ^ items that permanently failed (retries exhausted or disabled)
    failure_summary: FailureSummary | None = None

    @property
    def n_failed(self) -> int:
        """Number of items that permanently failed."""
        return len(self.failed_indices)

    @property
    def throughput(self) -> float:
        """Items per second."""
        return self.n_items / self.makespan if self.makespan > 0 else 0.0

    @property
    def worker_utilization(self) -> float:
        """Mean busy fraction across workers."""
        if self.makespan <= 0:
            return 0.0
        return float(self.worker_busy.mean() / self.makespan)


def _partition_round_robin(n_items: int, n_masters: int) -> list[list[int]]:
    """Deal item indices to masters round-robin (the paper's strategy)."""
    return [list(range(m, n_items, n_masters)) for m in range(n_masters)]


def simulate_raptor(
    durations: Sequence[float],
    config: RaptorConfig,
    fault_model: FaultModel | None = None,
    retry: RetryPolicy | None = None,
    tracer: Tracer | None = None,
) -> RaptorResult:
    """Discrete-event simulation of a RAPTOR run.

    ``durations[i]`` is the execution time of item ``i`` (heterogeneous
    docking times — the long tail the paper's load balancing absorbs).
    With a ``fault_model``, attempts may crash/straggle/hang; failed
    items re-enter the queue after the ``retry`` policy's backoff (on the
    virtual clock) until retries are exhausted.

    With a ``tracer``, every master dispatch, item attempt, and retry
    backoff is recorded as a pre-timed span on the virtual clock
    (categories ``raptor.dispatch`` / ``raptor.exec`` /
    ``raptor.backoff``); failed attempts carry error status so the trace
    reconciles with the returned :class:`FailureSummary`.
    """
    if tracer is None:
        tracer = NULL_TRACER
    durations = np.asarray(durations, dtype=np.float64)
    if len(durations) == 0:
        raise ValueError("no items to run")
    if (durations < 0).any():
        raise ValueError("durations must be non-negative")
    timeout = retry.timeout if retry is not None else None
    if fault_model is not None and fault_model.hang_rate > 0 and timeout is None:
        raise ValueError(
            "hang_rate > 0 needs a RetryPolicy timeout to reap hung attempts"
        )
    n_items = len(durations)
    cfg = config

    # deal items to masters round-robin; masters serve bulks in order
    master_queues = _partition_round_robin(n_items, cfg.n_masters)
    master_next = [0] * cfg.n_masters  # next index into the master's list
    master_free_at = np.zeros(cfg.n_masters)
    master_busy = np.zeros(cfg.n_masters)

    # workers are partitioned evenly across masters
    worker_master = np.arange(cfg.n_workers) % cfg.n_masters
    worker_busy = np.zeros(cfg.n_workers)

    summary = FailureSummary()
    attempts: dict[int, int] = {}
    failed_indices: list[int] = []
    # failed items waiting out their backoff: (eligible_time, item)
    retry_heap: list[tuple[float, int]] = []

    def next_bulk(master: int) -> list[int]:
        queue = master_queues[master]
        start = master_next[master]
        if start >= len(queue):
            return []
        bulk = queue[start : start + cfg.bulk_size]
        master_next[master] += len(bulk)
        return bulk

    # event heap: (time, seq, worker)  — worker becomes idle at `time`
    heap: list[tuple[float, int, int]] = []
    seq = itertools.count()
    for w in range(cfg.n_workers):
        heapq.heappush(heap, (0.0, next(seq), w))

    makespan = 0.0
    while heap:
        now, _, worker = heapq.heappop(heap)
        master = int(worker_master[worker])
        bulk = next_bulk(master)
        if not bulk:
            # dynamic load balancing (cfg.steal): an idle worker steals
            # from the most-loaded other master (the paper's "dynamic
            # load distribution which depends on the load of the
            # individual workers")
            donor = -1
            if cfg.steal:
                remaining = [
                    len(master_queues[m]) - master_next[m]
                    for m in range(cfg.n_masters)
                ]
                donor = int(np.argmax(remaining))
                if remaining[donor] <= 0:
                    donor = -1
            if donor >= 0:
                master = donor
                bulk = next_bulk(master)
            else:
                # nothing queued anywhere: drain the retry backlog
                while retry_heap and retry_heap[0][0] <= now and len(bulk) < cfg.bulk_size:
                    bulk.append(heapq.heappop(retry_heap)[1])
                if not bulk:
                    if retry_heap:
                        # all failed work is in backoff; sleep to the
                        # earliest eligibility and look again
                        heapq.heappush(
                            heap, (max(now, retry_heap[0][0]), next(seq), worker)
                        )
                        continue
                    makespan = max(makespan, now)
                    continue
        # master dispatch: serial per master, costs dispatch_overhead;
        # stolen bulks charge the donor master (it served the request)
        dispatch_start = max(now, master_free_at[master])
        dispatch_end = dispatch_start + cfg.dispatch_overhead
        master_free_at[master] = dispatch_end
        master_busy[master] += cfg.dispatch_overhead
        if tracer.enabled:
            tracer.record_span(
                f"dispatch:m{master}",
                start=dispatch_start,
                end=dispatch_end,
                category="raptor.dispatch",
                attrs={"master": master, "worker": worker, "n_items": len(bulk)},
            )
        work = 0.0
        for i in bulk:
            attempt = attempts.get(i, 0)
            if fault_model is None:
                busy = float(durations[i])
                if timeout is not None and busy > timeout:
                    busy, failed, timed_out = timeout, True, True
                else:
                    failed = timed_out = False
            else:
                outcome = fault_model.draw(i, attempt, float(durations[i]))
                busy, failed = outcome.busy, outcome.failed
                timed_out = False
                if timeout is not None and busy > timeout:
                    busy, failed, timed_out = timeout, True, True
            item_end = dispatch_end + work + busy
            work += busy
            if not failed:
                if tracer.enabled:
                    tracer.record_span(
                        f"item:{i}",
                        start=item_end - busy,
                        end=item_end,
                        category="raptor.exec",
                        attrs={"item": i, "attempt": attempt, "worker": worker},
                    )
                summary.record_success(attempt)
                continue
            summary.record_failure(busy, timed_out)
            will_retry = retry is not None and retry.should_retry(attempt)
            if tracer.enabled:
                tracer.record_span(
                    f"item:{i}",
                    start=item_end - busy,
                    end=item_end,
                    category="raptor.exec",
                    attrs={
                        "item": i,
                        "attempt": attempt,
                        "worker": worker,
                        "timed_out": timed_out,
                        "retried": will_retry,
                        "dropped": not will_retry,
                    },
                    status="error",
                    error=f"injected failure (attempt {attempt})"
                    if not timed_out
                    else f"timeout after {timeout}s (attempt {attempt})",
                )
            if will_retry:
                backoff = retry.backoff(i, attempt)
                summary.record_retry(backoff)
                if tracer.enabled:
                    tracer.record_span(
                        f"backoff:{i}",
                        start=item_end,
                        end=item_end + backoff,
                        category="raptor.backoff",
                        attrs={"item": i, "attempt": attempt, "seconds": backoff},
                    )
                attempts[i] = attempt + 1
                heapq.heappush(retry_heap, (item_end + backoff, i))
            else:
                summary.record_drop(_STAGE)
                failed_indices.append(i)
        finish = dispatch_end + work
        worker_busy[worker] += work
        makespan = max(makespan, finish)
        heapq.heappush(heap, (finish, next(seq), worker))

    return RaptorResult(
        makespan=makespan,
        n_items=n_items,
        worker_busy=worker_busy,
        master_busy=master_busy,
        failed_indices=sorted(failed_indices),
        failure_summary=summary,
    )


def run_raptor(
    items: Sequence,
    fn: Callable,
    config: RaptorConfig,
    retry: RetryPolicy | None = None,
    clock: WallClock | None = None,
    tracer: Tracer | None = None,
) -> RaptorResult:
    """Real execution: apply ``fn`` to every item with bulk semantics.

    Workers are threads; results are returned in item order.  This is
    the backend the campaign uses to RAPTOR-ize real docking calls.

    A raising item is retried per ``retry``; the policy's backoff is
    *charged to the failure ledger* (``time_lost_backoff``) but never
    slept — sleeping inside a worker would stall the bulk's pool slot
    for the whole backoff and inflate the wall-clock makespan of
    retry-heavy runs (transient in-process failures also gain nothing
    from waiting).  Once retries are exhausted, the item's slot in
    ``results`` holds the exception object and its index lands in
    :attr:`RaptorResult.failed_indices`, so failures are never
    indistinguishable from legitimate return values.  Per-attempt
    timeouts are not enforced here: a thread cannot be killed mid-call
    (use the pilot's thread backend for abandonable tasks).

    Attempt timing comes from the injected ``clock`` (default
    :class:`~repro.util.timer.WallClock`); with a ``tracer``, each
    attempt is recorded as a ``raptor.exec`` span (error status on
    raising items) — ``record_span`` is thread-safe, so worker threads
    report directly.
    """
    items = list(items)
    if not items:
        raise ValueError("no items to run")
    if clock is None:
        clock = WallClock()
    if tracer is None:
        tracer = NULL_TRACER
    cfg = config
    master_queues = _partition_round_robin(len(items), cfg.n_masters)
    bulks: list[list[int]] = []
    for queue in master_queues:
        for start in range(0, len(queue), cfg.bulk_size):
            bulks.append(queue[start : start + cfg.bulk_size])

    results: list = [None] * len(items)
    summary = FailureSummary()
    failed_indices: list[int] = []
    ledger_lock = threading.Lock()

    # per-thread busy accounting: pool threads each accumulate into their
    # own cell (registered on first use), merged after the pool closes —
    # the shared-array `+=` it replaces raced across threads and indexed
    # by bulk number rather than executing thread
    tls = threading.local()
    busy_cells: list[list[float]] = []

    def busy_cell() -> list[float]:
        cell = getattr(tls, "cell", None)
        if cell is None:
            cell = tls.cell = [0.0]
            with ledger_lock:
                busy_cells.append(cell)
        return cell

    def run_item(i: int) -> None:
        attempt = 0
        while True:
            t0 = clock.now()
            try:
                result = fn(items[i])
            except Exception as exc:  # noqa: BLE001 - task isolation: one
                # failing item must not sink its bulk (RP "isolates the
                # execution of each task")
                t1 = clock.now()
                elapsed = t1 - t0
                busy_cell()[0] += elapsed
                with ledger_lock:
                    summary.record_failure(elapsed)
                will_retry = retry is not None and retry.should_retry(attempt)
                if tracer.enabled:
                    tracer.record_span(
                        f"item:{i}",
                        start=t0,
                        end=t1,
                        category="raptor.exec",
                        attrs={
                            "item": i,
                            "attempt": attempt,
                            "retried": will_retry,
                            "dropped": not will_retry,
                        },
                        status="error",
                        error=f"{type(exc).__name__}: {exc}",
                    )
                if will_retry:
                    backoff = retry.backoff(i, attempt)
                    with ledger_lock:
                        summary.record_retry(backoff)
                    if tracer.enabled:
                        tracer.record_span(
                            f"backoff:{i}",
                            start=t1,
                            end=t1 + backoff,
                            category="raptor.backoff",
                            attrs={"item": i, "attempt": attempt, "seconds": backoff},
                        )
                    attempt += 1
                    continue
                results[i] = exc
                with ledger_lock:
                    summary.record_drop(_STAGE)
                    failed_indices.append(i)
                return
            t1 = clock.now()
            busy_cell()[0] += t1 - t0
            if tracer.enabled:
                tracer.record_span(
                    f"item:{i}",
                    start=t0,
                    end=t1,
                    category="raptor.exec",
                    attrs={"item": i, "attempt": attempt},
                )
            results[i] = result
            with ledger_lock:
                summary.record_success(attempt)
            return

    def run_bulk(bulk: list[int]) -> None:
        for i in bulk:
            run_item(i)

    t_start = clock.now()
    with ThreadPoolExecutor(max_workers=cfg.n_workers) as pool:
        list(pool.map(run_bulk, bulks))
    makespan = clock.now() - t_start
    worker_busy = np.zeros(cfg.n_workers)
    for slot, cell in enumerate(busy_cells):
        worker_busy[slot] = cell[0]
    return RaptorResult(
        makespan=makespan,
        n_items=len(items),
        worker_busy=worker_busy,
        master_busy=np.zeros(cfg.n_masters),
        results=results,
        failed_indices=sorted(failed_indices),
        failure_summary=summary,
    )


def dock_library_raptor(
    engine,
    library,
    config: RaptorConfig,
    shard_size: int = 16,
    retry: RetryPolicy | None = None,
    limit: int | None = None,
    tracer: Tracer | None = None,
) -> RaptorResult:
    """RAPTOR-ize a library screen over fused multi-ligand shards.

    The library is cut into contiguous shards of ``shard_size`` compounds;
    each shard is one RAPTOR item executed by
    ``engine.dock_entries(shard, batched=True)`` — so every worker
    amortizes kernel launches across its whole shard instead of paying
    per-ligand dispatch (the AutoDock-GPU batching argument applied to
    the overlay's work unit).  Per-compound determinism makes the shard
    cut invisible in the results: scores, poses and ``n_evals`` are
    identical to ``engine.dock_library`` whatever ``shard_size``.

    Returns a :class:`RaptorResult` whose ``results`` list is flattened
    back to library order (one :class:`~repro.docking.engine.DockingResult`
    per compound; a failed shard's compounds hold the exception object)
    and whose ``failed_indices`` are *compound* indices.  Engine eval
    counters are updated once, after the pool has drained — worker
    threads never touch shared engine state.
    """
    n = len(library) if limit is None else min(limit, len(library))
    if n == 0:
        raise ValueError("no compounds to dock")
    entries = [(library[i].smiles, library[i].compound_id) for i in range(n)]
    shards = [
        entries[start : start + shard_size]
        for start in range(0, n, shard_size)
    ]

    if tracer is None:
        tracer = getattr(engine, "tracer", None)
    outcome = run_raptor(
        shards,
        lambda shard: engine.dock_entries(shard, batched=True),
        config,
        retry=retry,
        tracer=tracer,
    )

    flat: list = []
    failed_compounds: list[int] = []
    offsets = [0]
    for shard in shards:
        offsets.append(offsets[-1] + len(shard))
    for si, shard_result in enumerate(outcome.results or []):
        if isinstance(shard_result, Exception):
            flat.extend([shard_result] * len(shards[si]))
            failed_compounds.extend(range(offsets[si], offsets[si + 1]))
        else:
            flat.extend(shard_result)
            for r in shard_result:
                engine.total_evals += r.n_evals
                engine.total_ligands += 1
    return RaptorResult(
        makespan=outcome.makespan,
        n_items=n,
        worker_busy=outcome.worker_busy,
        master_busy=outcome.master_busy,
        results=flat,
        failed_indices=failed_compounds,
        failure_summary=outcome.failure_summary,
    )
