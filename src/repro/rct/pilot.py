"""RADICAL-Pilot analogue: pilot jobs, slot scheduling, workload runs.

The pilot paradigm (§5.2.2): submit one batch job that acquires nodes,
then schedule arbitrarily many heterogeneous tasks onto those nodes
directly — "given 10,000 single-node tasks and 1000 nodes, a pilot
system will execute 1000 tasks concurrently and … the remaining 9000
sequentially, whenever a node becomes available."  :class:`Pilot` owns
the allocation and slot bookkeeping; :meth:`Pilot.run` is exactly that
greedy backfilling loop, over either executor backend.

Failure handling is first-class: a :class:`~repro.rct.fault.RetryPolicy`
re-queues failed attempts after (jittered, exponential) backoff on the
executor's clock, and a propagation policy decides what happens when
retries are exhausted — ``fail_fast`` raises
:class:`~repro.rct.fault.TaskFailedError`, ``drop_and_continue`` keeps
going and reports every drop in :attr:`Pilot.failures`.  Nothing fails
silently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rct.cluster import Allocation, NodeSpec
from repro.rct.executor import SimExecutor, ThreadExecutor
from repro.rct.fault import FAILURE_POLICIES, FailureSummary, RetryPolicy, TaskFailedError
from repro.rct.task import TaskRecord, TaskSpec, TaskState
from repro.rct.utilization import UtilizationTracker
from repro.telemetry import ExecutorClock, Span, Tracer

__all__ = ["Pilot", "Placement"]


@dataclass
class Placement:
    """Slots assigned to one task."""

    node_ids: list[int]
    cpus: int
    gpus: int


class Pilot:
    """A resource pilot: slot accounting + the task scheduling loop."""

    def __init__(
        self,
        allocation: Allocation,
        executor: SimExecutor | ThreadExecutor,
        retry: RetryPolicy | None = None,
        failure_policy: str = "drop_and_continue",
        failure_budget: int | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {failure_policy!r}"
            )
        if failure_budget is not None and failure_budget < 0:
            raise ValueError("failure_budget must be non-negative")
        self.allocation = allocation
        self.executor = executor
        self.retry = retry
        self.failure_policy = failure_policy
        self.failure_budget = failure_budget
        self.failures = FailureSummary()
        spec = allocation.spec
        n = allocation.n_nodes
        self._free_cpus = np.full(n, spec.cpus)
        self._free_gpus = np.full(n, spec.gpus)
        self._placements: dict[int, Placement] = {}
        # retry backlog: (eligible_time, task, attempt), unordered
        self._retry_queue: list[tuple[float, TaskSpec, int]] = []
        self._n_running = 0
        self.records: list[TaskRecord] = []
        self._total_gpus = n * spec.gpus
        self._total_cpus = n * spec.cpus
        # The pilot is always traced: every placement becomes a
        # "pilot.task" span (explicit executor times, so the same code
        # path is deterministic under simulation) and the utilization
        # tracker below is a pure view over those spans.
        self.tracer = (
            tracer if tracer is not None else Tracer(clock=ExecutorClock(executor))
        )
        self._task_spans: dict[tuple[int, int], Span] = {}

    # ------------------------------------------------------------ placement
    @property
    def spec(self) -> NodeSpec:
        """Node shape of the underlying allocation."""
        return self.allocation.spec

    def try_place(self, task: TaskSpec) -> Placement | None:
        """First-fit placement; ``None`` when resources are busy.

        Multi-node tasks take whole (fully free) nodes; sub-node tasks
        pack into partially used nodes.
        """
        spec = self.spec
        if task.nodes > 1:
            if task.cpus > spec.cpus or task.gpus > spec.gpus:
                return None
            fully_free = np.where(
                (self._free_cpus == spec.cpus) & (self._free_gpus == spec.gpus)
            )[0]
            if len(fully_free) < task.nodes:
                return None
            chosen = fully_free[: task.nodes]
            self._free_cpus[chosen] = 0
            self._free_gpus[chosen] = 0
            return Placement(
                node_ids=chosen.tolist(),
                cpus=spec.cpus * task.nodes,
                gpus=spec.gpus * task.nodes,
            )
        fits = np.where(
            (self._free_cpus >= task.cpus) & (self._free_gpus >= task.gpus)
        )[0]
        if not len(fits):
            return None
        node = int(fits[0])
        self._free_cpus[node] -= task.cpus
        self._free_gpus[node] -= task.gpus
        return Placement(node_ids=[node], cpus=task.cpus, gpus=task.gpus)

    def _release(self, task_uid: int) -> None:
        placement = self._placements.pop(task_uid)
        spec = self.spec
        n_nodes = len(placement.node_ids)
        for node in placement.node_ids:
            self._free_cpus[node] += placement.cpus // n_nodes
            self._free_gpus[node] += placement.gpus // n_nodes
        np.minimum(self._free_cpus, spec.cpus, out=self._free_cpus)
        np.minimum(self._free_gpus, spec.gpus, out=self._free_gpus)

    # ------------------------------------------------- incremental protocol
    def validate_fits(self, task: TaskSpec) -> None:
        """Raise if ``task`` can never be placed on this pilot.

        ``cpus``/``gpus`` are per-node requests, so they must fit one node
        regardless of the node count — a multi-node task over-committing a
        node would otherwise slip through and later surface as a
        misleading "deadlock" at scheduling time.
        """
        if task.cpus > self.spec.cpus or task.gpus > self.spec.gpus:
            if task.nodes == 1:
                raise ValueError(
                    f"task {task.name} requests more than one node holds"
                )
            raise ValueError(
                f"task {task.name} requests {task.cpus} cpus/{task.gpus} gpus "
                f"per node; the node spec holds {self.spec.cpus}/{self.spec.gpus}"
            )
        if task.nodes > self.allocation.n_nodes:
            raise ValueError(
                f"task {task.name} requests {task.nodes} nodes, pilot has "
                f"{self.allocation.n_nodes}"
            )

    def _start(self, task: TaskSpec, attempt: int = 0) -> bool:
        """Place and launch one attempt; ``False`` when nothing fits."""
        placement = self.try_place(task)
        if placement is None:
            return False
        record = TaskRecord(spec=task, state=TaskState.SCHEDULED, attempt=attempt)
        record.node_ids = placement.node_ids
        self._placements[task.uid] = placement
        self.executor.start(
            record, timeout=self.retry.timeout if self.retry else None
        )
        self.records.append(record)
        self._task_spans[(task.uid, attempt)] = self.tracer.start_span(
            task.name,
            category="pilot.task",
            attrs={
                "stage": task.stage,
                "uid": task.uid,
                "attempt": attempt,
                "gpus": placement.gpus,
                "cpus": placement.cpus,
                "nodes": len(placement.node_ids),
            },
            start=self.executor.now,
        )
        self._n_running += 1
        return True

    def submit_ready(self, pending: list[TaskSpec]) -> list[TaskSpec]:
        """Greedy pass: start everything that fits; return what's left.

        Backoff-expired retries are re-driven first — they have waited
        longest and hold the workload's completion tail.
        """
        now = self.executor.now
        still_waiting: list[tuple[float, TaskSpec, int]] = []
        for eligible, task, attempt in self._retry_queue:
            if eligible > now or not self._start(task, attempt):
                still_waiting.append((eligible, task, attempt))
        self._retry_queue = still_waiting
        still_pending: list[TaskSpec] = []
        for task in pending:
            if not self._start(task):
                still_pending.append(task)
        return still_pending

    def wait_one(self) -> TaskRecord:
        """Block/advance until some running task finishes.

        Applies the retry policy: a failed attempt with retries left is
        re-queued (state :attr:`TaskState.RETRYING`, not final); an
        exhausted one is dropped or, under ``fail_fast``, raises
        :class:`TaskFailedError`.
        """
        record = self.executor.next_completion()
        placement = self._placements[record.spec.uid]
        span = self._task_spans.pop((record.spec.uid, record.attempt))
        self._release(record.spec.uid)
        self._n_running -= 1
        if record.state is TaskState.FAILED:
            span.set_error(record.error or "failed")
            if record.timed_out:
                span.set_attr("timed_out", True)
            self.failures.record_failure(record.wall_time, record.timed_out)
            if self.retry is not None and self.retry.should_retry(record.attempt):
                backoff = self.retry.backoff(record.spec.uid, record.attempt)
                span.set_attr("retried", True)
                span.finish(end=self.executor.now)
                self.failures.record_retry(backoff)
                # the backoff interval is itself a span, carrying the
                # exact policy-drawn seconds (end-start would reintroduce
                # float round-off into the reconciliation)
                self.tracer.record_span(
                    f"backoff:{record.spec.name}",
                    start=self.executor.now,
                    end=self.executor.now + backoff,
                    category="pilot.backoff",
                    attrs={
                        "stage": record.spec.stage,
                        "uid": record.spec.uid,
                        "attempt": record.attempt,
                        "seconds": backoff,
                    },
                )
                self._retry_queue.append(
                    (self.executor.now + backoff, record.spec, record.attempt + 1)
                )
                record.state = TaskState.RETRYING
            else:
                span.set_attr("dropped", True)
                span.finish(end=self.executor.now)
                self.failures.record_drop(record.spec.stage)
                if self.failure_policy == "fail_fast":
                    raise TaskFailedError(
                        f"task {record.spec.name} failed on attempt "
                        f"{record.attempt} ({record.error}); fail_fast policy",
                        record,
                    )
                if (
                    self.failure_budget is not None
                    and self.failures.n_dropped > self.failure_budget
                ):
                    raise TaskFailedError(
                        f"failure budget exceeded: {self.failures.n_dropped} "
                        f"tasks dropped, budget {self.failure_budget}",
                        record,
                    )
        elif record.state is TaskState.DONE:
            span.finish(end=self.executor.now)
            self.failures.record_success(record.attempt)
        else:
            span.finish(end=self.executor.now)
        return record

    @property
    def n_running(self) -> int:
        """Number of tasks currently executing."""
        return self._n_running

    @property
    def n_waiting_retry(self) -> int:
        """Failed tasks waiting out their backoff before re-submission."""
        return len(self._retry_queue)

    def advance_to_next_retry(self) -> None:
        """Idle the clock to the earliest retry-eligibility time."""
        if not self._retry_queue:
            raise RuntimeError("no retries waiting")
        self.executor.wait_until(min(e for e, _, _ in self._retry_queue))

    # ------------------------------------------------------------- the loop
    def run(self, tasks: list[TaskSpec]) -> list[TaskRecord]:
        """Run a workload to completion; returns records in finish order.

        The returned list holds one *final* record per task (done, or
        failed-after-retries under ``drop_and_continue``); intermediate
        failed attempts live in :attr:`records` and are tallied in
        :attr:`failures`.
        """
        for t in tasks:
            self.validate_fits(t)
        pending: list[TaskSpec] = list(tasks)
        finished: list[TaskRecord] = []
        while pending or self.n_running or self._retry_queue:
            pending = self.submit_ready(pending)
            if self.n_running == 0:
                if self._retry_queue:
                    # everything idle until some backoff expires
                    self.advance_to_next_retry()
                    continue
                raise RuntimeError(
                    "deadlock: tasks pending but nothing can be placed"
                )
            record = self.wait_one()
            if record.state is not TaskState.RETRYING:
                finished.append(record)
        return finished

    # ----------------------------------------------------------- accounting
    @property
    def utilization(self) -> UtilizationTracker:
        """Fig 7 utilization, reconstructed as a view over the trace."""
        return UtilizationTracker.from_trace(
            self.tracer, total_gpus=self._total_gpus, total_cpus=self._total_cpus
        )

    def node_hours(self) -> float:
        """Total node-hours consumed by completed tasks."""
        spec = self.spec
        return sum(
            r.node_seconds(spec.gpus, spec.cpus) / 3600.0 for r in self.records
        )

    # ------------------------------------------------------------- lifetime
    def shutdown(self) -> None:
        """Release the executor's resources (thread pool, if any)."""
        self.executor.shutdown()

    def __enter__(self) -> "Pilot":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
