"""RADICAL-Pilot analogue: pilot jobs, slot scheduling, workload runs.

The pilot paradigm (§5.2.2): submit one batch job that acquires nodes,
then schedule arbitrarily many heterogeneous tasks onto those nodes
directly — "given 10,000 single-node tasks and 1000 nodes, a pilot
system will execute 1000 tasks concurrently and … the remaining 9000
sequentially, whenever a node becomes available."  :class:`Pilot` owns
the allocation and slot bookkeeping; :meth:`Pilot.run` is exactly that
greedy backfilling loop, over either executor backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rct.cluster import Allocation, NodeSpec
from repro.rct.executor import SimExecutor, ThreadExecutor
from repro.rct.task import TaskRecord, TaskSpec, TaskState
from repro.rct.utilization import UtilizationTracker

__all__ = ["Pilot", "Placement"]


@dataclass
class Placement:
    """Slots assigned to one task."""

    node_ids: list[int]
    cpus: int
    gpus: int


class Pilot:
    """A resource pilot: slot accounting + the task scheduling loop."""

    def __init__(
        self,
        allocation: Allocation,
        executor: SimExecutor | ThreadExecutor,
    ) -> None:
        self.allocation = allocation
        self.executor = executor
        spec = allocation.spec
        n = allocation.n_nodes
        self._free_cpus = np.full(n, spec.cpus)
        self._free_gpus = np.full(n, spec.gpus)
        self._placements: dict[int, Placement] = {}
        self.records: list[TaskRecord] = []
        self.utilization = UtilizationTracker(
            total_gpus=n * spec.gpus, total_cpus=n * spec.cpus
        )

    # ------------------------------------------------------------ placement
    @property
    def spec(self) -> NodeSpec:
        """Node shape of the underlying allocation."""
        return self.allocation.spec

    def try_place(self, task: TaskSpec) -> Placement | None:
        """First-fit placement; ``None`` when resources are busy.

        Multi-node tasks take whole (fully free) nodes; sub-node tasks
        pack into partially used nodes.
        """
        spec = self.spec
        if task.nodes > 1:
            if task.cpus > spec.cpus or task.gpus > spec.gpus:
                return None
            fully_free = np.where(
                (self._free_cpus == spec.cpus) & (self._free_gpus == spec.gpus)
            )[0]
            if len(fully_free) < task.nodes:
                return None
            chosen = fully_free[: task.nodes]
            self._free_cpus[chosen] = 0
            self._free_gpus[chosen] = 0
            return Placement(
                node_ids=chosen.tolist(),
                cpus=spec.cpus * task.nodes,
                gpus=spec.gpus * task.nodes,
            )
        fits = np.where(
            (self._free_cpus >= task.cpus) & (self._free_gpus >= task.gpus)
        )[0]
        if not len(fits):
            return None
        node = int(fits[0])
        self._free_cpus[node] -= task.cpus
        self._free_gpus[node] -= task.gpus
        return Placement(node_ids=[node], cpus=task.cpus, gpus=task.gpus)

    def _release(self, task_uid: int) -> None:
        placement = self._placements.pop(task_uid)
        spec = self.spec
        n_nodes = len(placement.node_ids)
        for node in placement.node_ids:
            self._free_cpus[node] += placement.cpus // n_nodes
            self._free_gpus[node] += placement.gpus // n_nodes
        np.minimum(self._free_cpus, spec.cpus, out=self._free_cpus)
        np.minimum(self._free_gpus, spec.gpus, out=self._free_gpus)

    # ------------------------------------------------- incremental protocol
    def validate_fits(self, task: TaskSpec) -> None:
        """Raise if ``task`` can never be placed on this pilot."""
        if task.nodes == 1 and (
            task.cpus > self.spec.cpus or task.gpus > self.spec.gpus
        ):
            raise ValueError(
                f"task {task.name} requests more than one node holds"
            )
        if task.nodes > self.allocation.n_nodes:
            raise ValueError(
                f"task {task.name} requests {task.nodes} nodes, pilot has "
                f"{self.allocation.n_nodes}"
            )

    def submit_ready(self, pending: list[TaskSpec]) -> list[TaskSpec]:
        """Greedy pass: start everything that fits; return what's left."""
        still_pending: list[TaskSpec] = []
        for task in pending:
            placement = self.try_place(task)
            if placement is None:
                still_pending.append(task)
                continue
            record = TaskRecord(spec=task, state=TaskState.SCHEDULED)
            record.node_ids = placement.node_ids
            self._placements[task.uid] = placement
            self.executor.start(record)
            self.records.append(record)
            self.utilization.record_start(
                self.executor.now, placement.gpus, placement.cpus, task.stage
            )
            self._n_running = getattr(self, "_n_running", 0) + 1
        return still_pending

    def wait_one(self) -> TaskRecord:
        """Block/advance until some running task finishes."""
        record = self.executor.next_completion()
        placement = self._placements[record.spec.uid]
        self.utilization.record_end(
            self.executor.now, placement.gpus, placement.cpus, record.spec.stage
        )
        self._release(record.spec.uid)
        self._n_running -= 1
        return record

    @property
    def n_running(self) -> int:
        """Number of tasks currently executing."""
        return getattr(self, "_n_running", 0)

    # ------------------------------------------------------------- the loop
    def run(self, tasks: list[TaskSpec]) -> list[TaskRecord]:
        """Run a workload to completion; returns records in finish order."""
        for t in tasks:
            self.validate_fits(t)
        pending: list[TaskSpec] = list(tasks)
        finished: list[TaskRecord] = []
        while pending or self.n_running:
            pending = self.submit_ready(pending)
            if self.n_running == 0:
                raise RuntimeError(
                    "deadlock: tasks pending but nothing can be placed"
                )
            finished.append(self.wait_one())
        return finished

    # ----------------------------------------------------------- accounting
    def node_hours(self) -> float:
        """Total node-hours consumed by completed tasks."""
        spec = self.spec
        return sum(
            r.node_seconds(spec.gpus, spec.cpus) / 3600.0 for r in self.records
        )
