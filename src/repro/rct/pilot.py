"""RADICAL-Pilot analogue: pilot jobs, slot scheduling, workload runs.

The pilot paradigm (§5.2.2): submit one batch job that acquires nodes,
then schedule arbitrarily many heterogeneous tasks onto those nodes
directly — "given 10,000 single-node tasks and 1000 nodes, a pilot
system will execute 1000 tasks concurrently and … the remaining 9000
sequentially, whenever a node becomes available."  :class:`Pilot` owns
the allocation and slot bookkeeping; :meth:`Pilot.run` is exactly that
greedy backfilling loop, over any registered executor backend.

Placement is a pluggable policy (see :mod:`repro.rct.sched`).  The
default ``first_fit`` produces decisions bit-identical to the reference
``first_fit_scan`` O(nodes) scan while costing O(log nodes) amortized,
and :meth:`Pilot.run` drives it through an indexed pending queue whose
submission pass is O(placed + shapes) instead of O(backlog) — together
these are what let a Summit-scale (4,608-node, 10⁶-task) campaign
simulate in minutes (``benchmarks/perf_scheduler.py`` measures it and
checks the bit-identity contract).  Every completed attempt is also
appended to a columnar :class:`~repro.rct.tasklog.TaskLog`, so campaigns
too large to keep per-task objects (``keep_records=False``) still get
exact accounting and a sha256 determinism witness.

Failure handling is first-class: a :class:`~repro.rct.fault.RetryPolicy`
re-queues failed attempts after (jittered, exponential) backoff on the
executor's clock, and a propagation policy decides what happens when
retries are exhausted — ``fail_fast`` raises
:class:`~repro.rct.fault.TaskFailedError`, ``drop_and_continue`` keeps
going and reports every drop in :attr:`Pilot.failures`.  Nothing fails
silently.
"""

from __future__ import annotations

from repro.rct.backends import ExecutorBackend
from repro.rct.cluster import Allocation, NodeSpec
from repro.rct.fault import FAILURE_POLICIES, FailureSummary, RetryPolicy, TaskFailedError
from repro.rct.sched import PendingQueue, Placement, make_placer
from repro.rct.task import TaskRecord, TaskSpec, TaskState
from repro.rct.tasklog import TaskLog
from repro.rct.utilization import UtilizationTracker
from repro.telemetry import ExecutorClock, Span, Tracer

__all__ = ["Pilot", "Placement"]


class Pilot:
    """A resource pilot: slot accounting + the task scheduling loop."""

    def __init__(
        self,
        allocation: Allocation,
        executor: ExecutorBackend,
        retry: RetryPolicy | None = None,
        failure_policy: str = "drop_and_continue",
        failure_budget: int | None = None,
        tracer: Tracer | None = None,
        policy: str = "first_fit",
        keep_records: bool = True,
    ) -> None:
        if failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {failure_policy!r}"
            )
        if failure_budget is not None and failure_budget < 0:
            raise ValueError("failure_budget must be non-negative")
        self.allocation = allocation
        self.executor = executor
        self.retry = retry
        self.failure_policy = failure_policy
        self.failure_budget = failure_budget
        self.failures = FailureSummary()
        self.policy = policy
        self.keep_records = keep_records
        spec = allocation.spec
        n = allocation.n_nodes
        self._placer = make_placer(policy, n, spec)
        self._placements: dict[int, Placement] = {}
        # retry backlog: (eligible_time, task, attempt), unordered
        self._retry_queue: list[tuple[float, TaskSpec, int]] = []
        self._n_running = 0
        #: per-attempt TaskRecord objects (empty when ``keep_records=False``)
        self.records: list[TaskRecord] = []
        #: columnar log of every completed attempt — always maintained,
        #: O(bytes) per attempt, carries the determinism digest
        self.log = TaskLog()
        self._total_gpus = n * spec.gpus
        self._total_cpus = n * spec.cpus
        # The pilot is traced by default: every placement becomes a
        # "pilot.task" span (explicit executor times, so the same code
        # path is deterministic under simulation) and the utilization
        # tracker below is a pure view over those spans.  Passing
        # NULL_TRACER skips span bookkeeping entirely — at 10⁶ tasks
        # the spans, not the scheduling, would dominate.
        self.tracer = (
            tracer if tracer is not None else Tracer(clock=ExecutorClock(executor))
        )
        self._task_spans: dict[tuple[int, int], Span] = {}

    # ------------------------------------------------------------ placement
    @property
    def spec(self) -> NodeSpec:
        """Node shape of the underlying allocation."""
        return self.allocation.spec

    def try_place(self, task: TaskSpec) -> Placement | None:
        """Placement under this pilot's policy; ``None`` when busy."""
        return self._placer.try_place(task)

    def _release(self, task_uid: int) -> None:
        self._placer.release(self._placements.pop(task_uid))

    # ------------------------------------------------- incremental protocol
    def validate_fits(self, task: TaskSpec) -> None:
        """Raise if ``task`` can never be placed on this pilot.

        ``cpus``/``gpus`` are per-node requests, so they must fit one node
        regardless of the node count — a multi-node task over-committing a
        node would otherwise slip through and later surface as a
        misleading "deadlock" at scheduling time.
        """
        if task.cpus > self.spec.cpus or task.gpus > self.spec.gpus:
            if task.nodes == 1:
                raise ValueError(
                    f"task {task.name} requests more than one node holds"
                )
            raise ValueError(
                f"task {task.name} requests {task.cpus} cpus/{task.gpus} gpus "
                f"per node; the node spec holds {self.spec.cpus}/{self.spec.gpus}"
            )
        if task.nodes > self.allocation.n_nodes:
            raise ValueError(
                f"task {task.name} requests {task.nodes} nodes, pilot has "
                f"{self.allocation.n_nodes}"
            )

    def _start(self, task: TaskSpec, attempt: int = 0) -> bool:
        """Place and launch one attempt; ``False`` when nothing fits."""
        if task.uid in self._placements:
            # Slot bookkeeping is keyed by uid: silently overwriting the
            # placement of an in-flight task would leak its slots on
            # release and mis-free the other's.  This fires when two
            # logical campaigns share one pilot without namespacing their
            # uids (the global TaskSpec counter is per-process, and
            # reset_uid_counter() makes collisions trivial).
            raise ValueError(
                f"task uid {task.uid} ({task.name!r}) is already in flight "
                "on this pilot; shared-pilot submitters must namespace "
                "their uids"
            )
        placement = self._placer.try_place(task)
        if placement is None:
            return False
        record = TaskRecord(spec=task, state=TaskState.SCHEDULED, attempt=attempt)
        record.node_ids = placement.node_ids
        self._placements[task.uid] = placement
        self.executor.start(
            record, timeout=self.retry.timeout if self.retry else None
        )
        if self.keep_records:
            self.records.append(record)
        if self.tracer.enabled:
            attrs = {
                "stage": task.stage,
                "uid": task.uid,
                "attempt": attempt,
                "gpus": placement.gpus,
                "cpus": placement.cpus,
                "nodes": len(placement.node_ids),
            }
            if task.tenant:
                attrs["tenant"] = task.tenant
            self._task_spans[(task.uid, attempt)] = self.tracer.start_span(
                task.name,
                category="pilot.task",
                attrs=attrs,
                start=self.executor.now,
            )
        self._n_running += 1
        return True

    def start_task(self, task: TaskSpec, attempt: int = 0) -> bool:
        """Public single-task launch for external schedulers.

        The multi-tenant service picks which tenant's task goes next and
        grants placements one at a time; this is the sanctioned entry
        point for that (``_start`` semantics: place + launch, ``False``
        when nothing fits, :class:`ValueError` on an in-flight uid
        collision).
        """
        return self._start(task, attempt)

    def cancel_pending(self, pred) -> list[TaskSpec]:
        """Drop queued-not-running retry attempts matching ``pred``.

        Running attempts are *not* interrupted — bounded preemption only
        touches work that has not started.  Returns the cancelled specs.
        Each dropped retry is recorded as a drop in :attr:`failures` so
        the summary still reconciles (its retry was already counted when
        the backoff was scheduled).
        """
        kept: list[tuple[float, TaskSpec, int]] = []
        cancelled: list[TaskSpec] = []
        for eligible, task, attempt in self._retry_queue:
            if pred(task):
                cancelled.append(task)
                self.failures.record_drop(task.stage)
            else:
                kept.append((eligible, task, attempt))
        self._retry_queue = kept
        return cancelled

    def _submit_retries(self) -> None:
        """Re-drive backoff-expired retries, oldest first."""
        now = self.executor.now
        still_waiting: list[tuple[float, TaskSpec, int]] = []
        for eligible, task, attempt in self._retry_queue:
            if eligible > now or not self._start(task, attempt):
                still_waiting.append((eligible, task, attempt))
        self._retry_queue = still_waiting

    def submit_ready(self, pending: list[TaskSpec]) -> list[TaskSpec]:
        """Greedy pass: start everything that fits; return what's left.

        Backoff-expired retries are re-driven first — they have waited
        longest and hold the workload's completion tail.

        This is the reference O(backlog) pass (every call re-tries every
        pending task); :meth:`run` under any policy but
        ``first_fit_scan`` drives an indexed
        :class:`~repro.rct.sched.PendingQueue` instead, which makes the
        same placement decisions while visiting only placeable tasks.
        """
        self._submit_retries()
        still_pending: list[TaskSpec] = []
        for task in pending:
            if not self._start(task):
                still_pending.append(task)
        return still_pending

    def wait_one(self) -> TaskRecord:
        """Block/advance until some running task finishes.

        Applies the retry policy: a failed attempt with retries left is
        re-queued (state :attr:`TaskState.RETRYING`, not final); an
        exhausted one is dropped or, under ``fail_fast``, raises
        :class:`TaskFailedError`.
        """
        record = self.executor.next_completion()
        span = self._task_spans.pop((record.spec.uid, record.attempt), None)
        self._release(record.spec.uid)
        self._n_running -= 1
        if record.state is TaskState.FAILED:
            if span is not None:
                span.set_error(record.error or "failed")
                if record.timed_out:
                    span.set_attr("timed_out", True)
            self.failures.record_failure(record.wall_time, record.timed_out)
            if self.retry is not None and self.retry.should_retry(record.attempt):
                backoff = self.retry.backoff(record.spec.uid, record.attempt)
                if span is not None:
                    span.set_attr("retried", True)
                    span.finish(end=self.executor.now)
                self.failures.record_retry(backoff)
                if self.tracer.enabled:
                    # the backoff interval is itself a span, carrying the
                    # exact policy-drawn seconds (end-start would
                    # reintroduce float round-off into reconciliation)
                    attrs = {
                        "stage": record.spec.stage,
                        "uid": record.spec.uid,
                        "attempt": record.attempt,
                        "seconds": backoff,
                    }
                    if record.spec.tenant:
                        attrs["tenant"] = record.spec.tenant
                    self.tracer.record_span(
                        f"backoff:{record.spec.name}",
                        start=self.executor.now,
                        end=self.executor.now + backoff,
                        category="pilot.backoff",
                        attrs=attrs,
                    )
                self._retry_queue.append(
                    (self.executor.now + backoff, record.spec, record.attempt + 1)
                )
                record.state = TaskState.RETRYING
            else:
                if span is not None:
                    span.set_attr("dropped", True)
                    span.finish(end=self.executor.now)
                self.failures.record_drop(record.spec.stage)
                if self.failure_policy == "fail_fast":
                    self.log.append(record)
                    raise TaskFailedError(
                        f"task {record.spec.name} failed on attempt "
                        f"{record.attempt} ({record.error}); fail_fast policy",
                        record,
                    )
                if (
                    self.failure_budget is not None
                    and self.failures.n_dropped > self.failure_budget
                ):
                    self.log.append(record)
                    raise TaskFailedError(
                        f"failure budget exceeded: {self.failures.n_dropped} "
                        f"tasks dropped, budget {self.failure_budget}",
                        record,
                    )
        elif record.state is TaskState.DONE:
            if span is not None:
                span.finish(end=self.executor.now)
            self.failures.record_success(record.attempt)
        else:
            if span is not None:
                span.finish(end=self.executor.now)
        self.log.append(record)
        return record

    @property
    def n_running(self) -> int:
        """Number of tasks currently executing."""
        return self._n_running

    @property
    def n_waiting_retry(self) -> int:
        """Failed tasks waiting out their backoff before re-submission."""
        return len(self._retry_queue)

    def advance_to_next_retry(self) -> None:
        """Idle the clock to the earliest retry-eligibility time."""
        if not self._retry_queue:
            raise RuntimeError("no retries waiting")
        self.executor.wait_until(min(e for e, _, _ in self._retry_queue))

    # ------------------------------------------------------------- the loop
    def run(self, tasks: list[TaskSpec]) -> list[TaskRecord]:
        """Run a workload to completion; returns records in finish order.

        The returned list holds one *final* record per task (done, or
        failed-after-retries under ``drop_and_continue``); intermediate
        failed attempts live in :attr:`records` and are tallied in
        :attr:`failures`.  With ``keep_records=False`` the returned list
        is empty — :attr:`log` and :attr:`failures` carry the outcome in
        O(bytes) per task.
        """
        for t in tasks:
            self.validate_fits(t)
        if self.policy == "first_fit_scan":
            return self._run_scan(tasks)
        return self._run_indexed(tasks)

    def _run_scan(self, tasks: list[TaskSpec]) -> list[TaskRecord]:
        """Reference loop: re-scan the whole backlog after every event."""
        pending: list[TaskSpec] = list(tasks)
        finished: list[TaskRecord] = []
        while pending or self.n_running or self._retry_queue:
            pending = self.submit_ready(pending)
            if self.n_running == 0:
                if self._retry_queue:
                    # everything idle until some backoff expires
                    self.advance_to_next_retry()
                    continue
                raise RuntimeError(
                    "deadlock: tasks pending but nothing can be placed"
                )
            record = self.wait_one()
            if record.state is not TaskState.RETRYING and self.keep_records:
                finished.append(record)
        return finished

    def _run_indexed(self, tasks: list[TaskSpec]) -> list[TaskRecord]:
        """Indexed loop: shape-keyed backlog, O(placed + shapes) passes.

        Makes placement decisions identical to :meth:`_run_scan` (same
        tasks started in the same order at every event — see
        :class:`~repro.rct.sched.PendingQueue` for the argument), so for
        a fixed seed/backend/policy the task log digest, failure
        summary and exported trace are bit-identical to the reference.
        """
        queue = PendingQueue()
        for t in tasks:
            queue.push(t)
        finished: list[TaskRecord] = []
        while len(queue) or self.n_running or self._retry_queue:
            self._submit_retries()
            queue.submit_pass(self._start)
            if self.n_running == 0:
                if self._retry_queue:
                    self.advance_to_next_retry()
                    continue
                raise RuntimeError(
                    "deadlock: tasks pending but nothing can be placed"
                )
            record = self.wait_one()
            if record.state is not TaskState.RETRYING and self.keep_records:
                finished.append(record)
        return finished

    # ----------------------------------------------------------- accounting
    @property
    def utilization(self) -> UtilizationTracker:
        """Fig 7 utilization, reconstructed as a view over the trace."""
        return UtilizationTracker.from_trace(
            self.tracer, total_gpus=self._total_gpus, total_cpus=self._total_cpus
        )

    def node_hours(self) -> float:
        """Total node-hours consumed by completed task attempts."""
        spec = self.spec
        return self.log.node_seconds_total(spec.gpus, spec.cpus) / 3600.0

    # ------------------------------------------------------------- lifetime
    def shutdown(self) -> None:
        """Release the executor's resources (thread pool, if any)."""
        self.executor.shutdown()

    def __enter__(self) -> "Pilot":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
