"""Slot placement policies and the indexed pending queue.

At Summit scale the *simulator* is the hot path: a 4,608-node ×
10⁶-task campaign makes one placement decision and one release per task
attempt, and the seed implementation paid an O(nodes) NumPy scan for
every one of them — plus an O(pending) sweep of the whole backlog after
every completion.  This module replaces both with indexed structures
while keeping the *placement decisions bit-identical* to the reference
scan (the hard contract ``benchmarks/perf_scheduler.py`` enforces):

* :class:`ScanPlacer` — the pre-optimization first-fit scan, kept as
  the oracle and as the ``first_fit_scan`` policy;
* :class:`IndexedPlacer` — the same first-fit decisions from lazy
  per-shape min-heaps of candidate nodes: O(log nodes) amortized per
  placement/release instead of O(nodes);
* :class:`HeteroPlacer` — heterogeneous CPU/GPU-aware packing for the
  policy shootout: CPU-only tasks steer to GPU-poor nodes so GPU slots
  stay placeable;
* :class:`PendingQueue` — shape-keyed FIFOs whose submission pass
  visits O(placed + shapes) tasks instead of the whole backlog, while
  reproducing the reference "try every pending task in submission
  order" semantics exactly (resources only shrink within a pass, so
  once a shape fails every later task of that shape fails too).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.rct.cluster import NodeSpec
from repro.rct.task import TaskSpec

__all__ = [
    "Placement",
    "ScanPlacer",
    "IndexedPlacer",
    "HeteroPlacer",
    "PendingQueue",
    "PLACEMENT_POLICIES",
    "make_placer",
]


@dataclass
class Placement:
    """Slots assigned to one task."""

    node_ids: list[int]
    cpus: int
    gpus: int


class ScanPlacer:
    """Reference first-fit placement: O(nodes) NumPy scan per decision.

    This is the seed ``Pilot.try_place`` verbatim — kept both as the
    ``first_fit_scan`` policy (the benchmark's pre-optimization
    baseline) and as the oracle the indexed placer is fuzzed against.
    """

    def __init__(self, n_nodes: int, spec: NodeSpec) -> None:
        self.spec = spec
        self.n_nodes = n_nodes
        self._free_cpus = np.full(n_nodes, spec.cpus)
        self._free_gpus = np.full(n_nodes, spec.gpus)

    def try_place(self, task: TaskSpec) -> Placement | None:
        """First-fit placement; ``None`` when resources are busy.

        Multi-node tasks take whole (fully free) nodes; sub-node tasks
        pack into partially used nodes.
        """
        spec = self.spec
        if task.nodes > 1:
            if task.cpus > spec.cpus or task.gpus > spec.gpus:
                return None
            fully_free = np.where(
                (self._free_cpus == spec.cpus) & (self._free_gpus == spec.gpus)
            )[0]
            if len(fully_free) < task.nodes:
                return None
            chosen = fully_free[: task.nodes]
            self._free_cpus[chosen] = 0
            self._free_gpus[chosen] = 0
            return Placement(
                node_ids=chosen.tolist(),
                cpus=spec.cpus * task.nodes,
                gpus=spec.gpus * task.nodes,
            )
        fits = np.where(
            (self._free_cpus >= task.cpus) & (self._free_gpus >= task.gpus)
        )[0]
        if not len(fits):
            return None
        node = int(fits[0])
        self._free_cpus[node] -= task.cpus
        self._free_gpus[node] -= task.gpus
        return Placement(node_ids=[node], cpus=task.cpus, gpus=task.gpus)

    def release(self, placement: Placement) -> None:
        """Return a placement's slots to the free pool."""
        spec = self.spec
        n_nodes = len(placement.node_ids)
        for node in placement.node_ids:
            self._free_cpus[node] += placement.cpus // n_nodes
            self._free_gpus[node] += placement.gpus // n_nodes
        np.minimum(self._free_cpus, spec.cpus, out=self._free_cpus)
        np.minimum(self._free_gpus, spec.gpus, out=self._free_gpus)

    def free_cpus(self) -> np.ndarray:
        """Per-node free CPU slots (a copy; for inspection/tests)."""
        return np.asarray(self._free_cpus).copy()

    def free_gpus(self) -> np.ndarray:
        """Per-node free GPU slots (a copy; for inspection/tests)."""
        return np.asarray(self._free_gpus).copy()


class IndexedPlacer:
    """First-fit placement from lazy per-shape candidate heaps.

    For every request shape ``(cpus, gpus)`` seen so far, a min-heap of
    node ids maintains the invariant *every node that currently fits the
    shape is in the heap* (possibly alongside stale entries, which are
    discarded on contact).  First-fit-lowest-index is then a peek at the
    heap top; a release pushes the node back into each shape heap it now
    fits.  A membership bitmap per shape bounds every heap at one entry
    per node, so a full-cluster miss costs one amortized drain rather
    than unbounded growth.

    Placement decisions are bit-identical to :class:`ScanPlacer` —
    same node, same order, for any interleaving of placements and
    releases (fuzzed in ``tests/rct/test_sched.py``).
    """

    def __init__(self, n_nodes: int, spec: NodeSpec) -> None:
        self.spec = spec
        self.n_nodes = n_nodes
        self._free_cpus = [spec.cpus] * n_nodes
        self._free_gpus = [spec.gpus] * n_nodes
        # shape (cpus, gpus) → (candidate min-heap, membership bitmap)
        self._shapes: dict[tuple[int, int], tuple[list[int], bytearray]] = {}
        # whole-node allocation pool for multi-node (MPI) tasks
        self._fully_free: list[int] = list(range(n_nodes))  # already a heap
        self._fully_free_in = bytearray(b"\x01" * n_nodes)

    # ------------------------------------------------------------ internals
    def _shape(self, cpus: int, gpus: int) -> tuple[list[int], bytearray]:
        entry = self._shapes.get((cpus, gpus))
        if entry is None:
            # list(range(n)) is already heap-ordered; every node is a
            # candidate until proven stale
            entry = (list(range(self.n_nodes)), bytearray(b"\x01" * self.n_nodes))
            self._shapes[(cpus, gpus)] = entry
        return entry

    def _place_multi(self, task: TaskSpec) -> Placement | None:
        spec = self.spec
        if task.cpus > spec.cpus or task.gpus > spec.gpus:
            return None
        heap, member = self._fully_free, self._fully_free_in
        chosen: list[int] = []
        while heap and len(chosen) < task.nodes:
            node = heapq.heappop(heap)
            member[node] = 0
            if (
                self._free_cpus[node] == spec.cpus
                and self._free_gpus[node] == spec.gpus
            ):
                chosen.append(node)
            # stale entries (partially busy nodes) are simply dropped;
            # they re-enter when a release makes them fully free again
        if len(chosen) < task.nodes:
            for node in chosen:
                heapq.heappush(heap, node)
                member[node] = 1
            return None
        for node in chosen:
            self._free_cpus[node] = 0
            self._free_gpus[node] = 0
        return Placement(
            node_ids=chosen,
            cpus=spec.cpus * task.nodes,
            gpus=spec.gpus * task.nodes,
        )

    # ------------------------------------------------------------ placement
    def try_place(self, task: TaskSpec) -> Placement | None:
        """First-fit placement; ``None`` when resources are busy."""
        if task.nodes > 1:
            return self._place_multi(task)
        heap, member = self._shape(task.cpus, task.gpus)
        free_cpus, free_gpus = self._free_cpus, self._free_gpus
        while heap:
            node = heap[0]
            if free_cpus[node] >= task.cpus and free_gpus[node] >= task.gpus:
                free_cpus[node] -= task.cpus
                free_gpus[node] -= task.gpus
                if free_cpus[node] < task.cpus or free_gpus[node] < task.gpus:
                    heapq.heappop(heap)
                    member[node] = 0
                return Placement(node_ids=[node], cpus=task.cpus, gpus=task.gpus)
            heapq.heappop(heap)
            member[node] = 0
        return None

    def release(self, placement: Placement) -> None:
        """Return a placement's slots and re-index the freed nodes."""
        spec = self.spec
        n_nodes = len(placement.node_ids)
        d_cpus = placement.cpus // n_nodes
        d_gpus = placement.gpus // n_nodes
        for node in placement.node_ids:
            cpus = min(spec.cpus, self._free_cpus[node] + d_cpus)
            gpus = min(spec.gpus, self._free_gpus[node] + d_gpus)
            self._free_cpus[node] = cpus
            self._free_gpus[node] = gpus
            for (s_cpus, s_gpus), (heap, member) in self._shapes.items():
                if not member[node] and cpus >= s_cpus and gpus >= s_gpus:
                    heapq.heappush(heap, node)
                    member[node] = 1
            if (
                not self._fully_free_in[node]
                and cpus == spec.cpus
                and gpus == spec.gpus
            ):
                heapq.heappush(self._fully_free, node)
                self._fully_free_in[node] = 1

    def free_cpus(self) -> np.ndarray:
        """Per-node free CPU slots (a copy; for inspection/tests)."""
        return np.array(self._free_cpus)

    def free_gpus(self) -> np.ndarray:
        """Per-node free GPU slots (a copy; for inspection/tests)."""
        return np.array(self._free_gpus)


class HeteroPlacer(ScanPlacer):
    """Heterogeneous CPU/GPU-aware packing (policy-shootout entrant).

    GPU-requesting and multi-node tasks place first-fit exactly like the
    reference.  CPU-only tasks instead steer to the fitting node with
    the *fewest* free GPUs (lowest id on ties): CPU work soaks up the
    CPU slack of nodes whose GPUs are already committed, keeping
    GPU-rich nodes placeable for the docking/MD streams — the mixed
    CPU+GPU workload shape of the paper's integrated Fig 7 run.
    """

    def try_place(self, task: TaskSpec) -> Placement | None:
        """GPU-aware placement; ``None`` when resources are busy."""
        if task.nodes > 1 or task.gpus > 0:
            return super().try_place(task)
        fits = np.where(self._free_cpus >= task.cpus)[0]
        if not len(fits):
            return None
        node = int(fits[np.argmin(self._free_gpus[fits])])
        self._free_cpus[node] -= task.cpus
        return Placement(node_ids=[node], cpus=task.cpus, gpus=0)


#: placement policies the pilot accepts (the shootout sweeps them)
PLACEMENT_POLICIES = {
    "first_fit": IndexedPlacer,
    "first_fit_scan": ScanPlacer,
    "hetero": HeteroPlacer,
}


def make_placer(policy: str, n_nodes: int, spec: NodeSpec):
    """Build the placer registered for ``policy``."""
    try:
        cls = PLACEMENT_POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown placement policy {policy!r}; "
            f"available: {sorted(PLACEMENT_POLICIES)}"
        ) from None
    return cls(n_nodes, spec)


class PendingQueue:
    """Shape-indexed task backlog with an O(placed + shapes) submit pass.

    The reference scheduling loop re-scans the *entire* pending list
    after every completion — O(backlog) per event, quadratic over a
    campaign.  This queue keys the backlog by placement shape
    ``(cpus, gpus, nodes)`` and merges the per-shape FIFO heads by
    global submission order.  One pass pops tasks in exactly the order
    the reference scan would have placed them: within a pass resources
    only shrink, so the first placement failure of a shape proves every
    later task of that shape would fail too, and the shape drops out of
    the pass instead of being re-tried task by task.
    """

    def __init__(self) -> None:
        self._queues: dict[tuple[int, int, int], deque] = {}
        self._order = itertools.count()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def push(self, task: TaskSpec) -> None:
        """Append a task in global submission order."""
        key = (task.cpus, task.gpus, task.nodes)
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = deque()
        queue.append((next(self._order), task))
        self._count += 1

    def try_start_one(self, try_start: Callable[[TaskSpec], bool]) -> TaskSpec | None:
        """Start at most one task; returns it, or ``None`` if nothing fits.

        Shape heads are visited in global submission order, exactly like
        one step of :meth:`submit_pass`: the oldest pending task is tried
        first, and a shape whose head fails placement proves nothing of
        that shape fits, so the pass moves to the next-oldest shape head.
        The fair-share scheduler of the multi-tenant service uses this to
        grant one placement at a time to the tenant the share policy
        picked, instead of letting one tenant's greedy pass drain the
        cluster.
        """
        heads = [
            (queue[0][0], key) for key, queue in self._queues.items() if queue
        ]
        heapq.heapify(heads)
        while heads:
            _, key = heapq.heappop(heads)
            queue = self._queues[key]
            if try_start(queue[0][1]):
                task = queue.popleft()[1]
                self._count -= 1
                return task
        return None

    def drop_where(self, pred: Callable[[TaskSpec], bool]) -> list[TaskSpec]:
        """Remove every queued task matching ``pred``; returns them.

        Cancellation of queued-not-running work: relative submission
        order of the surviving tasks is preserved (their global order
        stamps are untouched).
        """
        dropped: list[TaskSpec] = []
        for key, queue in self._queues.items():
            kept: deque = deque()
            for order, task in queue:
                if pred(task):
                    dropped.append(task)
                else:
                    kept.append((order, task))
            self._queues[key] = kept
        self._count -= len(dropped)
        return dropped

    def submit_pass(self, try_start: Callable[[TaskSpec], bool]) -> int:
        """Run one greedy submission pass; returns tasks started.

        ``try_start`` must attempt placement+launch and return whether
        it succeeded (without consuming the task on failure).
        """
        heads = [
            (queue[0][0], key) for key, queue in self._queues.items() if queue
        ]
        heapq.heapify(heads)
        started = 0
        while heads:
            _, key = heapq.heappop(heads)
            queue = self._queues[key]
            if not try_start(queue[0][1]):
                continue  # this shape no longer fits anywhere this pass
            queue.popleft()
            self._count -= 1
            started += 1
            if queue:
                heapq.heappush(heads, (queue[0][0], key))
        return started
