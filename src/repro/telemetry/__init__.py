"""Unified tracing, metrics, and kernel profiling for the campaign stack.

One trace schema spans every layer: pilot scheduling and placement,
RAPTOR dispatch/retry/backoff, docking kernel phases, per-op graph
execution, and campaign stage boundaries — whether the run is a real
thread-pool execution on :class:`~repro.util.timer.WallClock` or a
discrete-event simulation on a virtual clock.  See ``DESIGN.md``
("Observability") for the schema and the clock-duality contract.
"""

from repro.telemetry.export import (
    chrome_trace_json,
    summary_table,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    ExecutorClock,
    NullTracer,
    Span,
    TickClock,
    Tracer,
)

__all__ = [
    "Tracer",
    "Span",
    "NullTracer",
    "NULL_TRACER",
    "TickClock",
    "ExecutorClock",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "to_chrome_trace",
    "chrome_trace_json",
    "validate_chrome_trace",
    "to_jsonl",
    "summary_table",
]
