"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry replaces the scattered tallies that used to live in ad-hoc
attributes (`DockingEngine.total_evals`, per-stage dicts in
``repro.core.metrics``): instrumented components get-or-create named
instruments on their tracer's registry, and :meth:`MetricsRegistry.snapshot`
renders everything into one deterministic, JSON-ready dict that the
exporters embed alongside the span timeline.

Histograms use *fixed* bucket boundaries chosen at creation, so two runs
that observe the same values produce identical snapshots — no dynamic
rebucketing, no float drift.
"""

from __future__ import annotations

import threading
from bisect import bisect_right

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
]


class Counter:
    """Monotonically increasing tally."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-written value (resource levels, config echoes)."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


# Default boundaries suit span durations in seconds across both clocks:
# sub-millisecond kernel phases up through multi-minute campaign stages.
DEFAULT_BUCKETS = (
    0.0001,
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
    60.0,
    600.0,
)


class Histogram:
    """Fixed-boundary histogram with count/sum/min/max.

    ``boundaries`` are upper-inclusive-exclusive edges: an observation
    lands in the first bucket whose boundary is strictly greater than
    it; values past the last boundary land in the overflow bucket.
    """

    kind = "histogram"

    def __init__(self, name: str, boundaries=DEFAULT_BUCKETS) -> None:
        if list(boundaries) != sorted(boundaries):
            raise ValueError("histogram boundaries must be sorted")
        self.name = name
        self.boundaries = tuple(float(b) for b in boundaries)
        self.counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Get-or-create store of named instruments.

    Re-requesting a name returns the existing instrument; requesting it
    as a different kind raises, catching cross-component name clashes.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, factory, kind: str):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = factory()
            elif inst.kind != kind:
                raise TypeError(
                    f"metric {name!r} already registered as {inst.kind}, "
                    f"requested as {kind}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name), "gauge")

    def histogram(self, name: str, boundaries=DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, lambda: Histogram(name, boundaries), "histogram")

    def snapshot(self) -> dict:
        """All instruments, keyed and ordered by name (deterministic)."""
        with self._lock:
            return {
                name: self._instruments[name].snapshot()
                for name in sorted(self._instruments)
            }

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments


class _NullInstrument:
    """Accepts every instrument method as a no-op."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Disabled registry: every instrument is the shared no-op."""

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, boundaries=DEFAULT_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {}

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False
