"""Span-based tracing over real and simulated clocks.

One tracer API serves every execution mode in the stack:

* **context-manager spans** (``with tracer.span(...)``) for straight-line
  code — campaign stage boundaries, docking kernel phases, per-op
  execution in the graph engine;
* **manual spans** (``tracer.start_span`` … ``span.finish``) for
  event-driven code like the pilot's scheduling loop, where a task's
  start and end are observed in different calls;
* **pre-timed spans** (``tracer.record_span``) for discrete-event
  simulations that already computed both endpoints on their virtual
  clock (RAPTOR's event loop).

The clock-duality contract: a span's timestamps come either from the
tracer's injected clock (any object with a ``now() -> float`` method —
:class:`~repro.util.timer.WallClock`, :class:`TickClock`, or
:class:`ExecutorClock` wrapping an executor's virtual ``now``) or from
explicit ``start``/``end`` arguments.  Code that only ever passes
explicit executor times is therefore *identical* under simulation and
real execution, and a simulated run's trace is a pure function of seed
and config: every span id and sequence number comes from a counter, and
no wall-clock value leaks in.  Same seed ⇒ byte-identical exports.

Disabled instrumentation is one branch: :data:`NULL_TRACER` exposes
``enabled = False`` and no-ops every method, so hot loops guard with
``if tracer.enabled:`` (or just pay one no-op context manager).
"""

from __future__ import annotations

import threading
from typing import Iterator

from repro.telemetry.metrics import MetricsRegistry, NullMetricsRegistry
from repro.util.timer import WallClock

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TickClock",
    "ExecutorClock",
]


class TickClock:
    """Deterministic logical clock: each ``now()`` advances a fixed tick.

    Substituting this for :class:`~repro.util.timer.WallClock` makes a
    real (computed, not simulated) code path emit reproducible span
    times — the number of clock reads is a pure function of control
    flow, which is itself seeded.  The traced demo campaign and the
    determinism tests run on it.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.001) -> None:
        if tick <= 0:
            raise ValueError("tick must be positive")
        self._t = start
        self.tick = tick

    def now(self) -> float:
        """Advance one tick and return the new time."""
        self._t += self.tick
        return self._t


class ExecutorClock:
    """Adapter presenting an executor's ``now`` attribute as a clock."""

    def __init__(self, executor) -> None:
        self._executor = executor

    def now(self) -> float:
        """The executor's current (virtual or wall) time."""
        return self._executor.now


class Span:
    """One traced interval: name, category, times, attributes, events.

    ``status`` is ``"ok"`` until :meth:`set_error` flips it; ``events``
    are point-in-time annotations inside the span.  ``seq_start`` /
    ``seq_end`` are tracer-global monotonic sequence numbers assigned at
    creation and finish — they preserve *program order* (which clock
    ties cannot), letting trace consumers reconstruct insertion-ordered
    event streams exactly (see ``UtilizationTracker.from_trace``).
    """

    __slots__ = (
        "name",
        "category",
        "start",
        "end",
        "attrs",
        "events",
        "status",
        "error",
        "span_id",
        "parent_id",
        "seq_start",
        "seq_end",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        start: float,
        attrs: dict | None,
        span_id: int,
        parent_id: int | None,
        seq_start: int,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.start = start
        self.end: float | None = None
        self.attrs = dict(attrs) if attrs else {}
        self.events: list[tuple[float, str, dict]] = []
        self.status = "ok"
        self.error: str | None = None
        self.span_id = span_id
        self.parent_id = parent_id
        self.seq_start = seq_start
        self.seq_end: int | None = None

    @property
    def duration(self) -> float:
        """Span length in clock seconds (0 while unfinished)."""
        return 0.0 if self.end is None else self.end - self.start

    def set_attr(self, key: str, value) -> None:
        """Attach/overwrite one attribute."""
        self.attrs[key] = value

    def add_event(self, name: str, time: float | None = None, **attrs) -> None:
        """Record a point-in-time event inside the span."""
        if time is None:
            time = self._tracer._now()
        self.events.append((time, name, attrs))

    def set_error(self, message: str) -> None:
        """Mark the span failed; exporters surface status + message."""
        self.status = "error"
        self.error = message

    def finish(self, end: float | None = None) -> None:
        """Close the span (idempotent); ``end`` defaults to the clock."""
        if self.end is not None:
            return
        self._tracer._finish(self, end)

    # ------------------------------------------------- context manager
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc is not None and self.status == "ok":
            self.set_error(f"{exc_type.__name__}: {exc}")
        self._tracer._exit_span(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, cat={self.category!r}, start={self.start}, "
            f"end={self.end}, status={self.status!r})"
        )


class Tracer:
    """Collects spans and metrics over one injected clock.

    Thread-safe: the thread-pool backends record spans concurrently, so
    id/sequence allocation and the finished list are lock-protected, and
    the context-manager nesting stack is thread-local (a span's parent
    is whatever span the *same thread* currently has open).
    """

    enabled = True

    def __init__(
        self,
        clock=None,
        metrics: MetricsRegistry | None = None,
        log_spans: bool = False,
    ) -> None:
        self.clock = clock if clock is not None else WallClock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.finished: list[Span] = []
        self._active: dict[int, Span] = {}
        self._lock = threading.Lock()
        self._next_id = 1
        self._next_seq = 0
        self._local = threading.local()
        self._log = None
        if log_spans:
            from repro.util.log import get_logger

            self._log = get_logger("telemetry")

    # ------------------------------------------------------- internals
    def _now(self) -> float:
        return self.clock.now()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(
        self,
        name: str,
        category: str,
        attrs: dict | None,
        start: float | None,
        parent: Span | None,
    ) -> Span:
        if start is None:
            start = self._now()
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            seq = self._next_seq
            self._next_seq += 1
            span = Span(
                self,
                name,
                category,
                start,
                attrs,
                span_id,
                parent.span_id if parent is not None else None,
                seq,
            )
            self._active[span_id] = span
        if self._log is not None:
            self._log.debug("span enter %s/%s @ %.6f", category, name, start)
        return span

    def _finish(self, span: Span, end: float | None) -> None:
        if end is None:
            end = self._now()
        with self._lock:
            span.end = end
            span.seq_end = self._next_seq
            self._next_seq += 1
            self._active.pop(span.span_id, None)
            self.finished.append(span)
        if self._log is not None:
            self._log.debug(
                "span exit %s/%s @ %.6f (%s)",
                span.category,
                span.name,
                end,
                span.status,
            )

    def _exit_span(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        span.finish()

    # ------------------------------------------------------ public API
    def span(
        self, name: str, category: str = "", attrs: dict | None = None, **kw
    ) -> Span:
        """Open a nested span for use as a context manager.

        The span starts now, becomes the current thread's innermost
        parent, and closes (recording error status if an exception flew)
        on ``__exit__``.  Keyword arguments merge into ``attrs``.
        """
        if kw:
            attrs = {**(attrs or {}), **kw}
        span = self._open(name, category, attrs, None, None)
        self._stack().append(span)
        return span

    def start_span(
        self,
        name: str,
        category: str = "",
        attrs: dict | None = None,
        start: float | None = None,
        **kw,
    ) -> Span:
        """Open a *manual* span for event-driven code.

        Unlike :meth:`span` it does not join the nesting stack (its
        parent is the caller's current span, but it will not become
        anyone else's parent); the caller closes it with
        :meth:`Span.finish`, optionally passing an explicit ``end``.
        """
        if kw:
            attrs = {**(attrs or {}), **kw}
        return self._open(name, category, attrs, start, None)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        category: str = "",
        attrs: dict | None = None,
        status: str = "ok",
        error: str | None = None,
    ) -> Span:
        """Record an already-timed span (discrete-event simulations)."""
        span = self._open(name, category, attrs, start, None)
        if status != "ok":
            span.set_error(error or status)
        self._finish(span, end)
        return span

    # ------------------------------------------------------- inspection
    def active_spans(self) -> list[Span]:
        """Open (unfinished) spans, in creation order."""
        with self._lock:
            return sorted(self._active.values(), key=lambda s: s.seq_start)

    def spans(self, category: str | None = None) -> Iterator[Span]:
        """Finished spans in (start, program-order) timeline order."""
        with self._lock:
            snapshot = list(self.finished)
        for span in sorted(snapshot, key=lambda s: (s.start, s.seq_start)):
            if category is None or span.category == category:
                yield span

    def categories(self) -> set[str]:
        """Distinct categories across finished spans."""
        with self._lock:
            return {s.category for s in self.finished}


class _NullSpan:
    """Inert span: every method is a no-op; shared singleton."""

    __slots__ = ()
    name = ""
    category = ""
    start = 0.0
    end = 0.0
    attrs: dict = {}
    events: list = []
    status = "ok"
    error = None
    duration = 0.0

    def set_attr(self, key: str, value) -> None:
        pass

    def add_event(self, name: str, time: float | None = None, **attrs) -> None:
        pass

    def set_error(self, message: str) -> None:
        pass

    def finish(self, end: float | None = None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: ``enabled`` is False and every call no-ops.

    Hot paths pay exactly one attribute check (``if tracer.enabled:``)
    or one no-op context manager — nothing is allocated, timed or
    stored.  Use the module-level :data:`NULL_TRACER` singleton.
    """

    enabled = False

    def __init__(self) -> None:
        self.metrics = NullMetricsRegistry()
        self.finished: list[Span] = []

    def span(self, name: str, category: str = "", attrs=None, **kw) -> _NullSpan:
        return _NULL_SPAN

    def start_span(
        self, name: str, category: str = "", attrs=None, start=None, **kw
    ) -> _NullSpan:
        return _NULL_SPAN

    def record_span(
        self, name, start, end, category="", attrs=None, status="ok", error=None
    ) -> _NullSpan:
        return _NULL_SPAN

    def active_spans(self) -> list:
        return []

    def spans(self, category: str | None = None) -> Iterator[Span]:
        return iter(())

    def categories(self) -> set[str]:
        return set()


NULL_TRACER = NullTracer()
