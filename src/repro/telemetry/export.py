"""Trace exporters: Chrome trace-event JSON, JSONL, terminal summary.

All exporters walk the tracer's finished spans in timeline order
(``(start, seq_start)`` — clock time with program order breaking ties)
and serialise with ``sort_keys=True`` and fixed separators, so a
deterministic trace (simulated clock or :class:`~repro.telemetry.tracer.
TickClock`) exports to *byte-identical* output across runs.

The Chrome format targets ``chrome://tracing`` / Perfetto: each span
category becomes a named "thread" row (metadata ``M`` events), spans are
complete ``X`` events with microsecond ``ts``/``dur``, span events
become instant ``i`` events, and the metrics snapshot rides along under
``otherData``.
"""

from __future__ import annotations

import json

__all__ = [
    "to_chrome_trace",
    "chrome_trace_json",
    "validate_chrome_trace",
    "to_jsonl",
    "summary_table",
]

_PID = 1
_US = 1_000_000.0


def _us(seconds: float) -> float:
    """Seconds → microseconds, rounded to fixed precision (nanoseconds)
    so float formatting is stable across platforms."""
    return round(seconds * _US, 3)


def _ordered_spans(tracer):
    return sorted(tracer.finished, key=lambda s: (s.start, s.seq_start))


def _tids(tracer) -> dict[str, int]:
    """Category → stable small thread id, in sorted category order."""
    cats = sorted({s.category for s in tracer.finished})
    return {cat: i for i, cat in enumerate(cats)}


def to_chrome_trace(tracer) -> dict:
    """Render the trace as a Chrome trace-event object (JSON-ready)."""
    tids = _tids(tracer)
    events: list[dict] = []
    for cat, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": cat or "(uncategorized)"},
            }
        )
    for span in _ordered_spans(tracer):
        tid = tids[span.category]
        args = dict(span.attrs)
        args["status"] = span.status
        if span.error is not None:
            args["error"] = span.error
        events.append(
            {
                "ph": "X",
                "pid": _PID,
                "tid": tid,
                "name": span.name,
                "cat": span.category,
                "ts": _us(span.start),
                "dur": _us(span.end - span.start),
                "args": args,
            }
        )
        for time, name, attrs in span.events:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": _PID,
                    "tid": tid,
                    "name": name,
                    "cat": span.category,
                    "ts": _us(time),
                    "args": dict(attrs),
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"metrics": tracer.metrics.snapshot()},
    }


def chrome_trace_json(tracer) -> str:
    """Canonical byte-stable serialisation of :func:`to_chrome_trace`."""
    return json.dumps(
        to_chrome_trace(tracer), sort_keys=True, separators=(",", ":")
    )


def validate_chrome_trace(data: dict) -> list[str]:
    """Structural checks on an exported trace; returns problem strings.

    An empty list means the trace is loadable by ``chrome://tracing``:
    required keys present, durations non-negative, complete events carry
    numeric timestamps, and every ``X``/``i`` event's category has a
    thread-name metadata row.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["trace root must be an object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    named_tids = set()
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            named_tids.add(ev.get("tid"))
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in ("M", "X", "i"):
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"event {i}: missing name")
        if not isinstance(ev.get("ts"), (int, float)):
            problems.append(f"event {i}: non-numeric ts")
        if ev.get("tid") not in named_tids:
            problems.append(f"event {i}: tid {ev.get('tid')!r} has no thread_name")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)):
                problems.append(f"event {i}: non-numeric dur")
            elif dur < 0:
                problems.append(f"event {i}: negative dur {dur}")
    return problems


def to_jsonl(tracer) -> str:
    """Flat JSONL event log: one span per line, timeline-ordered."""
    lines = []
    for span in _ordered_spans(tracer):
        record = {
            "name": span.name,
            "cat": span.category,
            "start": span.start,
            "end": span.end,
            "status": span.status,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "attrs": span.attrs,
        }
        if span.error is not None:
            record["error"] = span.error
        if span.events:
            record["events"] = [
                {"time": t, "name": n, "attrs": a} for t, n, a in span.events
            ]
        lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + ("\n" if lines else "")


def summary_table(tracer) -> str:
    """Aggregate spans by (category, name) into an aligned text table."""
    groups: dict[tuple[str, str], list] = {}
    for span in tracer.finished:
        groups.setdefault((span.category, span.name), []).append(span)

    header = ("category", "name", "count", "errors", "total_s", "mean_s", "max_s")
    rows = [header]
    for (cat, name), spans in sorted(groups.items()):
        durs = [s.end - s.start for s in spans]
        total = sum(durs)
        rows.append(
            (
                cat or "-",
                name,
                str(len(spans)),
                str(sum(1 for s in spans if s.status == "error")),
                f"{total:.4f}",
                f"{total / len(spans):.4f}",
                f"{max(durs):.4f}",
            )
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = []
    for j, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))

    snap = tracer.metrics.snapshot()
    if snap:
        lines.append("")
        lines.append("metrics:")
        for name, inst in snap.items():
            if inst.get("kind") == "histogram":
                lines.append(
                    f"  {name}: n={inst['count']} sum={inst['sum']:.4f} "
                    f"min={inst['min']} max={inst['max']}"
                )
            else:
                lines.append(f"  {name}: {inst['value']}")
    return "\n".join(lines)
