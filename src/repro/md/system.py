"""MD system model: beads, topology and state.

The OpenMM/NAMD substitute is a coarse-grained bead model: the protein is
a Cα chain held near its fold by a Gō-like elastic network, the ligand is
one bead per heavy atom, and the complex lives in a confining sphere (a
droplet, no periodic boundary conditions).  This is the smallest model
that still produces what ESMACS and DeepDriveMD consume: thermally
fluctuating protein–ligand trajectories with meaningful interaction
energies, RMSD spreads and contact statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MDSystem", "Topology"]


@dataclass
class Topology:
    """Bonded structure and bead parameters (immutable during a run)."""

    masses: np.ndarray  # (n,) amu
    charges: np.ndarray  # (n,) e
    hydro: np.ndarray  # (n,) hydrophobicity in [-1, 1]
    radii: np.ndarray  # (n,) angstrom
    bonds: np.ndarray  # (nb, 2) int indices
    bond_lengths: np.ndarray  # (nb,) rest lengths
    bond_k: np.ndarray  # (nb,) kcal/mol/A^2
    protein_atoms: np.ndarray  # int indices
    ligand_atoms: np.ndarray  # int indices

    def __post_init__(self) -> None:
        n = len(self.masses)
        for name in ("charges", "hydro", "radii"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} length != masses length")
        if len(self.bonds) != len(self.bond_lengths) or len(self.bonds) != len(
            self.bond_k
        ):
            raise ValueError("bond arrays must share a length")
        if len(self.bonds) and self.bonds.max() >= n:
            raise ValueError("bond references missing bead")
        overlap = set(self.protein_atoms.tolist()) & set(self.ligand_atoms.tolist())
        if overlap:
            raise ValueError(f"beads in both protein and ligand: {sorted(overlap)}")

    @property
    def n_atoms(self) -> int:
        """Number of atoms (beads)."""
        return len(self.masses)

    def exclusion_mask(self) -> np.ndarray:
        """(n, n) boolean: True where the nonbonded term is excluded
        (self pairs and directly bonded pairs).  Cached — topology is
        immutable during a run and this sits on the force hot path."""
        cached = getattr(self, "_exclusion_cache", None)
        if cached is None:
            n = self.n_atoms
            mask = np.eye(n, dtype=bool)
            if len(self.bonds):
                mask[self.bonds[:, 0], self.bonds[:, 1]] = True
                mask[self.bonds[:, 1], self.bonds[:, 0]] = True
            object.__setattr__(self, "_exclusion_cache", mask)
            cached = mask
        return cached


@dataclass
class MDSystem:
    """Mutable dynamical state bound to a topology."""

    topology: Topology
    positions: np.ndarray  # (n, 3) angstrom
    velocities: np.ndarray = field(default=None)  # (n, 3) angstrom/ps
    reference_positions: np.ndarray = field(default=None)  # native fold (for Gō)

    def __post_init__(self) -> None:
        n = self.topology.n_atoms
        if self.positions.shape != (n, 3):
            raise ValueError(f"positions shape {self.positions.shape} != ({n}, 3)")
        if self.velocities is None:
            self.velocities = np.zeros((n, 3))
        if self.reference_positions is None:
            self.reference_positions = self.positions.copy()

    @property
    def n_atoms(self) -> int:
        """Number of atoms (beads)."""
        return self.topology.n_atoms

    def kinetic_energy(self) -> float:
        """Kinetic energy in kcal/mol (mass amu, velocity A/ps, factor
        converts (amu·A²/ps²) to kcal/mol)."""
        conv = 1.0 / 418.4
        return float(
            0.5 * conv * (self.topology.masses * (self.velocities**2).sum(axis=1)).sum()
        )

    def temperature(self) -> float:
        """Instantaneous temperature (K) from equipartition."""
        from repro.util.units import BOLTZMANN_KCAL

        dof = 3 * self.n_atoms - 3
        if dof <= 0:
            return 0.0
        return 2.0 * self.kinetic_energy() / (dof * BOLTZMANN_KCAL)

    def initialize_velocities(self, temperature: float, rng: np.random.Generator):
        """Maxwell–Boltzmann velocities at ``temperature`` (K), zero drift."""
        from repro.util.units import BOLTZMANN_KCAL

        kt = BOLTZMANN_KCAL * temperature * 418.4  # amu A^2/ps^2
        sigma = np.sqrt(kt / self.topology.masses)[:, None]
        self.velocities = rng.normal(size=(self.n_atoms, 3)) * sigma
        # remove centre-of-mass drift
        m = self.topology.masses[:, None]
        self.velocities -= (m * self.velocities).sum(axis=0) / m.sum()
