"""Build protein–ligand complex (LPC) systems.

The protein is a Gō-model Cα chain folded into a globular shell around
the binding pocket; the ligand beads come from the molecular graph and
start at the docked pose.  Crucially, the builder takes the *docking
receptor* as input and transfers its pocket-site charges and
hydrophobicities onto the nearest pocket-lining residues — so a compound
that docks well against the grid also tends to interact favourably in
MD.  That coupling is what makes the staged pipeline meaningful: S1, S3
and S2 all see the same physics at different fidelities.
"""

from __future__ import annotations

import numpy as np

from repro.chem.descriptors import partial_charges
from repro.chem.mol import Molecule
from repro.docking.receptor import Receptor
from repro.md.system import MDSystem, Topology
from repro.util.rng import RngFactory

__all__ = ["build_protein_fold", "build_lpc", "PLPRO_RESIDUES"]

#: Cα count of the paper's PLPro model (§7.1.3: "309 backbone Cα atoms")
PLPRO_RESIDUES = 309

#: Cα–Cα virtual bond length (angstrom)
CA_BOND = 3.8

#: shell geometry: protein occupies r ∈ [POCKET_R, OUTER_R] around origin
POCKET_R = 6.0
OUTER_R = 16.0


def build_protein_fold(
    n_residues: int, rng: np.random.Generator, max_attempts: int = 200
) -> np.ndarray:
    """Generate a compact Cα fold with a cavity at the origin.

    Self-avoiding random walk constrained to a spherical shell: every
    bead sits between ``POCKET_R`` and ``OUTER_R`` from the origin (the
    pocket) and at least 3.4 Å from every earlier bead.  Constraints are
    progressively relaxed if the walk jams, so generation always succeeds.
    """
    if n_residues < 4:
        raise ValueError("need at least 4 residues")
    pos = np.empty((n_residues, 3))
    # start on the shell midline
    start_dir = rng.normal(size=3)
    start_dir /= np.linalg.norm(start_dir)
    pos[0] = start_dir * (POCKET_R + OUTER_R) / 2.0

    min_sep = 3.4
    # self-avoiding random walk: residue i is placed relative to residue
    # i-1 with rejection against all earlier positions — a genuine
    # recurrence, not an elementwise traversal
    for i in range(1, n_residues):  # repro: disable=vectorization -- true recurrence
        placed = False
        sep = min_sep
        for attempt in range(max_attempts):
            step = rng.normal(size=3)
            step *= CA_BOND / np.linalg.norm(step)
            cand = pos[i - 1] + step
            radius = np.linalg.norm(cand)
            if not (POCKET_R <= radius <= OUTER_R):
                continue
            if i > 1:
                d = np.linalg.norm(pos[: i - 1] - cand, axis=1)
                if d.min() < sep:
                    continue
            pos[i] = cand
            placed = True
            break
        if not placed:
            # relax self-avoidance and retry once more permissively
            for attempt in range(max_attempts):
                step = rng.normal(size=3)
                step *= CA_BOND / np.linalg.norm(step)
                cand = pos[i - 1] + step
                radius = np.linalg.norm(cand)
                if POCKET_R <= radius <= OUTER_R:
                    pos[i] = cand
                    placed = True
                    break
            if not placed:
                # final fallback: radial correction of an unconstrained step
                step = rng.normal(size=3)
                step *= CA_BOND / np.linalg.norm(step)
                cand = pos[i - 1] + step
                radius = np.linalg.norm(cand)
                target = np.clip(radius, POCKET_R, OUTER_R)
                pos[i] = cand * (target / max(radius, 1e-9))
    return pos


def _native_contacts(
    positions: np.ndarray, cutoff: float = 8.0, min_separation: int = 3
) -> np.ndarray:
    """Residue pairs forming the Gō elastic network: spatially close in
    the native fold but distant along the chain."""
    n = len(positions)
    d = np.linalg.norm(positions[:, None] - positions[None, :], axis=-1)
    i, j = np.triu_indices(n, k=min_separation)
    close = d[i, j] < cutoff
    return np.stack([i[close], j[close]], axis=1)


def build_lpc(
    receptor: Receptor,
    molecule: Molecule,
    ligand_coords: np.ndarray,
    seed: int,
    n_residues: int = 150,
) -> MDSystem:
    """Assemble a protein–ligand complex ready to simulate.

    Parameters
    ----------
    receptor:
        Docking receptor; its identity seeds the fold (one fold per
        target+PDB id) and its pocket sites parameterize the pocket
        lining.
    molecule / ligand_coords:
        The ligand graph and its (n_atoms, 3) starting coordinates —
        normally the docked pose from S1.
    seed:
        Campaign seed (fold derivation also folds in the receptor name,
        so every target gets its own fold).
    """
    if ligand_coords.shape != (molecule.n_atoms, 3):
        raise ValueError("ligand_coords must be (n_atoms, 3)")
    factory = RngFactory(seed, prefix=f"lpc/{receptor.target}/{receptor.pdb_id}")
    fold_rng = factory.stream("fold")
    protein_pos = build_protein_fold(n_residues, fold_rng)

    # residue parameters: generic distribution, then pocket lining
    # inherits the receptor's site parameters (nearest site wins)
    param_rng = factory.stream("residues")
    p_charges = param_rng.normal(scale=0.15, size=n_residues)
    p_hydro = param_rng.uniform(-0.8, 0.8, size=n_residues)
    site_pos = np.stack([s.position for s in receptor.sites])
    d_to_sites = np.linalg.norm(
        protein_pos[:, None, :] - site_pos[None, :, :], axis=-1
    )
    nearest_site = d_to_sites.argmin(axis=1)
    lining = d_to_sites.min(axis=1) < 6.0
    for idx in np.where(lining)[0]:
        site = receptor.sites[nearest_site[idx]]
        p_charges[idx] = site.charge
        p_hydro[idx] = site.hydrophobicity

    # ligand bead parameters from the molecular graph (same derivation
    # the docking engine uses)
    l_charges = partial_charges(molecule)
    l_hydro = np.array([a.element.hydrophobicity for a in molecule.atoms])
    l_radii = np.array([a.element.radius for a in molecule.atoms])

    n_l = molecule.n_atoms
    masses = np.concatenate([np.full(n_residues, 110.0), np.full(n_l, 14.0)])
    charges = np.concatenate([p_charges, l_charges])
    hydro = np.concatenate([p_hydro, l_hydro])
    radii = np.concatenate([np.full(n_residues, 3.0), l_radii])

    # bonds: chain + Gō contacts + ligand graph bonds
    chain = np.stack(
        [np.arange(n_residues - 1), np.arange(1, n_residues)], axis=1
    )
    go = _native_contacts(protein_pos)
    ligand_bonds = (
        np.array([(b.a + n_residues, b.b + n_residues) for b in molecule.bonds])
        if molecule.bonds
        else np.zeros((0, 2), dtype=int)
    )
    bonds = np.concatenate([chain, go, ligand_bonds]).astype(int)

    # induced fit: carve the pocket around the actual ligand so no protein
    # bead starts overlapped (a torsion-extended ligand can otherwise end
    # up threaded through the shell, which no amount of dynamics can fix).
    # Overlapping beads are pushed radially outward; the Gō rest lengths
    # computed below then bake the carved shape into the native fold.
    clearance = 3.2
    for _ in range(4):
        d = np.linalg.norm(
            protein_pos[:, None, :] - ligand_coords[None, :, :], axis=-1
        )
        dmin = d.min(axis=1)
        clashed = dmin < clearance
        if not clashed.any():
            break
        nearest = d[clashed].argmin(axis=1)
        away = protein_pos[clashed] - ligand_coords[nearest]
        norms = np.linalg.norm(away, axis=1, keepdims=True)
        # a bead sitting exactly on a ligand atom moves radially outward
        fallback = protein_pos[clashed] / np.maximum(
            np.linalg.norm(protein_pos[clashed], axis=1, keepdims=True), 1e-9
        )
        direction = np.where(norms > 1e-6, away / np.maximum(norms, 1e-9), fallback)
        protein_pos[clashed] += direction * (clearance - dmin[clashed])[:, None]

    positions = np.concatenate([protein_pos, ligand_coords])
    all_d = np.linalg.norm(
        positions[bonds[:, 0]] - positions[bonds[:, 1]], axis=1
    )
    bond_k = np.concatenate(
        [
            np.full(len(chain), 10.0),  # stiff backbone
            np.full(len(go), 0.3),  # soft Gō network
            np.full(len(ligand_bonds), 20.0),  # rigid-ish ligand
        ]
    )

    topology = Topology(
        masses=masses,
        charges=charges,
        hydro=hydro,
        radii=radii,
        bonds=bonds,
        bond_lengths=all_d,
        bond_k=bond_k,
        protein_atoms=np.arange(n_residues),
        ligand_atoms=np.arange(n_residues, n_residues + n_l),
    )
    return MDSystem(topology=topology, positions=positions)
