"""Coarse-grained molecular dynamics engine (the OpenMM/NAMD role).

Gō-model protein + bead ligand, Langevin dynamics, minimization,
trajectories and the observables ESMACS/DeepDriveMD consume.
"""

from repro.md.builder import PLPRO_RESIDUES, build_lpc, build_protein_fold
from repro.md.forcefield import EnergyBreakdown, ForceField
from repro.md.integrator import Langevin, VelocityVerlet
from repro.md.minimize import MinimizationResult, minimize
from repro.md.observables import (
    contact_count,
    kabsch_rmsd,
    radius_of_gyration,
    trajectory_rmsd,
)
from repro.md.system import MDSystem, Topology
from repro.md.trajectory import Trajectory, simulate

__all__ = [
    "EnergyBreakdown",
    "ForceField",
    "Langevin",
    "MDSystem",
    "MinimizationResult",
    "PLPRO_RESIDUES",
    "Topology",
    "Trajectory",
    "VelocityVerlet",
    "build_lpc",
    "build_protein_fold",
    "contact_count",
    "kabsch_rmsd",
    "minimize",
    "radius_of_gyration",
    "simulate",
    "trajectory_rmsd",
]
