"""Energy minimization: steepest descent with backtracking line search.

Plays the role of the minimization step in both ESMACS stages (§7.2:
"these two stages both have two steps, a minimization and an MD step").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.forcefield import ForceField
from repro.md.system import MDSystem

__all__ = ["minimize", "MinimizationResult"]


@dataclass(frozen=True)
class MinimizationResult:
    """Outcome of a minimization."""

    initial_energy: float
    final_energy: float
    n_iterations: int
    converged: bool


def minimize(
    system: MDSystem,
    forcefield: ForceField,
    max_iterations: int = 100,
    force_tolerance: float = 1.0,
    initial_step: float = 0.02,
) -> MinimizationResult:
    """Steepest descent on ``system.positions`` (modified in place).

    Converged when the max force component drops below
    ``force_tolerance`` (kcal/mol/A).
    """
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    forces, e = forcefield.compute(system.topology, system.positions)
    e0 = e.total
    energy = e0
    step = initial_step
    converged = False
    it = 0
    for it in range(1, max_iterations + 1):
        fmax = np.abs(forces).max()
        if fmax < force_tolerance:
            converged = True
            break
        direction = forces / max(fmax, 1e-12)
        trial = system.positions + step * direction
        new_forces, new_e = forcefield.compute(system.topology, trial)
        if new_e.total < energy:
            system.positions = trial
            forces, energy = new_forces, new_e.total
            step = min(step * 1.2, 1.0)
        else:
            step *= 0.5
            if step < 1e-8:
                break
    return MinimizationResult(
        initial_energy=e0,
        final_energy=energy,
        n_iterations=it,
        converged=converged,
    )
