"""Force field for the bead model.

Terms (all kcal/mol, distances in angstrom):

* harmonic bonds (chain connectivity + Gō native restraints are both
  encoded as bonds in the topology),
* Lennard-Jones nonbonded with Lorentz–Berthelot-style combination from
  bead radii, capped at short range for stability,
* screened Coulomb with distance-dependent dielectric,
* hydrophobic contact term rewarding greasy–greasy proximity,
* a confining sphere keeping the droplet together.

Everything is computed with full (n, n) pairwise arrays — systems here
are a few hundred beads, where vectorized dense arrays beat any neighbor
list in NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.system import MDSystem, Topology
from repro.util.config import FrozenConfig, validate_positive

__all__ = ["ForceField", "EnergyBreakdown"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Potential-energy decomposition of one configuration."""

    bond: float
    lj: float
    coulomb: float
    hydrophobic: float
    confine: float

    @property
    def total(self) -> float:
        """Sum of all components."""
        return self.bond + self.lj + self.coulomb + self.hydrophobic + self.confine


@dataclass(frozen=True)
class ForceField(FrozenConfig):
    """Force-field parameters."""

    lj_epsilon: float = 0.15  # kcal/mol well depth scale
    coulomb_constant: float = 332.0  # kcal·A/(mol·e²)
    dielectric_slope: float = 4.0  # eps(r) = slope * r
    hydro_strength: float = 0.35  # kcal/mol per matched contact
    hydro_range: float = 4.0  # angstrom
    confine_k: float = 0.05  # kcal/mol/A² beyond confine_radius
    confine_radius: float = 26.0  # angstrom
    min_distance: float = 0.8  # short-range cap (soft core)

    def __post_init__(self) -> None:
        validate_positive("lj_epsilon", self.lj_epsilon)
        validate_positive("hydro_range", self.hydro_range)
        validate_positive("confine_radius", self.confine_radius)
        validate_positive("min_distance", self.min_distance)

    # ------------------------------------------------------------ kernels
    def _pair_tables(self, topology: Topology) -> dict:
        """Static per-pair parameter tables, cached on the topology.

        These never change during a run, and precomputing them halves the
        per-step cost of the dense nonbonded kernel.
        """
        cache = getattr(topology, "_ff_pair_cache", None)
        if cache is not None and cache["key"] == id(self):
            return cache
        mask = ~topology.exclusion_mask()
        sigma6 = (0.5 * (topology.radii[:, None] + topology.radii[None, :])) ** 6
        qq = (
            self.coulomb_constant
            / self.dielectric_slope
            * topology.charges[:, None]
            * topology.charges[None, :]
        ) * mask
        hh = (
            -self.hydro_strength
            * topology.hydro[:, None]
            * topology.hydro[None, :]
        ) * mask
        cache = {
            "key": id(self),
            "mask": mask,
            "eps4_sigma6": 4.0 * self.lj_epsilon * sigma6 * mask,
            "eps4_sigma12": 4.0 * self.lj_epsilon * sigma6**2 * mask,
            "qq": qq,
            "hh": hh,
        }
        object.__setattr__(topology, "_ff_pair_cache", cache)
        return cache

    def compute(
        self, topology: Topology, positions: np.ndarray
    ) -> tuple[np.ndarray, EnergyBreakdown]:
        """Forces (n, 3) and energy breakdown for one configuration."""
        n = topology.n_atoms
        forces = np.zeros((n, 3))

        # ----------------------------------------------------------- bonds
        e_bond = 0.0
        if len(topology.bonds):
            i, j = topology.bonds[:, 0], topology.bonds[:, 1]
            d = positions[i] - positions[j]
            r = np.sqrt((d * d).sum(axis=1))
            dr = r - topology.bond_lengths
            e_bond = float((topology.bond_k * dr * dr).sum())
            f = (2.0 * topology.bond_k * dr / np.maximum(r, 1e-9))[:, None] * d
            np.subtract.at(forces, i, f)
            np.add.at(forces, j, f)

        # ------------------------------------------------------- nonbonded
        tables = self._pair_tables(topology)
        diff = positions[:, None, :] - positions[None, :, :]
        r2 = (diff * diff).sum(-1)
        r = np.sqrt(r2)
        r_safe = np.maximum(r, self.min_distance)
        inv_r = 1.0 / r_safe
        inv_r2 = inv_r * inv_r
        inv_r6 = inv_r2 * inv_r2 * inv_r2

        lj12 = tables["eps4_sigma12"] * inv_r6 * inv_r6
        lj6 = tables["eps4_sigma6"] * inv_r6
        e_lj_pair = lj12 - lj6
        de_lj = (-12.0 * lj12 + 6.0 * lj6) * inv_r

        e_coul_pair = tables["qq"] * inv_r2
        de_coul = -2.0 * e_coul_pair * inv_r

        gauss = np.exp(-(r_safe * r_safe) / self.hydro_range**2)
        e_hyd_pair = tables["hh"] * gauss
        de_hyd = e_hyd_pair * (-2.0 * r_safe / self.hydro_range**2)

        e_lj = float(e_lj_pair.sum() / 2.0)
        e_coul = float(e_coul_pair.sum() / 2.0)
        e_hyd = float(e_hyd_pair.sum() / 2.0)

        # force only beyond the soft-core plateau (energy capped inside)
        active = r > self.min_distance
        de_total = np.where(active, de_lj + de_coul + de_hyd, 0.0)
        coef = de_total * np.where(active, 1.0 / np.maximum(r, 1e-9), 0.0)
        forces -= np.einsum("ij,ijk->ik", coef, diff)

        # ------------------------------------------------------ confinement
        dist0 = np.sqrt((positions * positions).sum(axis=1))
        excess = np.maximum(dist0 - self.confine_radius, 0.0)
        e_conf = float((self.confine_k * excess * excess).sum())
        conf_coef = 2.0 * self.confine_k * excess / np.maximum(dist0, 1e-9)
        forces -= conf_coef[:, None] * positions

        return forces, EnergyBreakdown(e_bond, e_lj, e_coul, e_hyd, e_conf)

    def potential_energy(self, system: MDSystem) -> EnergyBreakdown:
        """Energy breakdown at the system's current positions."""
        _, e = self.compute(system.topology, system.positions)
        return e

    # --------------------------------------------------- interaction energy
    def interaction_energy(
        self, topology: Topology, positions: np.ndarray
    ) -> float:
        """Protein–ligand nonbonded interaction energy (kcal/mol).

        The MM piece of the MMPBSA-style estimator: LJ + Coulomb +
        hydrophobic terms restricted to protein–ligand pairs.
        """
        p = topology.protein_atoms
        l = topology.ligand_atoms
        diff = positions[p][:, None, :] - positions[l][None, :, :]
        r = np.sqrt((diff**2).sum(-1))
        r = np.maximum(r, self.min_distance)
        sigma = 0.5 * (topology.radii[p][:, None] + topology.radii[l][None, :])
        sr6 = (sigma / r) ** 6
        e_lj = 4.0 * self.lj_epsilon * (sr6**2 - sr6)
        qq = topology.charges[p][:, None] * topology.charges[l][None, :]
        e_coul = self.coulomb_constant * qq / (self.dielectric_slope * r**2)
        hh = topology.hydro[p][:, None] * topology.hydro[l][None, :]
        e_hyd = -self.hydro_strength * hh * np.exp(-((r / self.hydro_range) ** 2))
        return float((e_lj + e_coul + e_hyd).sum())
