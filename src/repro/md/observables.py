"""Structural observables: RMSD (Kabsch), radius of gyration, contacts.

These are the quantities the paper's analysis runs on trajectories:
Fig 5B plots per-LPC RMSD distributions; §5.1.4 uses "the number of heavy
atom contacts between the protein and the ligand" as the LPC stability
measure that DeepDriveMD filters on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kabsch_rmsd", "trajectory_rmsd", "radius_of_gyration", "contact_count"]


def kabsch_rmsd(a: np.ndarray, b: np.ndarray) -> float:
    """Minimum RMSD between two (n, 3) structures after optimal
    superposition (Kabsch algorithm)."""
    if a.shape != b.shape or a.ndim != 2 or a.shape[1] != 3:
        raise ValueError("inputs must both be (n, 3)")
    a0 = a - a.mean(axis=0)
    b0 = b - b.mean(axis=0)
    h = a0.T @ b0
    u, s, vt = np.linalg.svd(h)
    d = np.sign(np.linalg.det(vt.T @ u.T))
    rot = vt.T @ np.diag([1.0, 1.0, d]) @ u.T
    a_rot = a0 @ rot.T
    return float(np.sqrt(((a_rot - b0) ** 2).sum() / len(a)))


def trajectory_rmsd(frames: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Kabsch RMSD of every frame against ``reference`` → (T,)."""
    return np.array([kabsch_rmsd(f, reference) for f in frames])


def radius_of_gyration(coords: np.ndarray) -> float:
    """Rg of an (n, 3) structure."""
    centred = coords - coords.mean(axis=0)
    return float(np.sqrt((centred**2).sum(axis=1).mean()))


def contact_count(
    coords: np.ndarray,
    group_a: np.ndarray,
    group_b: np.ndarray,
    cutoff: float = 5.0,
) -> int:
    """Number of inter-group bead pairs within ``cutoff`` angstrom —
    the paper's LPC stability proxy."""
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    a = coords[group_a]
    b = coords[group_b]
    d2 = ((a[:, None, :] - b[None, :, :]) ** 2).sum(-1)
    return int((d2 < cutoff * cutoff).sum())
