"""Trajectory container and a simulation runner that records frames."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.forcefield import ForceField
from repro.md.integrator import Langevin
from repro.md.system import MDSystem

__all__ = ["Trajectory", "simulate"]


@dataclass
class Trajectory:
    """Recorded frames of one MD run."""

    frames: np.ndarray  # (T, n, 3)
    times: np.ndarray  # (T,) ps
    potential_energies: np.ndarray  # (T,)
    interaction_energies: np.ndarray  # (T,) protein-ligand MM energy

    @property
    def n_frames(self) -> int:
        """Number of recorded frames."""
        return len(self.frames)

    def __len__(self) -> int:
        return self.n_frames

    def protein_frames(self, protein_atoms: np.ndarray) -> np.ndarray:
        """(T, n_protein, 3) view of the protein beads."""
        return self.frames[:, protein_atoms]

    def concatenate(self, other: "Trajectory") -> "Trajectory":
        """Join two trajectories end to end (times re-offset)."""
        offset = self.times[-1] if len(self.times) else 0.0
        return Trajectory(
            frames=np.concatenate([self.frames, other.frames]),
            times=np.concatenate([self.times, other.times + offset]),
            potential_energies=np.concatenate(
                [self.potential_energies, other.potential_energies]
            ),
            interaction_energies=np.concatenate(
                [self.interaction_energies, other.interaction_energies]
            ),
        )


def simulate(
    system: MDSystem,
    forcefield: ForceField,
    integrator: Langevin,
    n_steps: int,
    rng: np.random.Generator,
    record_every: int = 10,
) -> Trajectory:
    """Run Langevin dynamics, recording every ``record_every`` steps.

    The system is advanced in place; the returned trajectory holds copies
    of the recorded frames.
    """
    if n_steps < 0:
        raise ValueError("n_steps must be non-negative")
    if record_every < 1:
        raise ValueError("record_every must be >= 1")
    frames = []
    times = []
    pot = []
    inter = []
    t = 0.0
    steps_done = 0
    while steps_done < n_steps:
        chunk = min(record_every, n_steps - steps_done)
        integrator.run(system, forcefield, chunk, rng)
        steps_done += chunk
        t += chunk * integrator.timestep
        frames.append(system.positions.copy())
        times.append(t)
        pot.append(forcefield.potential_energy(system).total)
        inter.append(
            forcefield.interaction_energy(system.topology, system.positions)
        )
    return Trajectory(
        frames=np.array(frames) if frames else np.zeros((0, system.n_atoms, 3)),
        times=np.array(times),
        potential_energies=np.array(pot),
        interaction_energies=np.array(inter),
    )
