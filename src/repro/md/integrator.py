"""Time integrators: velocity Verlet (NVE) and Langevin (NVT).

The Langevin integrator uses the BAOAB splitting (Leimkuhler & Matthews),
which stays accurate at the large timesteps a coarse bead model allows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.forcefield import ForceField
from repro.md.system import MDSystem
from repro.util.config import FrozenConfig, validate_positive
from repro.util.units import BOLTZMANN_KCAL

__all__ = ["VelocityVerlet", "Langevin"]

#: kcal/mol → amu·A²/ps² conversion for force/mass arithmetic
_FORCE_CONV = 418.4


@dataclass(frozen=True)
class VelocityVerlet(FrozenConfig):
    """Symplectic NVE integrator."""

    timestep: float = 0.01  # ps

    def __post_init__(self) -> None:
        validate_positive("timestep", self.timestep)

    def run(
        self, system: MDSystem, forcefield: ForceField, n_steps: int
    ) -> None:
        """Advance ``n_steps`` in place."""
        dt = self.timestep
        m = system.topology.masses[:, None]
        forces, _ = forcefield.compute(system.topology, system.positions)
        acc = forces * _FORCE_CONV / m
        for _ in range(n_steps):
            system.velocities += 0.5 * dt * acc
            system.positions += dt * system.velocities
            forces, _ = forcefield.compute(system.topology, system.positions)
            acc = forces * _FORCE_CONV / m
            system.velocities += 0.5 * dt * acc


@dataclass(frozen=True)
class Langevin(FrozenConfig):
    """BAOAB Langevin thermostat.

    ``max_displacement`` caps how far any bead may move per drift
    half-step — the standard stability guard that keeps a pathologically
    strained starting structure (e.g. a clashed docked pose) from
    exploding instead of relaxing.  Equilibrium sampling is unaffected:
    thermal displacements are orders of magnitude below the cap.
    """

    timestep: float = 0.01  # ps
    temperature: float = 300.0  # K
    friction: float = 1.0  # 1/ps
    max_displacement: float = 0.5  # angstrom per drift half-step

    def __post_init__(self) -> None:
        validate_positive("timestep", self.timestep)
        validate_positive("temperature", self.temperature)
        validate_positive("friction", self.friction)
        validate_positive("max_displacement", self.max_displacement)

    def run(
        self,
        system: MDSystem,
        forcefield: ForceField,
        n_steps: int,
        rng: np.random.Generator,
    ) -> None:
        """Advance ``n_steps`` in place, coupling to the heat bath."""
        dt = self.timestep
        m = system.topology.masses[:, None]
        kt = BOLTZMANN_KCAL * self.temperature * _FORCE_CONV  # amu A²/ps²
        c1 = np.exp(-self.friction * dt)
        c2 = np.sqrt(kt * (1 - c1 * c1)) / np.sqrt(m)

        max_half_step = self.max_displacement / (0.5 * dt)

        def clamp(v: np.ndarray) -> np.ndarray:
            speed = np.linalg.norm(v, axis=1, keepdims=True)
            scale = np.minimum(1.0, max_half_step / np.maximum(speed, 1e-12))
            return v * scale

        forces, _ = forcefield.compute(system.topology, system.positions)
        acc = forces * _FORCE_CONV / m
        for _ in range(n_steps):
            # B: half kick
            system.velocities += 0.5 * dt * acc
            # A: half drift (displacement-capped)
            system.velocities = clamp(system.velocities)
            system.positions += 0.5 * dt * system.velocities
            # O: Ornstein-Uhlenbeck velocity refresh
            system.velocities = c1 * system.velocities + c2 * rng.normal(
                size=system.velocities.shape
            )
            # A: half drift
            system.velocities = clamp(system.velocities)
            system.positions += 0.5 * dt * system.velocities
            # B: half kick with fresh forces
            forces, _ = forcefield.compute(system.topology, system.positions)
            acc = forces * _FORCE_CONV / m
            system.velocities += 0.5 * dt * acc
