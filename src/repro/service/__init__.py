"""Multi-tenant campaign service: many campaigns, one shared substrate.

The ROADMAP's "millions of users" shape: an asyncio
:class:`~repro.service.manager.CampaignManager` accepts campaign
submissions from many tenants, decomposes each into stage work units,
and drives them concurrently over one shared pilot with deterministic
fair-share scheduling (stride over tenant weights), priorities with
bounded preemption, per-tenant quotas, and live submit/cancel — while
keeping the house determinism contract: per-tenant results bit-identical
to solo runs, scripted scenarios byte-identical on replay.
"""

from repro.service.manager import CampaignManager, Submission
from repro.service.sched import ShareEntry, StrideScheduler
from repro.service.scenario import (
    Scenario,
    ScenarioEvent,
    ScenarioReport,
    demo_scenario,
    run_scenario,
)
from repro.service.tenant import SUBMISSION_STATES, Quota, Tenant
from repro.service.work import (
    CampaignWork,
    SyntheticWork,
    WorkContext,
    WorkSource,
    WorkUnit,
    campaign_result_digest,
)

__all__ = [
    "CampaignManager",
    "CampaignWork",
    "Quota",
    "SUBMISSION_STATES",
    "Scenario",
    "ScenarioEvent",
    "ScenarioReport",
    "ShareEntry",
    "StrideScheduler",
    "Submission",
    "SyntheticWork",
    "Tenant",
    "WorkContext",
    "WorkSource",
    "WorkUnit",
    "campaign_result_digest",
    "demo_scenario",
    "run_scenario",
]
