"""Deterministic fair-share scheduling for the campaign service.

Stride scheduling (Waldspurger & Weihl, OSDI '94) over tenant weights:
every tenant carries a *pass* value; each placement grant advances the
granted tenant's pass by ``cost · STRIDE1 / weight``, and the next grant
goes to the eligible tenant with the minimum pass.  Long-run resource
shares under contention converge to the weight ratio, and — unlike
lottery scheduling — the policy is completely deterministic, which is
what the service's replay contract needs: same submissions, same event
order, same grants, bit-identical traces.

Priorities ride on top: a higher priority class jumps queued work of
lower classes.  Preemption is *bounded* by aging — every time a tenant
with backlog is bypassed by a higher-priority grant it accumulates one
starvation credit, and at ``preempt_bound`` credits it is served ahead
of the higher class (then the credits reset).  Running tasks are never
revoked; only queued-not-running work is jumped.

Tie-breaks are total and deterministic: starvation boost, then priority
(descending), then pass (ascending), then join sequence (ascending).
:meth:`StrideScheduler.pick` is pure — state moves only in
:meth:`StrideScheduler.commit`, which the manager calls once a grant
actually placed, so a failed placement attempt never skews shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StrideScheduler", "ShareEntry"]


@dataclass
class ShareEntry:
    """Book-keeping for one tenant in the share ledger."""

    name: str
    weight: int
    priority: int
    join_seq: int
    pass_value: float = 0.0
    served_cost: float = 0.0  # total cost committed (inspection/benchmarks)
    starve_credits: int = 0
    n_grants: int = 0


class StrideScheduler:
    """Weighted fair-share with priorities and bounded preemption."""

    #: stride numerator; large so integer weights give well-separated strides
    STRIDE1 = float(1 << 20)

    def __init__(self, preempt_bound: int = 8) -> None:
        if preempt_bound < 1:
            raise ValueError("preempt_bound must be >= 1")
        self.preempt_bound = preempt_bound
        self._entries: dict[str, ShareEntry] = {}
        #: served cost of tenants already retired from the ledger — kept
        #: so end-of-run share reports cover the whole campaign
        self._retired_cost: dict[str, float] = {}
        self._join_seq = 0

    # ------------------------------------------------------------ membership
    def add(self, name: str, weight: int = 1, priority: int = 0) -> None:
        """Register a tenant; joins at the current minimum pass.

        Joining at min-pass (not zero) keeps a late arrival from
        monopolizing the substrate until it "catches up" with tenants
        that have been running for a long virtual time.
        """
        if name in self._entries:
            raise ValueError(f"tenant {name!r} already registered")
        if weight < 1:
            raise ValueError("weight must be >= 1")
        floor = min(
            (e.pass_value for e in self._entries.values()), default=0.0
        )
        self._entries[name] = ShareEntry(
            name=name,
            weight=weight,
            priority=priority,
            join_seq=self._join_seq,
            pass_value=floor,
        )
        self._join_seq += 1

    def remove(self, name: str) -> None:
        """Drop a tenant from the ledger (done/cancelled submissions).

        Its served cost is retained for end-of-run :meth:`shares`; a
        re-:meth:`add` of the same name resumes accumulating onto it.
        """
        entry = self._entries.pop(name, None)
        if entry is not None:
            self._retired_cost[name] = (
                self._retired_cost.get(name, 0.0) + entry.served_cost
            )

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def entry(self, name: str) -> ShareEntry:
        """The ledger entry for ``name`` (inspection/benchmarks)."""
        return self._entries[name]

    # -------------------------------------------------------------- decision
    def _key(self, entry: ShareEntry) -> tuple:
        starved = entry.starve_credits >= self.preempt_bound
        return (not starved, -entry.priority, entry.pass_value, entry.join_seq)

    def pick(self, eligible: list[str]) -> str | None:
        """Choose the next tenant to serve among ``eligible`` (pure).

        Order: starved tenants first (aged past ``preempt_bound``), then
        highest priority, then minimum stride pass, then earliest join.
        Returns ``None`` on an empty candidate list.  No state changes —
        call :meth:`commit` once the grant actually placed.
        """
        if not eligible:
            return None
        return min((self._entries[n] for n in eligible), key=self._key).name

    def commit(self, name: str, eligible: list[str], cost: float) -> None:
        """Charge a successful grant of ``cost`` (node-seconds) to ``name``.

        Advances the tenant's pass by ``cost · STRIDE1 / weight`` and
        ages every bypassed lower-priority tenant by one starvation
        credit, so a stream of high-priority grants can jump the queue
        at most ``preempt_bound`` consecutive times per victim.
        """
        entry = self._entries[name]
        entry.pass_value += max(cost, 0.0) * self.STRIDE1 / entry.weight
        entry.served_cost += max(cost, 0.0)
        entry.n_grants += 1
        entry.starve_credits = 0
        for other in eligible:
            if other == name:
                continue
            victim = self._entries[other]
            if victim.priority < entry.priority:
                victim.starve_credits += 1

    # ------------------------------------------------------------ inspection
    def shares(self) -> dict[str, float]:
        """Fraction of total committed cost served to each tenant.

        Covers live *and* retired tenants, so the report is whole-run.
        """
        cost = dict(self._retired_cost)
        for name, e in self._entries.items():
            cost[name] = cost.get(name, 0.0) + e.served_cost
        total = sum(cost.values())
        if total <= 0:
            return {name: 0.0 for name in cost}
        return {name: c / total for name, c in cost.items()}
