"""Work sources: what a submission actually runs.

The service schedules *simulated cost* (TaskSpecs on the shared pilot's
virtual clock) and executes *science* (real Python) when that cost has
been paid — the same split the single-campaign simulators use, lifted
to per-unit granularity so many tenants can interleave.

A :class:`WorkSource` decomposes into an ordered stream of
:class:`WorkUnit`\\ s.  Each unit carries the TaskSpecs representing its
Summit-scale cost (shapes and durations from
:class:`~repro.core.costs.CostModel`) plus a ``science`` callback the
manager runs once every task of the unit has completed.  Units are
built lazily — the next unit may depend on the previous unit's science
(ML1 selection size fixes S1's task count) — which is exactly the
contract :meth:`repro.core.campaign.ImpeccableCampaign.iter_units`
provides.

Determinism: every TaskSpec uid comes from the submission's own
namespace (:class:`WorkContext`), and all science randomness flows from
the submission's own seed through :mod:`repro.util.rng` streams.
Nothing depends on arrival order or on what other tenants run, so a
tenant's results are bit-identical to running its campaign alone — the
isolation half of the service's determinism contract.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Protocol

from repro.core.campaign import CampaignConfig, CampaignResult, ImpeccableCampaign
from repro.core.costs import CostModel
from repro.rct.task import TaskSpec
from repro.telemetry import NULL_TRACER
from repro.util.checkpoint import CheckpointManifest
from repro.util.rng import rng_stream

__all__ = [
    "WorkContext",
    "WorkUnit",
    "WorkSource",
    "SyntheticWork",
    "CampaignWork",
    "campaign_result_digest",
]


@dataclass(frozen=True)
class WorkContext:
    """What the manager hands a work source when it starts iterating.

    ``next_uid`` draws from the submission's private uid namespace —
    derived from the tenant/submission names, not from the process-wide
    counter — so uids (and therefore fault draws, keyed on
    ``(seed, uid, attempt)``) are invariant to arrival interleaving.
    """

    tenant: str
    submission: str
    next_uid: Callable[[], int]


@dataclass
class WorkUnit:
    """One schedulable slice of a submission.

    ``tasks`` may be empty (a unit whose cost was already paid — e.g. a
    checkpointed stage being fast-forwarded on resume); the manager then
    runs ``science`` immediately without touching the pilot.
    """

    unit_id: str
    tasks: list[TaskSpec] = field(default_factory=list)
    science: Callable[[], None] | None = None

    def run_science(self) -> None:
        """Execute the unit's science callback (no-op when absent)."""
        if self.science is not None:
            self.science()


class WorkSource(Protocol):
    """Protocol every submission payload implements."""

    def units(self, ctx: WorkContext) -> Iterator[WorkUnit]:
        """Lazily yield work units in execution order."""
        ...

    def result(self) -> object:
        """The science output (valid once all units completed)."""
        ...

    def result_digest(self) -> str:
        """Stable hash of the deterministic observables of the result."""
        ...


# --------------------------------------------------------------- synthetic
class SyntheticWork:
    """A cheap deterministic workload for benchmarks and scheduler tests.

    ``n_units`` units of ``tasks_per_unit`` simulated tasks each; the
    science of unit ``i`` appends one value drawn from the submission's
    own rng stream.  The result digest covers every value, so two runs
    agree iff the science executed identically.
    """

    def __init__(
        self,
        n_units: int = 4,
        tasks_per_unit: int = 4,
        duration: float = 30.0,
        cpus: int = 1,
        gpus: int = 1,
        nodes: int = 1,
        seed: int = 0,
        stage: str = "synthetic",
    ) -> None:
        if n_units < 1 or tasks_per_unit < 0:
            raise ValueError("n_units must be >= 1, tasks_per_unit >= 0")
        self.n_units = n_units
        self.tasks_per_unit = tasks_per_unit
        self.duration = duration
        self.cpus = cpus
        self.gpus = gpus
        self.nodes = nodes
        self.seed = seed
        self.stage = stage
        self.values: list[float] = []

    def units(self, ctx: WorkContext) -> Iterator[WorkUnit]:
        """Yield ``n_units`` fixed-shape units with seeded science."""
        for i in range(self.n_units):
            tasks = [
                TaskSpec(
                    name=f"{ctx.submission}-u{i}t{j}",
                    cpus=self.cpus,
                    gpus=self.gpus,
                    nodes=self.nodes,
                    duration=self.duration,
                    stage=self.stage,
                    tenant=ctx.tenant,
                    uid=ctx.next_uid(),
                )
                for j in range(self.tasks_per_unit)
            ]

            def science(i=i) -> None:
                rng = rng_stream(self.seed, f"synthetic/unit/{i}")
                self.values.append(float(rng.random()))

            yield WorkUnit(unit_id=f"u{i}", tasks=tasks, science=science)

    def result(self) -> list[float]:
        """The per-unit science values, in unit order."""
        return list(self.values)

    def result_digest(self) -> str:
        """sha256 over the exact float reprs of every science value."""
        digest = hashlib.sha256()
        for v in self.values:
            digest.update(repr(v).encode())
            digest.update(b"\x1e")
        return digest.hexdigest()[:16]


# ---------------------------------------------------------------- campaign
def campaign_result_digest(result: CampaignResult) -> str:
    """Stable hash of a campaign's deterministic observables.

    Mirrors the fingerprint the determinism tests use: docked scores,
    per-iteration docking/CG/FG outputs and stage ligand counts — and
    excludes wall-clock fields, the only sanctioned run-to-run
    difference.  Two runs of the same config+seed — solo or on a
    contended shared pilot — must produce the same digest.
    """
    out: dict = {
        "docked_scores": result.docked_scores,
        "n_dropped": result.failure_summary.n_dropped,
        "iterations": [],
    }
    for it in result.iterations:
        out["iterations"].append(
            {
                "docked": [(d.compound_id, d.score, d.conformer) for d in it.docked],
                "cg": [
                    (r.compound_id, r.binding_free_energy, r.sem, list(r.replica_dgs))
                    for r in it.cg_results
                ],
                "fg": [
                    (r.compound_id, r.binding_free_energy, r.sem, list(r.replica_dgs))
                    for r in it.fg_results
                ],
                "fg_parents": list(it.fg_parents),
                "effective_ligands": it.metrics.effective_ligands,
                "stage_ligands": {
                    name: s.n_ligands for name, s in it.metrics.stages.items()
                },
            }
        )
    blob = json.dumps(out, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


class CampaignWork:
    """An IMPECCABLE campaign as a service workload.

    Wraps :meth:`~repro.core.campaign.ImpeccableCampaign.iter_units` and
    prices each stage unit with the Summit cost model: docking stages
    become single-GPU bundles, ESMACS stages one (multi-node) ensemble
    task per compound, S2 one DeepDriveMD task per structure group, ML1
    a node-scale inference sweep, retraining a single-GPU job.

    With a ``workdir``, completed units are durably recorded in a
    :class:`~repro.util.checkpoint.CheckpointManifest`; a re-submitted
    campaign (after a cancel or crash) fast-forwards those units —
    their science replays deterministically at zero simulated cost, so
    the resumed run consumes no shared node-seconds for work already
    paid for, and the final result is bit-identical to an uninterrupted
    run.  The manifest records a config+seed fingerprint and refuses to
    resume a stale directory onto a different campaign.
    """

    #: ligands per single-GPU docking bundle (RAPTOR worker granularity)
    DOCK_BUNDLE = 8

    def __init__(
        self,
        config: CampaignConfig,
        workdir: str | Path | None = None,
        cost: CostModel | None = None,
    ) -> None:
        self.config = config
        self.cost = cost or CostModel()
        self.workdir = Path(workdir) if workdir is not None else None
        # science runs untraced: the service's trace is the pilot's
        # task/backoff stream; campaign-internal spans would interleave
        # across tenants and tie the export to scheduling order
        self.campaign = ImpeccableCampaign(config, tracer=NULL_TRACER)
        self._manifest: CheckpointManifest | None = None
        if self.workdir is not None:
            self._manifest = CheckpointManifest(self.workdir / "service_units.jsonl")
            self._guard_fingerprint()

    def _config_fingerprint(self) -> str:
        """Config+seed identity a checkpoint directory is bound to."""
        return hashlib.sha256(repr(self.config).encode()).hexdigest()[:16]

    def _guard_fingerprint(self) -> None:
        assert self._manifest is not None
        fp = self._config_fingerprint()
        if self._manifest.is_done("__config__"):
            recorded = self._manifest.payload("__config__").get("fingerprint")
            if recorded != fp:
                raise ValueError(
                    f"checkpoint directory {self.workdir} belongs to a "
                    f"different campaign (fingerprint {recorded} != {fp}); "
                    "refusing to graft stale units onto this run"
                )
        else:
            self._manifest.mark_done("__config__", fingerprint=fp)

    # ------------------------------------------------------------- pricing
    def _tasks_for(self, stage: str, n_items: int, ctx: WorkContext) -> list[TaskSpec]:
        """Simulated TaskSpecs for one stage unit.

        Uids come from the submission's namespace (never the process
        counter), so interleaving with other tenants can't perturb the
        fault draws keyed on them.
        """
        cost = self.cost
        shapes: list[dict] = []
        if stage in ("seed", "S1"):
            remaining = n_items
            while remaining > 0:
                n = min(self.DOCK_BUNDLE, remaining)
                shapes.append(
                    dict(
                        name=f"{ctx.submission}-{stage.lower()}-dock{len(shapes)}",
                        cpus=1,
                        gpus=1,
                        duration=cost.docking_wall_seconds(n),
                        stage="S1",
                    )
                )
                remaining -= n
        elif stage == "ML1":
            if n_items > 0:
                shapes.append(
                    dict(
                        name=f"{ctx.submission}-ml1",
                        cpus=cost.node.cpus,
                        gpus=cost.node.gpus,
                        duration=cost.ml1_wall_seconds(n_items) / cost.node.gpus,
                        stage="ML1",
                    )
                )
        elif stage == "S3-CG":
            for i in range(n_items):
                shapes.append(
                    dict(
                        name=f"{ctx.submission}-cg{i}",
                        cpus=min(self.config.cg.replicas, cost.node.cpus),
                        gpus=min(self.config.cg.replicas, cost.node.gpus),
                        nodes=cost.esmacs_nodes(self.config.cg),
                        duration=cost.esmacs_wall_seconds(self.config.cg),
                        stage="S3-CG",
                    )
                )
        elif stage == "S2":
            for i in range(n_items):
                shapes.append(
                    dict(
                        name=f"{ctx.submission}-s2-{i}",
                        cpus=cost.node.cpus,
                        gpus=cost.node.gpus,
                        nodes=cost.s2_nodes,
                        duration=cost.s2_hours_per_ligand * 3600.0,
                        stage="S2",
                    )
                )
        elif stage == "S3-FG":
            for i in range(n_items):
                shapes.append(
                    dict(
                        name=f"{ctx.submission}-fg{i}",
                        cpus=min(self.config.fg.replicas, cost.node.cpus),
                        gpus=min(self.config.fg.replicas, cost.node.gpus),
                        nodes=cost.esmacs_nodes(self.config.fg),
                        duration=cost.esmacs_wall_seconds(self.config.fg),
                        stage="S3-FG",
                    )
                )
        elif stage == "retrain":
            shapes.append(
                dict(
                    name=f"{ctx.submission}-retrain",
                    cpus=1,
                    gpus=1,
                    duration=cost.ml1_wall_seconds(len(self.campaign.library)),
                    stage="retrain",
                )
            )
        else:  # pragma: no cover - iter_units only emits the stages above
            raise ValueError(f"unknown stage {stage!r}")
        return [
            TaskSpec(tenant=ctx.tenant, uid=ctx.next_uid(), **shape)
            for shape in shapes
        ]

    # -------------------------------------------------------------- units
    def units(self, ctx: WorkContext) -> Iterator[WorkUnit]:
        """Yield priced stage units; fast-forward checkpointed ones."""
        for su in self.campaign.iter_units():
            if self._manifest is not None and self._manifest.is_done(su.unit_id):
                # already paid for by an earlier run: replay the science
                # (cheap, deterministic) without consuming any shared
                # node-seconds, exactly the streaming-resume contract
                su.complete()
                continue
            tasks = self._tasks_for(su.stage, su.n_items, ctx)

            def science(su=su) -> None:
                su.complete()
                if self._manifest is not None:
                    self._manifest.mark_done(su.unit_id, stage=su.stage)

            yield WorkUnit(unit_id=su.unit_id, tasks=tasks, science=science)

    def result(self) -> CampaignResult | None:
        """The campaign result (``None`` until the last unit completed)."""
        return self.campaign.result

    def result_digest(self) -> str:
        """Digest of the campaign's deterministic observables."""
        result = self.campaign.result
        if result is None:
            raise RuntimeError("campaign has not finished; no digest yet")
        return campaign_result_digest(result)
