"""The multi-tenant campaign manager.

One shared pilot, many tenants' campaigns.  The manager decomposes each
submission into stage work units (:mod:`repro.service.work`), prices
their simulated cost, and drives everything over the pilot's virtual
clock with deterministic fair-share scheduling
(:mod:`repro.service.sched`), per-tenant quotas, and live
submit/cancel.

The drive loop is the single-campaign
:class:`~repro.rct.entk.AppManager` loop generalized across tenants:

1. apply due commands (scripted events at virtual times, or live
   asyncio submits/cancels drained in arrival order at loop boundaries);
2. advance every submission whose current unit's tasks all finished —
   run its science, checkpoint, build the next unit;
3. placement pass: repeatedly pick the fair-share winner among tenants
   with backlog and quota headroom, grant one placement, charge its
   node-seconds to the tenant's stride pass; a tenant whose head task
   doesn't fit is set aside for the rest of the pass (resources only
   shrink within a pass);
4. wait for the next completion (or idle the clock to the next retry
   eligibility / scripted event) and attribute the finished attempt to
   its tenant: per-tenant :class:`~repro.rct.tasklog.TaskLog`,
   :class:`~repro.rct.fault.FailureSummary`, node-second accounting.

**Determinism contract.**  A fixed submission script + seed yields
bit-identical per-tenant results and byte-identical exported traces,
regardless of how tenants interleave: the loop is single-threaded over
a virtual clock, every tie-break is total (join order), task uids live
in per-submission namespaces (so fault draws never shift with arrival
order), and all science randomness flows from each submission's own
seed.  Each tenant's results are bit-identical to running its campaign
alone — contention changes *when* work runs, never *what* it computes.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from repro.rct.fault import FailureSummary, TaskFailedError
from repro.rct.pilot import Pilot
from repro.rct.sched import PendingQueue
from repro.rct.task import TaskRecord, TaskSpec, TaskState
from repro.rct.tasklog import TaskLog
from repro.service.sched import StrideScheduler
from repro.service.tenant import SUBMISSION_STATES, Tenant
from repro.service.work import WorkContext, WorkSource, WorkUnit
from repro.util.log import get_logger

__all__ = ["CampaignManager", "Submission"]

_log = get_logger("service.manager")

#: uids per submission namespace; bases are 22 bits so every uid fits
#: the task log's signed-64-bit columns
_UID_SPACE = 1 << 40


def _uid_base(sid: str) -> int:
    """Deterministic uid namespace base for a submission id."""
    digest = hashlib.sha256(sid.encode("utf-8")).digest()
    return (int.from_bytes(digest[:8], "big") % (1 << 22)) * _UID_SPACE


@dataclass
class Submission:
    """One tenant's campaign riding the shared substrate."""

    sid: str  # "{tenant}/{name}", unique
    tenant: Tenant
    name: str
    work: WorkSource
    join_seq: int
    state: str = "queued"
    error: str | None = None
    units_done: int = 0
    n_tasks_done: int = 0
    node_seconds: float = 0.0
    #: per-submission accounting, same columnar form as the pilot's
    tasklog: TaskLog = field(default_factory=TaskLog)
    failures: FailureSummary = field(default_factory=FailureSummary)
    # -- drive-loop internals --
    _units: Iterator[WorkUnit] | None = None
    _current: WorkUnit | None = None
    _pending: PendingQueue = field(default_factory=PendingQueue)
    _inflight: set = field(default_factory=set)
    _next_uid: int = 0
    _uid_base: int = 0

    @property
    def active(self) -> bool:
        """Still producing or awaiting work (not in a terminal state)."""
        return self.state in ("queued", "running")

    def owns_uid(self, uid: int) -> bool:
        """Whether ``uid`` falls in this submission's namespace."""
        return self._uid_base <= uid < self._uid_base + _UID_SPACE


class CampaignManager:
    """Drive many tenants' campaigns over one shared pilot."""

    def __init__(self, pilot: Pilot, preempt_bound: int = 8) -> None:
        self.pilot = pilot
        self.sched = StrideScheduler(preempt_bound=preempt_bound)
        self._subs: dict[str, Submission] = {}
        self._by_base: dict[int, str] = {}
        self._join_seq = 0
        #: live commands (op, payload) drained at loop boundaries in
        #: arrival order — the asyncio submit/cancel entry point
        self._commands: deque = deque()
        #: scripted events [(at, seq, op, payload)], sorted by (at, seq)
        self._events: list[tuple[float, int, str, dict]] = []
        self._event_seq = 0

    # ----------------------------------------------------------- public API
    def submit(self, tenant: Tenant, name: str, work: WorkSource) -> str:
        """Register a submission; returns its id.  Takes effect now."""
        sid = f"{tenant.name}/{name}"
        if sid in self._subs:
            raise ValueError(f"submission {sid!r} already exists")
        base = _uid_base(sid)
        other = self._by_base.get(base)
        if other is not None:
            raise ValueError(
                f"uid namespace collision between {sid!r} and {other!r}; "
                "rename one submission"
            )
        for existing in self._subs.values():
            if existing.tenant.name == tenant.name and existing.tenant != tenant:
                raise ValueError(
                    f"tenant {tenant.name!r} resubmitted with a different "
                    "weight/priority/quota; tenants are immutable per run"
                )
        sub = Submission(
            sid=sid,
            tenant=tenant,
            name=name,
            work=work,
            join_seq=self._join_seq,
        )
        sub._uid_base = base
        self._join_seq += 1
        self._subs[sid] = sub
        self._by_base[base] = sid
        if tenant.name not in self.sched:
            self.sched.add(tenant.name, weight=tenant.weight, priority=tenant.priority)
        _log.info("submission %s accepted (weight=%d)", sid, tenant.weight)
        return sid

    def cancel(self, sid: str) -> None:
        """Cancel a submission: queued work is dropped, running tasks
        finish (bounded preemption never revokes a placement), and any
        checkpoints the submission wrote remain resumable."""
        sub = self._subs[sid]
        if not sub.active:
            return
        n_queued = len(sub._pending)
        sub._pending.drop_where(lambda _t: True)
        self.pilot.cancel_pending(lambda t: sub.owns_uid(t.uid))
        sub.state = "cancelled"
        sub.error = None
        self._retire_tenant_if_idle(sub.tenant.name)
        _log.info("submission %s cancelled (%d queued tasks dropped)", sid, n_queued)

    def status(self, sid: str | None = None) -> dict:
        """Live view: per-submission states, per-tenant accounting."""
        if sid is not None:
            return self._sub_status(self._subs[sid])
        tenants: dict[str, dict] = {}
        for sub in self._subs.values():
            t = tenants.setdefault(
                sub.tenant.name,
                {
                    "weight": sub.tenant.weight,
                    "priority": sub.tenant.priority,
                    "node_seconds": 0.0,
                    "n_tasks_done": 0,
                    "submissions": {},
                },
            )
            t["node_seconds"] += sub.node_seconds
            t["n_tasks_done"] += sub.n_tasks_done
            t["submissions"][sub.name] = self._sub_status(sub)
        shares = self.sched.shares()
        for name, t in tenants.items():
            t["share"] = shares.get(name, 0.0)
        return {"now": self.pilot.executor.now, "tenants": tenants}

    def result(self, sid: str) -> object:
        """The submission's science output (its work source's result)."""
        return self._subs[sid].work.result()

    def result_digest(self, sid: str) -> str:
        """Digest of the submission's deterministic observables."""
        return self._subs[sid].work.result_digest()

    def _sub_status(self, sub: Submission) -> dict:
        assert sub.state in SUBMISSION_STATES
        out = {
            "state": sub.state,
            "units_done": sub.units_done,
            "n_tasks_done": sub.n_tasks_done,
            "node_seconds": sub.node_seconds,
            "n_pending": len(sub._pending),
            "n_inflight": len(sub._inflight),
            "failures": sub.failures.summary(),
        }
        if sub.error:
            out["error"] = sub.error
        return out

    # ------------------------------------------------------ scripted events
    def at(self, time: float, op: str, **payload) -> None:
        """Schedule a scripted ``submit``/``cancel`` at a virtual time.

        Events apply when the shared clock reaches ``time``; ties break
        by scheduling order.  This is what makes a scenario a pure
        function of its script: arrival is keyed to the virtual clock,
        not to wall-clock races.
        """
        if op not in ("submit", "cancel"):
            raise ValueError(f"unknown scripted op {op!r}")
        self._events.append((time, self._event_seq, op, payload))
        self._event_seq += 1
        self._events.sort(key=lambda e: (e[0], e[1]))

    def _apply(self, op: str, payload: dict) -> None:
        if op == "submit":
            self.submit(payload["tenant"], payload["name"], payload["work"])
        elif op == "cancel":
            self.cancel(payload["sid"])

    def _drain_due(self) -> None:
        now = self.pilot.executor.now
        while self._events and self._events[0][0] <= now:
            _, _, op, payload = self._events.pop(0)
            self._apply(op, payload)
        while self._commands:
            op, payload = self._commands.popleft()
            self._apply(op, payload)

    # ------------------------------------------------------- the drive loop
    def _start_iterating(self, sub: Submission) -> None:
        ctx = WorkContext(
            tenant=sub.tenant.name,
            submission=sub.name,
            next_uid=lambda s=sub: self._draw_uid(s),
        )
        sub._units = sub.work.units(ctx)
        sub.state = "running"

    def _draw_uid(self, sub: Submission) -> int:
        uid = sub._uid_base + sub._next_uid
        sub._next_uid += 1
        if sub._next_uid >= _UID_SPACE:  # pragma: no cover - 2^40 tasks
            raise RuntimeError(f"submission {sub.sid} exhausted its uid space")
        return uid

    def _fail(self, sub: Submission, exc: Exception) -> None:
        sub.state = "failed"
        sub.error = f"{type(exc).__name__}: {exc}"
        sub._pending.drop_where(lambda _t: True)
        self.pilot.cancel_pending(lambda t: sub.owns_uid(t.uid))
        self._retire_tenant_if_idle(sub.tenant.name)
        _log.warning("submission %s failed: %s", sub.sid, sub.error)

    def _advance(self, sub: Submission) -> None:
        """Run science / fetch units until the submission has real work."""
        while sub.active:
            if sub._units is None:
                self._start_iterating(sub)
                assert sub._units is not None
            if sub._current is not None:
                if len(sub._pending) or sub._inflight:
                    return  # unit still paying its simulated cost
                try:
                    sub._current.run_science()
                except Exception as exc:  # noqa: BLE001 - tenant isolation
                    self._fail(sub, exc)
                    return
                sub.units_done += 1
                sub._current = None
            try:
                unit = next(sub._units)
            except StopIteration:
                sub.state = "done"
                self._retire_tenant_if_idle(sub.tenant.name)
                _log.info("submission %s done (%d units)", sub.sid, sub.units_done)
                return
            except Exception as exc:  # noqa: BLE001 - tenant isolation
                self._fail(sub, exc)
                return
            sub._current = unit
            try:
                for task in unit.tasks:
                    self.pilot.validate_fits(task)
            except ValueError as exc:
                self._fail(sub, exc)
                return
            for task in unit.tasks:
                sub._pending.push(task)
            if not unit.tasks:
                continue  # zero-cost unit (e.g. checkpoint fast-forward)
            return

    def _retire_tenant_if_idle(self, tenant_name: str) -> None:
        """Drop a tenant from the share ledger when nothing remains."""
        if any(
            s.active for s in self._subs.values() if s.tenant.name == tenant_name
        ):
            return
        self.sched.remove(tenant_name)

    # -- placement ---------------------------------------------------------
    def _task_cost(self, task: TaskSpec) -> float:
        """Node-seconds a task will occupy (the stride charge)."""
        spec = self.pilot.spec
        duration = task.duration or 0.0
        if task.nodes > 1:
            return duration * task.nodes
        fraction = max(
            task.gpus / spec.gpus if spec.gpus else 0.0,
            task.cpus / spec.cpus if spec.cpus else 0.0,
        )
        return duration * fraction

    def _tenant_inflight(self, tenant_name: str) -> int:
        return sum(
            len(s._inflight)
            for s in self._subs.values()
            if s.tenant.name == tenant_name
        )

    def _has_headroom(self, sub: Submission) -> bool:
        quota = sub.tenant.quota.max_concurrent_tasks
        if quota is None:
            return True
        return self._tenant_inflight(sub.tenant.name) < quota

    def _placement_pass(self) -> None:
        """Fair-share grants until nothing eligible fits."""
        # retries first: they have waited longest and hold the tail.
        # They bypass the share ledger and the concurrency quota — a
        # retried task is the same work item; its claim was charged
        # when it first started.
        self.pilot.submit_ready([])
        blocked: set[str] = set()
        while True:
            candidates: dict[str, list[Submission]] = {}
            for sub in sorted(self._subs.values(), key=lambda s: s.join_seq):
                if not sub.active or not len(sub._pending):
                    continue
                if sub.tenant.name in blocked or not self._has_headroom(sub):
                    continue
                candidates.setdefault(sub.tenant.name, []).append(sub)
            eligible = sorted(candidates)
            winner = self.sched.pick(eligible)
            if winner is None:
                return
            started: TaskSpec | None = None
            for sub in candidates[winner]:
                started = sub._pending.try_start_one(self.pilot.start_task)
                if started is not None:
                    sub._inflight.add(started.uid)
                    break
            if started is None:
                # nothing of this tenant's fits the free slots; within a
                # pass resources only shrink, so set it aside
                blocked.add(winner)
                continue
            self.sched.commit(winner, eligible, self._task_cost(started))

    # -- completion --------------------------------------------------------
    def _owner(self, uid: int) -> Submission | None:
        sid = self._by_base.get((uid // _UID_SPACE) * _UID_SPACE)
        return self._subs.get(sid) if sid is not None else None

    def _attribute(self, record: TaskRecord) -> None:
        """Charge one finished attempt to its owning submission."""
        sub = self._owner(record.spec.uid)
        if sub is None:  # pragma: no cover - foreign task on shared pilot
            return
        spec = self.pilot.spec
        sub.tasklog.append(record)
        sub.node_seconds += record.node_seconds(spec.gpus, spec.cpus)
        if record.state is TaskState.DONE:
            sub.failures.record_success(record.attempt)
            sub.n_tasks_done += 1
            sub._inflight.discard(record.spec.uid)
        elif record.state is TaskState.RETRYING:
            # the pilot re-queued it; recompute the policy's backoff (a
            # pure function) instead of rescanning the pilot ledger
            assert self.pilot.retry is not None
            sub.failures.record_failure(record.wall_time, record.timed_out)
            sub.failures.record_retry(
                self.pilot.retry.backoff(record.spec.uid, record.attempt)
            )
        else:  # FAILED: retries exhausted, dropped by the pilot
            sub.failures.record_failure(record.wall_time, record.timed_out)
            sub.failures.record_drop(record.spec.stage)
            sub.n_tasks_done += 1
            sub._inflight.discard(record.spec.uid)
        self._check_budget(sub.tenant.name)

    def _check_budget(self, tenant_name: str) -> None:
        subs = [s for s in self._subs.values() if s.tenant.name == tenant_name]
        budget = subs[0].tenant.quota.node_seconds_budget
        if budget is None:
            return
        used = sum(s.node_seconds for s in subs)
        if used < budget:
            return
        for sub in subs:
            if sub.active:
                sub.state = "quota_exhausted"
                sub.error = (
                    f"node-seconds budget exhausted: {used:.0f} >= {budget:.0f}"
                )
                sub._pending.drop_where(lambda _t: True)
                self.pilot.cancel_pending(lambda t, s=sub: s.owns_uid(t.uid))
                _log.warning("submission %s hit its budget", sub.sid)
        self._retire_tenant_if_idle(tenant_name)

    # -- the loop ----------------------------------------------------------
    def _step(self) -> bool:
        """One scheduling round; returns False when fully quiescent."""
        self._drain_due()
        for sub in sorted(self._subs.values(), key=lambda s: s.join_seq):
            if sub.active:
                self._advance(sub)
        self._placement_pass()
        if self.pilot.n_running:
            try:
                self._attribute(self.pilot.wait_one())
            except TaskFailedError as exc:
                # fail_fast pilots surface the record; isolate the blast
                # radius to the owning tenant and keep serving the rest
                if exc.record is not None:
                    sub = self._owner(exc.record.spec.uid)
                    if sub is not None:
                        sub.failures.record_failure(
                            exc.record.wall_time, exc.record.timed_out
                        )
                        sub.failures.record_drop(exc.record.spec.stage)
                        self._fail(sub, exc)
                        return True
                raise
            return True
        if self.pilot.n_waiting_retry:
            self.pilot.advance_to_next_retry()
            return True
        if self._events:
            self.pilot.executor.wait_until(self._events[0][0])
            return True
        if self._commands:
            return True
        # quiescent: every submission must be terminal, else we deadlocked
        stuck = [s.sid for s in self._subs.values() if s.active]
        if stuck:
            raise RuntimeError(
                f"service deadlock: submissions {stuck} have work but "
                "nothing can be placed"
            )
        return False

    def run_until_idle(self) -> dict:
        """Drive everything to a terminal state; returns :meth:`status`."""
        while self._step():
            pass
        return self.status()

    # ------------------------------------------------------------- asyncio
    async def submit_async(self, tenant: Tenant, name: str, work: WorkSource) -> str:
        """Enqueue a live submission; applied at the next loop boundary."""
        sid = f"{tenant.name}/{name}"
        self._commands.append(("submit", {"tenant": tenant, "name": name, "work": work}))
        return sid

    async def cancel_async(self, sid: str) -> None:
        """Enqueue a live cancellation; applied at the next loop boundary."""
        self._commands.append(("cancel", {"sid": sid}))

    async def serve(self) -> dict:
        """Asyncio drive loop: yields control every scheduling round.

        Runs until quiescent *and* no live commands are pending.  Pair
        with :meth:`submit_async`/:meth:`cancel_async` from concurrent
        coroutines; commands are drained at loop boundaries in arrival
        order, which keeps the schedule deterministic for a fixed
        arrival sequence.
        """
        import asyncio

        while True:
            progressed = self._step()
            await asyncio.sleep(0)
            if not progressed and not self._commands:
                return self.status()
