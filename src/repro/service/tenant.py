"""Tenant model for the multi-tenant campaign service.

A *tenant* is one user of the shared substrate: a fair-share weight, a
priority class, and resource quotas.  The paper's campaign owned the
whole machine; the service shape (ROADMAP: "millions of users") instead
multiplexes many tenants' campaigns over one pilot, so who-gets-what
must be explicit, deterministic, and enforced — never an accident of
submission order.

Quota semantics (see DESIGN.md "Multi-tenant campaign service"):

``max_concurrent_tasks``
    Ceiling on a tenant's simultaneously *placed* tasks.  Counted
    against work the service starts; retries of an already-started task
    re-use its claim (in-flight work keeps its slot entitlement while
    it waits out backoff), so a flaky task cannot deadlock its tenant.

``node_seconds_budget``
    Lifetime node-seconds across all the tenant's task attempts,
    charged from the pilot's :class:`~repro.rct.tasklog.TaskLog`
    accounting (:meth:`~repro.rct.task.TaskRecord.node_seconds`).  A
    tenant crossing the budget stops receiving placements; queued work
    is dropped and the submission lands in ``quota_exhausted``.  Work
    already running is allowed to finish (and is charged).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.config import FrozenConfig, validate_positive

__all__ = ["Quota", "Tenant", "SUBMISSION_STATES"]

#: lifecycle states of one submission
SUBMISSION_STATES = (
    "queued",  # accepted, no unit driven yet
    "running",  # units in flight
    "done",  # all units completed, result available
    "cancelled",  # cancel() took effect; checkpoints remain resumable
    "failed",  # the submission's own science raised
    "quota_exhausted",  # node-seconds budget crossed mid-run
)


@dataclass(frozen=True)
class Quota(FrozenConfig):
    """Per-tenant resource limits (``None`` = unlimited)."""

    max_concurrent_tasks: int | None = None
    node_seconds_budget: float | None = None

    def __post_init__(self) -> None:
        if self.max_concurrent_tasks is not None:
            validate_positive("max_concurrent_tasks", self.max_concurrent_tasks)
        if self.node_seconds_budget is not None:
            validate_positive("node_seconds_budget", self.node_seconds_budget)


@dataclass(frozen=True)
class Tenant(FrozenConfig):
    """One user of the shared substrate.

    Attributes
    ----------
    name:
        Unique label; namespaces task uids, telemetry spans, and
        checkpoint directories.
    weight:
        Fair-share weight.  Long-run node-second shares under
        contention converge to the weight ratio (stride scheduling;
        the service benchmark holds a 4:2:1 split to ≤5%).
    priority:
        Priority class; a higher class jumps *queued-not-running* work
        of lower classes, bounded by the scheduler's preemption bound
        (aging) so nothing starves.  Running tasks are never revoked.
    quota:
        Resource limits, see :class:`Quota`.
    """

    name: str = ""
    weight: int = 1
    priority: int = 0
    quota: Quota = Quota()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant needs a non-empty name")
        if "/" in self.name:
            raise ValueError("tenant name must not contain '/'")
        validate_positive("weight", self.weight)
