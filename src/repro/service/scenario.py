"""Scripted multi-tenant scenarios: the service as a pure function.

A scenario is a declarative script — which tenants submit what, at which
*virtual* times, and who cancels when — plus the substrate shape (nodes,
faults, retry policy).  :func:`run_scenario` builds a fresh shared
pilot, applies the script, drives the manager to quiescence and returns
a :class:`ScenarioReport` with per-tenant statuses, result digests, and
the byte-exact exported trace.

Because arrivals are keyed to the virtual clock and every manager
tie-break is total, the whole run is a pure function of
``(scenario, seed)``: re-running exports byte-identical traces and
bit-identical digests.  ``repro serve --check`` runs a scenario twice
and diffs the bytes — the service twin of ``repro trace --check``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.rct.backends import create_executor
from repro.rct.cluster import Cluster, NodeSpec, SUMMIT_NODE
from repro.rct.fault import FaultModel, RetryPolicy
from repro.rct.pilot import Pilot
from repro.service.manager import CampaignManager
from repro.service.tenant import Quota, Tenant
from repro.service.work import SyntheticWork, WorkSource
from repro.telemetry import ExecutorClock, Tracer, to_jsonl

__all__ = ["ScenarioEvent", "Scenario", "ScenarioReport", "run_scenario", "demo_scenario"]


@dataclass(frozen=True)
class ScenarioEvent:
    """One scripted action at a virtual time.

    ``work`` is a *factory* (not an instance) so a scenario can be run
    many times — each run builds fresh, unconsumed work sources.
    """

    at: float
    op: str  # "submit" | "cancel"
    tenant: Tenant | None = None  # submit only
    name: str = ""  # submission name (submit) or "<tenant>/<name>" sid (cancel)
    work: Callable[[], WorkSource] | None = None  # submit only

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("event time must be non-negative")
        if self.op == "submit":
            if self.tenant is None or self.work is None or not self.name:
                raise ValueError("submit events need tenant, name and work")
        elif self.op == "cancel":
            if not self.name:
                raise ValueError("cancel events need the submission id")
        else:
            raise ValueError(f"unknown scenario op {self.op!r}")


@dataclass(frozen=True)
class Scenario:
    """A full scripted run: events + substrate shape."""

    events: tuple
    n_nodes: int = 32
    node: NodeSpec = SUMMIT_NODE
    launch_overhead: float = 0.5
    fault_model: FaultModel | None = None
    retry: RetryPolicy | None = None
    preempt_bound: int = 8

    def __post_init__(self) -> None:
        if not self.events:
            raise ValueError("scenario needs at least one event")
        if self.n_nodes < 1:
            raise ValueError("scenario needs at least one node")


@dataclass
class ScenarioReport:
    """What one scenario run produced."""

    status: dict
    digests: dict[str, str] = field(default_factory=dict)
    trace_jsonl: str = ""
    makespan: float = 0.0

    def tenant_states(self) -> dict[str, dict[str, str]]:
        """tenant → {submission name → state} (compact view)."""
        return {
            tname: {
                name: sub["state"] for name, sub in t["submissions"].items()
            }
            for tname, t in self.status["tenants"].items()
        }


def build_manager(scenario: Scenario) -> CampaignManager:
    """Fresh shared substrate + manager for one scenario run."""
    executor = create_executor(
        "sim",
        launch_overhead=scenario.launch_overhead,
        fault_model=scenario.fault_model,
    )
    cluster = Cluster(scenario.n_nodes, spec=scenario.node)
    allocation = cluster.allocate(scenario.n_nodes, now=0.0)
    tracer = Tracer(clock=ExecutorClock(executor))
    pilot = Pilot(
        allocation,
        executor,
        retry=scenario.retry,
        failure_policy="drop_and_continue",
        tracer=tracer,
    )
    return CampaignManager(pilot, preempt_bound=scenario.preempt_bound)


def run_scenario(scenario: Scenario) -> ScenarioReport:
    """Run one scripted scenario to quiescence (deterministic)."""
    manager = build_manager(scenario)
    for event in scenario.events:
        if event.op == "submit":
            assert event.work is not None  # validated in __post_init__
            manager.at(
                event.at,
                "submit",
                tenant=event.tenant,
                name=event.name,
                work=event.work(),
            )
        else:
            manager.at(event.at, "cancel", sid=event.name)
    status = manager.run_until_idle()
    digests: dict[str, str] = {}
    for sid, sub in manager._subs.items():
        if sub.state == "done":
            digests[sid] = sub.work.result_digest()
    return ScenarioReport(
        status=status,
        digests=digests,
        trace_jsonl=to_jsonl(manager.pilot.tracer),
        makespan=manager.pilot.executor.now,
    )


def demo_scenario(seed: int = 0) -> Scenario:
    """The scripted 3-tenant demo: weights 4:2:1, one live cancel.

    Gold (weight 4, priority 1) and silver (weight 2) submit at t=0;
    bronze (weight 1, with a tight node-seconds budget) joins late at
    t=600.  Silver's second submission is cancelled mid-run at t=2000 —
    queued work vanishes, running tasks drain.  Small enough for CI,
    contended enough that fair-share and quotas all actually engage.
    """
    gold = Tenant(name="gold", weight=4, priority=1)
    silver = Tenant(name="silver", weight=2)
    bronze = Tenant(
        name="bronze",
        weight=1,
        quota=Quota(node_seconds_budget=4_500.0),
    )

    def synthetic(n_units: int, tasks: int, duration: float, s: int):
        return lambda: SyntheticWork(
            n_units=n_units,
            tasks_per_unit=tasks,
            duration=duration,
            gpus=1,
            seed=s,
        )

    return Scenario(
        events=(
            ScenarioEvent(0.0, "submit", gold, "alpha", synthetic(6, 24, 300.0, seed)),
            ScenarioEvent(0.0, "submit", silver, "beta", synthetic(6, 24, 300.0, seed + 1)),
            ScenarioEvent(0.0, "submit", silver, "gamma", synthetic(6, 18, 250.0, seed + 2)),
            ScenarioEvent(600.0, "submit", bronze, "delta", synthetic(8, 16, 250.0, seed + 3)),
            ScenarioEvent(2000.0, "cancel", name="silver/gamma"),
        ),
        n_nodes=4,
        retry=RetryPolicy(max_retries=2, backoff_base=5.0, seed=seed),
        fault_model=FaultModel(failure_rate=0.05, seed=seed),
    )
