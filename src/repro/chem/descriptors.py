"""Molecular descriptors.

These cover the quantities a chemist reads off a 2D depiction (the paper's
motivation for image featurization): molecular weight, H-bond donors and
acceptors, ring counts, rotatable bonds, a Crippen-style logP proxy and a
TPSA proxy.  They feed the surrogate's auxiliary features, library-diversity
selection, and bead typing for docking/MD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.mol import Molecule

__all__ = ["Descriptors", "compute_descriptors", "partial_charges"]


@dataclass(frozen=True)
class Descriptors:
    """Descriptor bundle for one molecule."""

    molecular_weight: float
    heavy_atoms: int
    hbd: int  # H-bond donors (N-H, O-H)
    hba: int  # H-bond acceptors (N, O)
    rings: int
    aromatic_rings: int
    rotatable_bonds: int
    logp: float
    tpsa: float
    formal_charge: int

    def as_vector(self) -> np.ndarray:
        """Dense float vector (fixed order) for ML feature use."""
        return np.array(
            [
                self.molecular_weight,
                self.heavy_atoms,
                self.hbd,
                self.hba,
                self.rings,
                self.aromatic_rings,
                self.rotatable_bonds,
                self.logp,
                self.tpsa,
                self.formal_charge,
            ],
            dtype=np.float64,
        )

    def lipinski_violations(self) -> int:
        """Rule-of-five violations (used by library filters)."""
        v = 0
        if self.molecular_weight > 500:
            v += 1
        if self.logp > 5:
            v += 1
        if self.hbd > 5:
            v += 1
        if self.hba > 10:
            v += 1
        return v


#: per-atom polar surface contributions (angstrom^2), coarse TPSA scheme
_TPSA_CONTRIB = {"N": 12.0, "O": 17.1, "S": 25.3, "P": 13.6}


def compute_descriptors(mol: Molecule) -> Descriptors:
    """Compute the descriptor bundle for a validated molecule."""
    weight = sum(a.element.weight for a in mol.atoms)
    weight += 1.008 * mol.total_hydrogens()

    hbd = 0
    hba = 0
    tpsa = 0.0
    logp = 0.0
    for atom in mol.atoms:
        h = mol.implicit_hydrogens(atom.index)
        if atom.symbol in ("N", "O"):
            hba += 1
            if h > 0:
                hbd += 1
        if atom.symbol in _TPSA_CONTRIB:
            tpsa += _TPSA_CONTRIB[atom.symbol] * (1.0 + 0.3 * h)
        # Crippen-flavoured logP: hydrophobic contribution per heavy atom,
        # hydrogens on carbon add lipophilicity, polar Hs subtract.
        logp += atom.element.hydrophobicity
        if atom.symbol == "C":
            logp += 0.12 * h
        elif atom.symbol in ("N", "O"):
            logp -= 0.15 * h
        logp -= 0.25 * abs(atom.charge)

    rings = mol.rings()
    aromatic_rings = sum(
        1 for ring in rings if all(mol.atoms[i].aromatic for i in ring)
    )

    ring_bonds = set()
    g = mol.to_networkx()
    for ring in rings:
        for i, a in enumerate(ring):
            b = ring[(i + 1) % len(ring)]
            if g.has_edge(a, b):
                ring_bonds.add(frozenset((a, b)))
    rotatable = 0
    for bond in mol.bonds:
        if bond.order != 1 or bond.aromatic:
            continue
        if frozenset((bond.a, bond.b)) in ring_bonds:
            continue
        # terminal bonds (to degree-1 atoms) don't count as rotatable
        if mol.degree(bond.a) < 2 or mol.degree(bond.b) < 2:
            continue
        rotatable += 1

    return Descriptors(
        molecular_weight=weight,
        heavy_atoms=mol.n_atoms,
        hbd=hbd,
        hba=hba,
        rings=len(rings),
        aromatic_rings=aromatic_rings,
        rotatable_bonds=rotatable,
        logp=logp,
        tpsa=tpsa,
        formal_charge=sum(a.charge for a in mol.atoms),
    )


def partial_charges(mol: Molecule) -> np.ndarray:
    """Gasteiger-flavoured partial charges from electronegativity flow.

    One round of charge equalization per bond, iterated with damping: each
    bond moves charge from the less to the more electronegative endpoint,
    with formal charges added on top.  Cheap, smooth and adequate for the
    bead electrostatics in docking and MD.
    """
    n = mol.n_atoms
    q = np.array([float(a.charge) for a in mol.atoms])
    chi = np.array([a.element.electronegativity for a in mol.atoms])
    damp = 0.12
    for _ in range(6):
        dq = np.zeros(n)
        for bond in mol.bonds:
            delta = chi[bond.b] - chi[bond.a]
            flow = damp * delta * bond.valence()
            dq[bond.a] += flow
            dq[bond.b] -= flow
        q = q + dq
        damp *= 0.5
    # re-centre so the total equals the formal charge exactly
    total = sum(a.charge for a in mol.atoms)
    q += (total - q.sum()) / max(1, n)
    return q
