"""Chemistry substrate: molecules, SMILES, descriptors, fingerprints,
depictions, conformers and synthetic compound libraries.

This package replaces the cheminformatics stack (RDKit + ZINC/MCULE data)
the paper depends on; see DESIGN.md for the substitution rationale.
"""

from repro.chem.depict import N_CHANNELS, depict, layout_2d
from repro.chem.descriptors import Descriptors, compute_descriptors, partial_charges
from repro.chem.elements import ELEMENTS, Element, get_element
from repro.chem.embed3d import embed_conformer
from repro.chem.fingerprint import (
    bulk_tanimoto,
    diversity_pick,
    morgan_fingerprint,
    tanimoto,
)
from repro.chem.library import (
    CompoundLibrary,
    LibraryEntry,
    generate_library,
    library_overlap,
    stream_library,
    write_library_shards,
)
from repro.chem.mol import Atom, Bond, Molecule
from repro.chem.smiles import SmilesError, canonical_smiles, parse_smiles, write_smiles

__all__ = [
    "Atom",
    "Bond",
    "CompoundLibrary",
    "Descriptors",
    "ELEMENTS",
    "Element",
    "LibraryEntry",
    "Molecule",
    "N_CHANNELS",
    "SmilesError",
    "bulk_tanimoto",
    "canonical_smiles",
    "compute_descriptors",
    "depict",
    "diversity_pick",
    "embed_conformer",
    "generate_library",
    "get_element",
    "layout_2d",
    "library_overlap",
    "morgan_fingerprint",
    "parse_smiles",
    "partial_charges",
    "stream_library",
    "tanimoto",
    "write_library_shards",
    "write_smiles",
]
