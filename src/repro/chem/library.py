"""Synthetic compound libraries.

The paper screens ZINC/MCULE/Enamine-derived libraries ("OZD" for training,
"ORD" for transfer).  We substitute a combinatorial generator: drug-like
molecules assembled from ring scaffolds and substituent fragments, emitted
as SMILES from our own writer (so every library member is guaranteed to
round-trip through the parser).  Because generation is seeded, the "true
top-ranking compounds" of any downstream experiment are exactly
reproducible — which is what lets benches measure enrichment without a
4.2-billion-compound data release.

Shard I/O mirrors §6.1.1: libraries serialize to gzip-compressed shards
of fixed size — legacy pickle payloads or streaming NDJSON (see
:mod:`repro.util.shardio`) — the format the ML1 inference pipeline
streams.  :func:`stream_library` is the generator-backed path: it emits
the *same* seeded compounds as :func:`generate_library`, shard by shard,
without ever materializing the library, which is what lets a
billion-compound screen run at bounded memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.chem.descriptors import Descriptors, compute_descriptors
from repro.chem.fingerprint import morgan_fingerprint
from repro.chem.mol import Atom, Molecule
from repro.chem.smiles import canonical_smiles, parse_smiles, write_smiles
from repro.util.rng import RngFactory
from repro.util.shardio import read_shard, shard_path, write_shard

__all__ = [
    "CompoundLibrary",
    "LibraryEntry",
    "generate_library",
    "library_overlap",
    "stream_library",
    "write_library_shards",
]


# --------------------------------------------------------------- fragments


def _ring(symbols: Sequence[str], aromatic: bool) -> Molecule:
    mol = Molecule()
    n = len(symbols)
    for s in symbols:
        mol.add_atom(Atom(symbol=s, aromatic=aromatic))
    for i in range(n):
        mol.add_bond(i, (i + 1) % n, order=1, aromatic=aromatic)
    return mol


def _chain(symbols: Sequence[str], orders: Sequence[int] | None = None) -> Molecule:
    mol = Molecule()
    for s in symbols:
        mol.add_atom(Atom(symbol=s))
    orders = orders or [1] * (len(symbols) - 1)
    for i, o in enumerate(orders):
        mol.add_bond(i, i + 1, order=o)
    return mol


def _scaffolds() -> list[Molecule]:
    """Ring systems substituents hang off.  Attachment = any under-valent atom."""
    benzene = _ring(["C"] * 6, aromatic=True)
    pyridine = _ring(["N"] + ["C"] * 5, aromatic=True)
    pyrimidine = _ring(["N", "C", "N", "C", "C", "C"], aromatic=True)
    furan = _ring(["O", "C", "C", "C", "C"], aromatic=True)
    thiophene = _ring(["S", "C", "C", "C", "C"], aromatic=True)
    cyclohexane = _ring(["C"] * 6, aromatic=False)
    piperidine = _ring(["N"] + ["C"] * 5, aromatic=False)
    morpholine = _ring(["O", "C", "C", "N", "C", "C"], aromatic=False)
    # biphenyl-like fused scaffold: two benzenes joined by a single bond
    biphenyl = _ring(["C"] * 6, aromatic=True)
    offset = biphenyl.n_atoms
    second = _ring(["C"] * 6, aromatic=True)
    for atom in second.atoms:
        biphenyl.add_atom(Atom(symbol=atom.symbol, aromatic=atom.aromatic))
    for bond in second.bonds:
        biphenyl.add_bond(bond.a + offset, bond.b + offset, bond.order, bond.aromatic)
    biphenyl.add_bond(0, offset, order=1)
    return [
        benzene,
        pyridine,
        pyrimidine,
        furan,
        thiophene,
        cyclohexane,
        piperidine,
        morpholine,
        biphenyl,
    ]


def _substituents() -> list[Molecule]:
    """Fragments attached at their atom 0."""
    frags = [
        _chain(["F"]),
        _chain(["Cl"]),
        _chain(["Br"]),
        _chain(["C"]),  # methyl
        _chain(["C", "C"]),  # ethyl
        _chain(["O"]),  # hydroxyl
        _chain(["N"]),  # amine
        _chain(["O", "C"]),  # methoxy
        _chain(["C", "N"], orders=[3]),  # nitrile
        _chain(["C", "O"], orders=[2]),  # aldehyde / carbonyl
        _chain(["N", "C"]),  # methylamine
    ]
    # carboxylic acid: C(=O)O
    acid = Molecule()
    acid.add_atom(Atom("C"))
    acid.add_atom(Atom("O"))
    acid.add_atom(Atom("O"))
    acid.add_bond(0, 1, order=2)
    acid.add_bond(0, 2, order=1)
    frags.append(acid)
    # amide: C(=O)N
    amide = Molecule()
    amide.add_atom(Atom("C"))
    amide.add_atom(Atom("O"))
    amide.add_atom(Atom("N"))
    amide.add_bond(0, 1, order=2)
    amide.add_bond(0, 2, order=1)
    frags.append(amide)
    # trifluoromethyl: C(F)(F)F
    cf3 = Molecule()
    cf3.add_atom(Atom("C"))
    for _ in range(3):
        j = cf3.add_atom(Atom("F"))
        cf3.add_bond(0, j)
    frags.append(cf3)
    return frags


def _merge(base: Molecule, site: int, frag: Molecule, frag_site: int = 0) -> None:
    """Graft ``frag`` onto ``base`` with a single bond site↔frag_site."""
    offset = base.n_atoms
    for atom in frag.atoms:
        base.add_atom(Atom(symbol=atom.symbol, charge=atom.charge, aromatic=atom.aromatic))
    for bond in frag.bonds:
        base.add_bond(bond.a + offset, bond.b + offset, bond.order, bond.aromatic)
    base.add_bond(site, frag_site + offset, order=1)


def _spare_valence_sites(mol: Molecule) -> list[int]:
    return [
        a.index for a in mol.atoms if mol.implicit_hydrogens(a.index) >= 1
    ]


def _copy(mol: Molecule) -> Molecule:
    out = Molecule()
    for atom in mol.atoms:
        out.add_atom(Atom(symbol=atom.symbol, charge=atom.charge, aromatic=atom.aromatic))
    for bond in mol.bonds:
        out.add_bond(bond.a, bond.b, bond.order, bond.aromatic)
    return out


def _random_molecule(rng: np.random.Generator) -> Molecule:
    """One drug-like molecule: 1-2 scaffolds, 1-4 substituents, optional linker."""
    scaffolds = _scaffolds()
    subs = _substituents()
    mol = _copy(scaffolds[rng.integers(len(scaffolds))])
    if rng.random() < 0.35:  # second ring joined by a short linker
        second = scaffolds[rng.integers(len(scaffolds))]
        sites = _spare_valence_sites(mol)
        site = int(sites[rng.integers(len(sites))])
        linker_len = int(rng.integers(0, 3))
        anchor = site
        for _ in range(linker_len):
            j = mol.add_atom(Atom("C"))
            mol.add_bond(anchor, j)
            anchor = j
        second_sites = _spare_valence_sites(second)
        attach = int(second_sites[rng.integers(len(second_sites))])
        offset = mol.n_atoms
        for atom in second.atoms:
            mol.add_atom(Atom(symbol=atom.symbol, charge=atom.charge, aromatic=atom.aromatic))
        for bond in second.bonds:
            mol.add_bond(bond.a + offset, bond.b + offset, bond.order, bond.aromatic)
        mol.add_bond(anchor, attach + offset, order=1)
    n_subs = int(rng.integers(1, 5))
    for _ in range(n_subs):
        sites = _spare_valence_sites(mol)
        if not sites:
            break
        site = int(sites[rng.integers(len(sites))])
        frag = subs[rng.integers(len(subs))]
        _merge(mol, site, frag)
    # occasional charged amine (drug-like at physiological pH)
    if rng.random() < 0.08:
        amines = [
            a.index
            for a in mol.atoms
            if a.symbol == "N" and not a.aromatic and mol.implicit_hydrogens(a.index) >= 1
        ]
        if amines:
            mol.atoms[int(amines[rng.integers(len(amines))])].charge = 1
    mol.validate()
    return mol


# ----------------------------------------------------------------- library


@dataclass(frozen=True)
class LibraryEntry:
    """One compound: stable id + SMILES."""

    compound_id: str
    smiles: str


@dataclass
class CompoundLibrary:
    """An ordered collection of compounds with lazy feature caches."""

    name: str
    entries: list[LibraryEntry]
    _mols: dict[int, Molecule] = field(default_factory=dict, repr=False)
    _fps: np.ndarray | None = field(default=None, repr=False)
    _descs: dict[int, Descriptors] = field(default_factory=dict, repr=False)

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, i: int) -> LibraryEntry:
        return self.entries[i]

    def __iter__(self) -> Iterator[LibraryEntry]:
        return iter(self.entries)

    def smiles(self) -> list[str]:
        """SMILES strings of every entry, in order."""
        return [e.smiles for e in self.entries]

    def molecule(self, i: int) -> Molecule:
        """Parsed molecule for entry ``i`` (cached)."""
        if i not in self._mols:
            self._mols[i] = parse_smiles(self.entries[i].smiles)
        return self._mols[i]

    def descriptors(self, i: int) -> Descriptors:
        """Descriptor bundle for entry ``i`` (cached)."""
        if i not in self._descs:
            self._descs[i] = compute_descriptors(self.molecule(i))
        return self._descs[i]

    def fingerprints(self, n_bits: int = 1024) -> np.ndarray:
        """Fingerprint matrix for the whole library (cached)."""
        if self._fps is None or self._fps.shape[1] != n_bits:
            self._fps = np.stack(
                [morgan_fingerprint(self.molecule(i), n_bits=n_bits) for i in range(len(self))]
            )
        return self._fps

    def subset(self, indices: Sequence[int], name: str | None = None) -> "CompoundLibrary":
        """New library restricted to ``indices`` (caches not carried)."""
        return CompoundLibrary(
            name=name or f"{self.name}-subset",
            entries=[self.entries[i] for i in indices],
        )

    # ----------------------------------------------------------- shard I/O
    def to_shards(
        self,
        directory: str | Path,
        shard_size: int = 1000,
        format: str = "pickle",
    ) -> list[Path]:
        """Write fixed-size shards (the ML1 streaming format).

        ``format`` is ``"pickle"`` (the legacy gzip-pickle payload,
        default for compatibility) or ``"ndjson"`` (gzip NDJSON, the
        streaming pipeline's format).  Both round-trip identically.
        """
        paths = []
        for s, start in enumerate(range(0, len(self), shard_size)):
            chunk = self.entries[start : start + shard_size]
            path = shard_path(directory, self.name, s, format=format)
            write_shard(path, [(e.compound_id, e.smiles) for e in chunk])
            paths.append(path)
        return paths

    @classmethod
    def from_shards(cls, paths: Sequence[str | Path], name: str) -> "CompoundLibrary":
        """Rebuild a library from shards (either format)."""
        entries = []
        for path in paths:
            for compound_id, smiles in read_shard(path):
                entries.append(LibraryEntry(compound_id, smiles))
        return cls(name=name, entries=entries)


def _entry_stream(
    n: int,
    seed: int,
    name: str,
    shared_fraction: float,
    shared_seed: int | None,
) -> Iterator[LibraryEntry]:
    """Yield the library's entries one at a time, in generation order.

    This is the single generation core: :func:`generate_library` is
    ``list()`` of this stream and :func:`stream_library` chunks it into
    shards, so both paths draw from identical RNG streams and produce
    identical compounds for the same seed.  The uniqueness ``seen`` set
    holds one canonical SMILES per emitted compound — the only
    O(n) state the streaming path keeps (strings, not molecules).
    """
    if not 0.0 <= shared_fraction <= 1.0:
        raise ValueError("shared_fraction must be in [0, 1]")
    factory = RngFactory(seed, prefix=f"library/{name}")
    rng = factory.stream("generate")
    shared_rng = (
        RngFactory(shared_seed, prefix="library/shared").stream("generate")
        if shared_seed is not None
        else None
    )
    n_shared = int(round(n * shared_fraction)) if shared_rng is not None else 0

    seen: set[str] = set()
    emitted = 0

    def draw(
        generator: np.random.Generator, prefix: str, count: int
    ) -> Iterator[LibraryEntry]:
        nonlocal emitted
        attempts = 0
        produced = 0
        while produced < count:
            attempts += 1
            if attempts > 60 * count + 1000:
                raise RuntimeError("library generator failed to find enough unique molecules")
            mol = _random_molecule(generator)
            smi = canonical_smiles(mol)
            if smi in seen:
                continue
            seen.add(smi)
            entry = LibraryEntry(f"{prefix}{emitted:07d}", write_smiles(mol))
            emitted += 1
            produced += 1
            yield entry

    if shared_rng is not None and n_shared > 0:
        yield from draw(shared_rng, "SHR", n_shared)
    yield from draw(rng, name[:3].upper(), n - n_shared)


def generate_library(
    n: int,
    seed: int,
    name: str = "OZD",
    shared_fraction: float = 0.0,
    shared_seed: int | None = None,
) -> CompoundLibrary:
    """Generate ``n`` unique compounds.

    ``shared_fraction`` reserves a fraction of the library for compounds
    drawn from an auxiliary seeded stream — generating OZD and ORD with the
    same ``shared_seed`` produces the controlled overlap the paper observes
    (~1.5 M of 6.5 M) between its ZINC- and MCULE-derived subsets.
    """
    return CompoundLibrary(
        name=name,
        entries=list(_entry_stream(n, seed, name, shared_fraction, shared_seed)),
    )


def stream_library(
    n: int,
    seed: int,
    name: str = "OZD",
    shard_size: int = 1000,
    shared_fraction: float = 0.0,
    shared_seed: int | None = None,
) -> Iterator[list[LibraryEntry]]:
    """Generate the library as a stream of shards, without materializing it.

    Yields lists of at most ``shard_size`` entries.  The compounds — ids,
    SMILES, order — are *identical* to ``generate_library(n, seed, ...)``
    for the same arguments (both run the same generator core), so a
    streamed screen and a materialized screen see the same library.
    Peak memory is one shard plus the uniqueness set.
    """
    if shard_size <= 0:
        raise ValueError("shard_size must be positive")
    shard: list[LibraryEntry] = []
    for entry in _entry_stream(n, seed, name, shared_fraction, shared_seed):
        shard.append(entry)
        if len(shard) == shard_size:
            yield shard
            shard = []
    if shard:
        yield shard


def write_library_shards(
    directory: str | Path,
    n: int,
    seed: int,
    name: str = "OZD",
    shard_size: int = 1000,
    format: str = "ndjson",
    shared_fraction: float = 0.0,
    shared_seed: int | None = None,
) -> list[Path]:
    """Stream a seeded library straight to on-disk shards (bounded memory).

    The entry point for building screen inputs at scale: equivalent to
    ``generate_library(...).to_shards(...)`` but never holds more than
    one shard of entries.  Each shard is written atomically.
    """
    paths = []
    for s, shard in enumerate(
        stream_library(n, seed, name, shard_size, shared_fraction, shared_seed)
    ):
        path = shard_path(directory, name, s, format=format)
        write_shard(path, [(e.compound_id, e.smiles) for e in shard])
        paths.append(path)
    return paths


def library_overlap(a: CompoundLibrary, b: CompoundLibrary) -> int:
    """Number of compounds common to two libraries (by canonical SMILES)."""
    ca = {canonical_smiles(s) for s in a.smiles()}
    cb = {canonical_smiles(s) for s in b.smiles()}
    return len(ca & cb)
