"""Molecular graph model.

A :class:`Molecule` is an undirected labelled graph: atoms carry element,
formal charge and aromaticity; bonds carry integer order (1, 2, 3) or the
aromatic flag.  Implicit hydrogens are derived from default valences, the
same convention SMILES uses.  The class is deliberately small — just enough
structure for descriptors, fingerprints, depiction, conformer embedding and
bead typing, which is everything the IMPECCABLE stages consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.chem.elements import AROMATIC_SYMBOLS, Element, get_element

__all__ = ["Atom", "Bond", "Molecule"]

#: contribution of a bond to valence, keyed by order; aromatic counts 1.5
_BOND_VALENCE = {1: 1.0, 2: 2.0, 3: 3.0}


@dataclass
class Atom:
    """One atom in a molecular graph."""

    symbol: str
    charge: int = 0
    aromatic: bool = False
    index: int = -1  # assigned by Molecule.add_atom

    @property
    def element(self) -> Element:
        """Static element properties of this atom."""
        return get_element(self.symbol)

    def __repr__(self) -> str:
        arom = "~" if self.aromatic else ""
        chg = f"{self.charge:+d}" if self.charge else ""
        return f"Atom({arom}{self.symbol}{chg}@{self.index})"


@dataclass
class Bond:
    """A bond between two atom indices."""

    a: int
    b: int
    order: int = 1
    aromatic: bool = False

    def valence(self) -> float:
        """Valence contribution of this bond to each endpoint.

        Aromatic bonds count 1; the delocalized π electron is accounted as
        a per-atom contribution (see :meth:`Molecule.pi_valence`), which is
        the convention that handles fused systems like naphthalene where a
        fusion carbon carries three aromatic bonds.
        """
        return 1.0 if self.aromatic else _BOND_VALENCE[self.order]

    def other(self, idx: int) -> int:
        """The bond endpoint that is not ``idx``."""
        if idx == self.a:
            return self.b
        if idx == self.b:
            return self.a
        raise ValueError(f"atom {idx} not in bond ({self.a}, {self.b})")


@dataclass
class Molecule:
    """Undirected molecular graph with implicit hydrogens.

    Atoms are referenced by dense integer index.  Use :meth:`add_atom` /
    :meth:`add_bond` to build, then :meth:`validate` to check valences.
    """

    atoms: list[Atom] = field(default_factory=list)
    bonds: list[Bond] = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        self._adjacency: dict[int, list[Bond]] | None = None

    # ---------------------------------------------------------------- build
    def add_atom(self, atom: Atom) -> int:
        """Append an atom and return its index."""
        atom.index = len(self.atoms)
        self.atoms.append(atom)
        self._adjacency = None
        return atom.index

    def add_bond(self, a: int, b: int, order: int = 1, aromatic: bool = False) -> Bond:
        """Add a bond between existing atoms ``a`` and ``b``."""
        n = len(self.atoms)
        if not (0 <= a < n and 0 <= b < n):
            raise IndexError(f"bond ({a}, {b}) references missing atom (n={n})")
        if a == b:
            raise ValueError("self-bonds are not allowed")
        if self.bond_between(a, b) is not None:
            raise ValueError(f"duplicate bond between {a} and {b}")
        if order not in _BOND_VALENCE:
            raise ValueError(f"bond order must be 1, 2 or 3, got {order}")
        bond = Bond(a, b, order=order, aromatic=aromatic)
        self.bonds.append(bond)
        self._adjacency = None
        return bond

    # ---------------------------------------------------------------- query
    @property
    def n_atoms(self) -> int:
        """Number of atoms (beads)."""
        return len(self.atoms)

    @property
    def n_bonds(self) -> int:
        """Number of bonds."""
        return len(self.bonds)

    def adjacency(self) -> dict[int, list[Bond]]:
        """Bonds incident to each atom (cached; invalidated on mutation)."""
        if self._adjacency is None:
            adj: dict[int, list[Bond]] = {i: [] for i in range(self.n_atoms)}
            for bond in self.bonds:
                adj[bond.a].append(bond)
                adj[bond.b].append(bond)
            self._adjacency = adj
        return self._adjacency

    def neighbors(self, idx: int) -> list[int]:
        """Indices of atoms bonded to ``idx``."""
        return [b.other(idx) for b in self.adjacency()[idx]]

    def bond_between(self, a: int, b: int) -> Bond | None:
        """The bond joining ``a`` and ``b``, or ``None``."""
        for bond in self.bonds:
            if {bond.a, bond.b} == {a, b}:
                return bond
        return None

    def degree(self, idx: int) -> int:
        """Number of bonds incident to atom ``idx``."""
        return len(self.adjacency()[idx])

    def pi_valence(self, idx: int) -> int:
        """Delocalized π contribution of an aromatic atom.

        Aromatic C and N (pyridine-type) each lend one π electron to the
        ring and so use one extra valence slot; aromatic O/S donate a lone
        pair instead and use none.  Pyrrole-type N is outside our subset.
        """
        atom = self.atoms[idx]
        if atom.aromatic and atom.symbol in ("C", "N"):
            return 1
        return 0

    def explicit_valence(self, idx: int) -> float:
        """Sum of bond + π contributions at ``idx`` (no implicit Hs)."""
        return sum(b.valence() for b in self.adjacency()[idx]) + self.pi_valence(idx)

    def implicit_hydrogens(self, idx: int) -> int:
        """Hydrogens implied by the default valence model."""
        atom = self.atoms[idx]
        used = self.explicit_valence(idx)
        target = atom.element.valence + atom.charge * _charge_valence_sign(atom.symbol)
        h = int(round(target - used))
        return max(0, h)

    def total_hydrogens(self) -> int:
        """Total implicit hydrogens over all atoms."""
        return sum(self.implicit_hydrogens(i) for i in range(self.n_atoms))

    # ---------------------------------------------------------------- graph
    def to_networkx(self) -> nx.Graph:
        """Export to networkx (atom/bond attributes preserved)."""
        g = nx.Graph()
        for atom in self.atoms:
            g.add_node(
                atom.index,
                symbol=atom.symbol,
                charge=atom.charge,
                aromatic=atom.aromatic,
            )
        for bond in self.bonds:
            g.add_edge(bond.a, bond.b, order=bond.order, aromatic=bond.aromatic)
        return g

    def rings(self) -> list[list[int]]:
        """Smallest cycle basis of the molecular graph (list of atom rings)."""
        if self.n_atoms == 0:
            return []
        return [list(c) for c in nx.cycle_basis(self.to_networkx())]

    def is_connected(self) -> bool:
        """Whether the molecular graph is a single fragment."""
        if self.n_atoms <= 1:
            return True
        return nx.is_connected(self.to_networkx())

    # ------------------------------------------------------------- validate
    def validate(self) -> None:
        """Check structural and chemical consistency; raise ``ValueError``.

        * all bonds reference existing atoms,
        * no atom exceeds its default valence (given formal charge),
        * aromatic atoms are ring members of aromatic-capable elements.
        """
        ring_atoms = {i for ring in self.rings() for i in ring}
        for atom in self.atoms:
            target = (
                atom.element.valence + atom.charge * _charge_valence_sign(atom.symbol)
            )
            used = self.explicit_valence(atom.index)
            if used > target + 1e-9:
                raise ValueError(
                    f"atom {atom.index} ({atom.symbol}{atom.charge:+d}) "
                    f"over-valent: {used} > {target}"
                )
            if atom.aromatic:
                if atom.symbol not in AROMATIC_SYMBOLS:
                    raise ValueError(
                        f"element {atom.symbol} cannot be aromatic (atom {atom.index})"
                    )
                if atom.index not in ring_atoms:
                    raise ValueError(f"aromatic atom {atom.index} is not in a ring")

    # --------------------------------------------------------------- dunder
    def __repr__(self) -> str:
        return (
            f"Molecule(name={self.name!r}, atoms={self.n_atoms}, "
            f"bonds={self.n_bonds})"
        )


def _charge_valence_sign(symbol: str) -> int:
    """How formal charge shifts the target valence.

    Cations of N/O gain a bond slot (e.g. ammonium N has valence 4); anions
    of O/S lose one (e.g. alkoxide O binds once).  For carbon we use the
    carbanion/carbocation convention of losing a slot either way, which is
    a simplification adequate for the synthetic library.
    """
    if symbol in ("N", "O", "S", "P"):
        return 1
    return -1
